# Convenience targets for the repro project.

.PHONY: install test bench bench-smoke bench-full report examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast regression gate: fails unless the fused RNN kernels are >= 2x
# faster than the graph backend; records benchmarks/results/backend_speedup.txt.
bench-smoke:
	pytest benchmarks/test_substrate_microbench.py -m bench_smoke -q

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

report:
	python -m repro.experiments.report benchmarks/results EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/clean_your_own_csv.py
	python examples/sampler_comparison.py
	python examples/baseline_shootout.py
	python examples/error_analysis.py
	python examples/detect_and_repair.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
