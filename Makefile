# Convenience targets for the repro project.

.PHONY: install test test-equivalence test-chaos test-io-fuzz test-conformance bench bench-smoke bench-bucketing bench-dedup bench-parallel bench-serve bench-ensemble bench-full report examples clean

install:
	pip install -e .

test:
	pytest tests/

# Bit-for-bit equivalence properties only (fused vs graph backends,
# dedup-memoized vs naive inference) -- the tier-1 correctness core.
test-equivalence:
	pytest tests/ -m equivalence -q

# Fault-injection sweeps: kill training at every epoch and the runner at
# every task index, then prove resume is bit-identical / result-identical
# to the failure-free run (tests/faults/, marked `chaos`).
test-chaos:
	pytest tests/ -m chaos -q

# Deep ingestion fuzz (nightly): the corpus mutation sweep at 10x the
# tier-1 trial count, plus the full round-trip property suite -- any
# byte soup must either ingest or raise IngestError, nothing else.
test-io-fuzz:
	REPRO_FUZZ_TRIALS=400 pytest tests/io/ -q

bench:
	pytest benchmarks/ --benchmark-only

# Fast regression gates: fused RNN kernels must be >= 2x faster than the
# graph backend (benchmarks/results/backend_speedup.txt), bucketed
# trimmed batches >= 1.3x faster than full padding on both backends
# (benchmarks/results/BENCH_bucketing.json), and dedup-memoized
# prediction >= 3x faster than the naive forward on both backends
# (benchmarks/results/BENCH_dedup_infer.json).  The bucketed-vs-full
# and memoized-vs-naive equivalence suites then run under each backend.
bench-smoke:
	pytest benchmarks/test_substrate_microbench.py benchmarks/test_bucketing_bench.py benchmarks/test_dedup_bench.py -m bench_smoke -q
	REPRO_NN_BACKEND=fused pytest tests/nn/test_bucketing.py tests/inference/ -q
	REPRO_NN_BACKEND=graph pytest tests/nn/test_bucketing.py tests/inference/ -q

# Bucketed-batching speedup gate alone (writes BENCH_bucketing.json).
bench-bucketing:
	pytest benchmarks/test_bucketing_bench.py -m bench_smoke -q

# Dedup-inference speedup gate alone (writes BENCH_dedup_infer.json).
bench-dedup:
	pytest benchmarks/test_dedup_bench.py -m bench_smoke -q

# Work-plane + precision speedup gates alone: fused LSTM level >= 1.4x
# at 2 workers (monotone at 4) and float32 inference faster than the
# float64 graph forward (writes BENCH_parallel.json).
bench-parallel:
	pytest benchmarks/test_parallel_bench.py -m bench_smoke -q

# Online-serving gates: micro-batched daemon throughput >= 3x the
# per-request baseline at 8 concurrent clients, a one-cell update
# re-running the network on < 5% of the table's feature rows, and
# daemon scores byte-identical to one-shot `repro serve`
# (writes BENCH_serve.json).
bench-serve:
	pytest benchmarks/test_serve_bench.py -m bench_smoke -q

# Detector-registry conformance pass: every registered family (neural,
# Raha, augmentation, ensemble) against the uniform Detector contract,
# on both autograd backends (tests/detectors/).
test-conformance:
	pytest tests/detectors/ -q
	REPRO_NN_BACKEND=graph pytest tests/detectors/test_conformance.py -q

# Calibrated-fusion gate: the ensemble must match or beat its best
# member on >= 4 of the 6 golden datasets, with the attention family as
# an ablation row (writes BENCH_ensemble.json).
bench-ensemble:
	pytest benchmarks/test_ensemble.py --benchmark-only -q

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

report:
	python -m repro.experiments.report benchmarks/results EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/clean_your_own_csv.py
	python examples/sampler_comparison.py
	python examples/baseline_shootout.py
	python examples/error_analysis.py
	python examples/detect_and_repair.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
