"""Algorithm 2 (RahaSet): cluster-diverse sampling following Raha.

Runs the Raha-style pipeline (strategies -> features -> per-column
clustering) on the dirty values and greedily samples tuples whose cells
cover the largest number of still-unlabelled clusters.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.raha import RahaDetector
from repro.dataprep.pipeline import PreparedData
from repro.sampling.base import Sampler
from repro.table import Table


def dirty_wide_view(prepared: PreparedData) -> Table:
    """Reconstruct the wide dirty table from the long-format cell table.

    The sampler must only see ``value_x``; this pivots the prepared long
    table back to one row per tuple in original attribute order.
    """
    wide = prepared.df.pivot("id_", "attribute", "value_x",
                             column_order=prepared.attributes)
    return wide.drop(["id_"])


class RahaSet(Sampler):
    """The paper's Algorithm 2, built on :class:`RahaDetector`.

    Parameters
    ----------
    clusters_per_label:
        Passed through to the detector; controls clustering granularity.
    """

    name = "RahaSet"

    def __init__(self, clusters_per_label: int = 2):
        self.clusters_per_label = clusters_per_label

    def select(self, n_obs: int, prepared: PreparedData,
               rng: np.random.Generator) -> list[int]:
        available = self._validate(n_obs, prepared)
        dirty = dirty_wide_view(prepared)
        detector = RahaDetector(clusters_per_label=self.clusters_per_label, rng=rng)
        detector.analyze(dirty, n_labels=n_obs)
        rows = detector.sample_tuples(n_obs)
        return [available[row] for row in rows]
