"""Trainset-selection algorithms (Section 4.2).

Three ways of choosing the 20 tuples the user is asked to label:

* :class:`RandomSet` -- Algorithm 1, uniform random tuples (baseline);
* :class:`RahaSet` -- Algorithm 2, cluster-diverse sampling following
  Raha's label-propagation design (built on :mod:`repro.baselines.raha`);
* :class:`DiverSet` -- Algorithm 3, the paper's novel sampler maximising
  unseen attribute values with an empty-value tie-break.
"""

from repro.sampling.base import Sampler
from repro.sampling.diverset import DiverSet
from repro.sampling.raha_set import RahaSet
from repro.sampling.random_set import RandomSet

__all__ = ["Sampler", "RandomSet", "RahaSet", "DiverSet"]
