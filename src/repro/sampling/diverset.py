"""Algorithm 3 (DiverSet): the paper's novel diverse trainset selection.

Greedy selection of tuples that contribute the most *unseen* attribute
values.  Per iteration:

1. among the remaining (not-yet-seen) cell rows, count per tuple the
   number of unseen attribute values (``#unseenAttr``) and the number of
   empty values (``#empty``);
2. keep the tuples with maximal ``#unseenAttr``; among those, keep the
   ones with maximal ``#empty``; pick one uniformly at random;
3. add every ``concat`` value (``attribute__value``) of the chosen tuple
   to the seen set and delete all remaining rows whose ``concat`` is now
   seen.

If the remaining rows run out before ``n_obs`` tuples are chosen (every
attribute value already seen), the algorithm falls back to uniform random
selection among the not-yet-chosen tuples -- the paper's step 2 tie-break
generalised to the fully-exhausted case.
"""

from __future__ import annotations

import numpy as np

from repro.dataprep.pipeline import PreparedData
from repro.sampling.base import Sampler


class DiverSet(Sampler):
    """The paper's Algorithm 3."""

    name = "DiverSet"

    def select(self, n_obs: int, prepared: PreparedData,
               rng: np.random.Generator) -> list[int]:
        available = self._validate(n_obs, prepared)
        df = prepared.df
        ids = [int(v) for v in df.column("id_").values]
        empties = [int(v) for v in df.column("empty").values]
        concats = list(df.column("concat").values)

        # rows_by_id: for each tuple, its (concat, empty) cell pairs.
        rows_by_id: dict[int, list[tuple[str, int]]] = {}
        for tid, concat, empty in zip(ids, concats, empties):
            rows_by_id.setdefault(tid, []).append((concat, empty))

        selected: list[int] = []
        selected_set: set[int] = set()
        seen_concats: set[str] = set()

        for _ in range(n_obs):
            best_ids: list[int] = []
            best_key: tuple[int, int] | None = None
            for tid, cells in rows_by_id.items():
                if tid in selected_set:
                    continue
                unseen = 0
                empty_count = 0
                for concat, empty in cells:
                    if concat not in seen_concats:
                        unseen += 1
                        empty_count += empty
                if unseen == 0:
                    continue  # tuple fully covered; nothing new to learn
                key = (unseen, empty_count)
                if best_key is None or key > best_key:
                    best_key = key
                    best_ids = [tid]
                elif key == best_key:
                    best_ids.append(tid)

            if not best_ids:
                # All attribute values are already covered: fall back to
                # uniform random among the remaining tuples.
                remaining = [t for t in available if t not in selected_set]
                chosen = remaining[int(rng.integers(len(remaining)))]
            else:
                chosen = best_ids[int(rng.integers(len(best_ids)))]

            selected.append(chosen)
            selected_set.add(chosen)
            for concat, _ in rows_by_id[chosen]:
                seen_concats.add(concat)
        return selected
