"""The sampler interface shared by Algorithms 1-3."""

from __future__ import annotations

import numpy as np

from repro.dataprep.pipeline import PreparedData
from repro.errors import SamplingError


class Sampler:
    """Base class for trainset-selection algorithms.

    A sampler inspects only the *dirty* side of the prepared data (the
    paper is explicit that ``value_y`` and ``label`` must not be used)
    and returns the tuple ids the user should label.
    """

    #: Human-readable name used in experiment reports.
    name: str = "sampler"

    def select(self, n_obs: int, prepared: PreparedData,
               rng: np.random.Generator) -> list[int]:
        """Choose ``n_obs`` distinct tuple ids for labelling.

        Parameters
        ----------
        n_obs:
            Number of tuples to select (the paper uses 20).
        prepared:
            Output of the data-preparation pipeline.
        rng:
            Random generator controlling any stochastic tie-breaking.
        """
        raise NotImplementedError

    def _validate(self, n_obs: int, prepared: PreparedData) -> list[int]:
        """Common argument checks; returns the available tuple ids."""
        if n_obs < 1:
            raise SamplingError(f"n_obs must be >= 1, got {n_obs}")
        available = prepared.tuple_ids()
        if n_obs > len(available):
            raise SamplingError(
                f"cannot select {n_obs} tuples from a dataset with "
                f"{len(available)} tuples"
            )
        return available
