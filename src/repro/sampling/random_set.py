"""Algorithm 1 (RandomSet): uniform random tuple selection."""

from __future__ import annotations

import numpy as np

from repro.dataprep.pipeline import PreparedData
from repro.sampling.base import Sampler


class RandomSet(Sampler):
    """Choose ``n_obs`` tuples uniformly at random without replacement.

    The paper's baseline sampler: every tuple id has the same selection
    probability and the data content is ignored entirely.
    """

    name = "RandomSet"

    def select(self, n_obs: int, prepared: PreparedData,
               rng: np.random.Generator) -> list[int]:
        available = self._validate(n_obs, prepared)
        chosen = rng.choice(len(available), size=n_obs, replace=False)
        return [available[i] for i in chosen]
