"""The evaluation harness: every table and figure of the paper.

* :mod:`~repro.experiments.reference` -- the paper's published numbers
  (Tables 3-5), kept as constants for side-by-side reporting;
* :mod:`~repro.experiments.runner` -- repeated-run experiment execution
  with timing and optional per-epoch curves, fanned out over a process
  pool when ``n_workers`` is set (identical aggregation either way);
* :mod:`~repro.experiments.tables` -- renderers for Tables 2, 3, 4, 5;
* :mod:`~repro.experiments.curves` -- the Figure 6 / Figure 7 series;
* :mod:`~repro.experiments.scale` -- scaled-down vs paper-scale settings
  (``REPRO_FULL=1`` switches the benchmarks to full fidelity).
"""

from repro.experiments.fidelity import FidelityReport, fidelity_report, spearman_rho
from repro.experiments.curves import CurvePoint, LearningCurves, collect_curves
from repro.experiments.reference import PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5
from repro.experiments.analysis import (
    AttributeBreakdown,
    attribute_breakdown,
    error_type_recall,
    false_negatives,
    hardest_attributes,
    render_breakdown,
)
from repro.experiments.families import (
    FamilyCell,
    FamilyMatrix,
    default_family_specs,
    render_family_matrix,
    run_family_matrix,
    save_family_matrix,
)
from repro.experiments.comparison import (
    DETECTOR_LABELS,
    render_comparison,
    run_detector_comparison,
    run_ensemble_baseline,
    save_comparison,
)
from repro.experiments.journal import TaskJournal, task_key
from repro.experiments.runner import (
    ExperimentResult,
    RunResult,
    TaskFailure,
    run_augmentation_baseline,
    run_experiment,
    run_experiment_matrix,
    run_raha_baseline,
)
from repro.experiments.scale import ExperimentScale, current_scale
from repro.experiments.tables import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "RunResult",
    "ExperimentResult",
    "TaskFailure",
    "TaskJournal",
    "task_key",
    "run_experiment",
    "run_experiment_matrix",
    "run_raha_baseline",
    "run_augmentation_baseline",
    "DETECTOR_LABELS",
    "render_comparison",
    "run_detector_comparison",
    "run_ensemble_baseline",
    "save_comparison",
    "FamilyCell",
    "FamilyMatrix",
    "default_family_specs",
    "render_family_matrix",
    "run_family_matrix",
    "save_family_matrix",
    "AttributeBreakdown",
    "attribute_breakdown",
    "error_type_recall",
    "false_negatives",
    "hardest_attributes",
    "render_breakdown",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "CurvePoint",
    "FidelityReport",
    "fidelity_report",
    "spearman_rho",
    "LearningCurves",
    "collect_curves",
    "ExperimentScale",
    "current_scale",
]
