"""Per-error-family degradation matrix over the authentic taxonomy.

The paper's Section 5.5 explains dataset scores by their error mix; the
authentic-error taxonomy (:mod:`repro.datasets.taxonomy`) makes that
analysis causal: starting from one clean table, each corruption family
is injected *alone* at a fixed cell rate, and every system is trained
and scored on the single-family pair.  The resulting matrix shows which
families each detector degrades on -- keyboard typos and truncations
are character-visible (BiRNN territory), correlated errors and value
swaps put the evidence in *other* cells (hard for any per-cell model).

Target columns for each family are chosen by the ingestion analyzers
(:func:`repro.io.analyze.analyze_table`): format drift hits the columns
the profiler calls dates/numbers, typos hit text and identifiers, so
the matrix stays meaningful on any clean table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.datasets import taxonomy
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_raha_baseline,
)
from repro.io.analyze import ColumnKind, analyze_table
from repro.table import Table


def default_family_specs(clean: Table,
                         rate: float = 0.1) -> dict[str, list[taxonomy.ErrorSpec]]:
    """Analyzer-guided single-family specs for ``clean``.

    Families whose natural targets are absent (e.g. no date or number
    column for ``format_drift``) fall back to all columns -- the drift
    rewrites simply bite less often there.
    """
    profiles = analyze_table(clean)
    by_kind: dict[ColumnKind, list[str]] = {}
    for name, profile in profiles.items():
        by_kind.setdefault(profile.kind, []).append(name)
    all_columns = list(clean.column_names)
    texty = (by_kind.get(ColumnKind.TEXT, [])
             + by_kind.get(ColumnKind.IDENTIFIER, [])) or all_columns
    drifty = (by_kind.get(ColumnKind.DATE, [])
              + by_kind.get(ColumnKind.NUMBER, [])) or all_columns
    specs: dict[str, list[taxonomy.ErrorSpec]] = {
        "keyboard_typo": [taxonomy.keyboard_typo(texty, rate)],
        "format_drift": [taxonomy.format_drift(drifty, rate)],
        "truncation": [taxonomy.truncation(all_columns, rate, min_keep=1)],
        "value_swap": [taxonomy.value_swap(all_columns, rate)],
        "missing": [taxonomy.missing(texty, rate)],
    }
    if clean.n_cols >= 2:
        specs["correlated"] = [taxonomy.correlated(all_columns[:2], rate)]
    return specs


@dataclass(frozen=True)
class FamilyCell:
    """One (family, system) entry of the matrix."""

    family: str
    system: str
    result: ExperimentResult
    n_errors: int
    error_rate: float

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {"family": self.family,
                                  "system": self.system,
                                  "n_errors": self.n_errors,
                                  "error_rate": round(self.error_rate, 4)}
        row.update({k: round(v, 4) for k, v in self.result.as_row().items()})
        return row


@dataclass(frozen=True)
class FamilyMatrix:
    """The full per-family comparison."""

    cells: tuple[FamilyCell, ...]
    families: tuple[str, ...]
    systems: tuple[str, ...]
    seed: int
    rate: float

    def cell(self, family: str, system: str) -> FamilyCell:
        for entry in self.cells:
            if entry.family == family and entry.system == system:
                return entry
        raise ExperimentError(f"no matrix cell ({family}, {system})")

    def as_rows(self) -> list[dict[str, object]]:
        return [cell.as_row() for cell in self.cells]


def run_family_matrix(clean: Table, *, systems: tuple[str, ...] = ("etsb",),
                      families: tuple[str, ...] | None = None,
                      rate: float = 0.1, n_runs: int = 2,
                      n_label_tuples: int = 20, epochs: int = 30,
                      seed: int = 0) -> FamilyMatrix:
    """Inject each family alone and evaluate every system on it.

    ``systems`` may name architectures (``"tsb"``/``"etsb"``/``"attn"``),
    ``"raha"`` for the from-scratch baseline, or ``"ensemble"`` for the
    calibrated fusion of the default members.  Each family's pair is
    built deterministically from ``(clean, rate, seed)``, so the matrix
    is reproducible run to run.
    """
    specs_by_family = default_family_specs(clean, rate=rate)
    if families is not None:
        unknown = [f for f in families if f not in specs_by_family]
        if unknown:
            raise ExperimentError(
                f"unknown families {unknown}; known: "
                f"{sorted(specs_by_family)}")
        specs_by_family = {f: specs_by_family[f] for f in families}
    cells: list[FamilyCell] = []
    for family, specs in specs_by_family.items():
        pair = taxonomy.pair_from_taxonomy(
            f"taxonomy-{family}", clean, specs, seed=seed)
        for system in systems:
            if system == "raha":
                result = run_raha_baseline(
                    pair, n_runs=n_runs, n_label_tuples=n_label_tuples,
                    base_seed=seed)
            elif system == "ensemble":
                from repro.experiments.comparison import run_ensemble_baseline
                result = run_ensemble_baseline(
                    pair, n_runs=n_runs, n_label_tuples=n_label_tuples,
                    epochs=epochs, base_seed=seed)
            else:
                result = run_experiment(
                    pair, architecture=system, n_runs=n_runs,
                    n_label_tuples=n_label_tuples, epochs=epochs,
                    base_seed=seed)
            cells.append(FamilyCell(
                family=family, system=system, result=result,
                n_errors=len(pair.errors),
                error_rate=pair.measured_error_rate()))
    return FamilyMatrix(cells=tuple(cells),
                        families=tuple(specs_by_family),
                        systems=tuple(systems), seed=seed, rate=rate)


def render_family_matrix(matrix: FamilyMatrix) -> str:
    """Fixed-width text table: one row per (family, system)."""
    header = (f"{'family':<16} {'system':<8} {'errors':>6} "
              f"{'P':>6} {'R':>6} {'F1':>6} {'F1 sd':>6}")
    lines = [header, "-" * len(header)]
    for cell in matrix.cells:
        row = cell.result.as_row()
        lines.append(
            f"{cell.family:<16} {cell.system:<8} {cell.n_errors:>6} "
            f"{row['P']:>6.3f} {row['R']:>6.3f} {row['F1']:>6.3f} "
            f"{row['F1_sd']:>6.3f}")
    return "\n".join(lines)


def save_family_matrix(matrix: FamilyMatrix, path: str | Path,
                       settings: dict[str, object] | None = None) -> None:
    """Write the matrix (plus run settings) as a JSON benchmark record."""
    payload = {
        "benchmark": "error_families",
        "seed": matrix.seed,
        "rate": matrix.rate,
        "families": list(matrix.families),
        "systems": list(matrix.systems),
        "settings": settings or {},
        "rows": matrix.as_rows(),
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
