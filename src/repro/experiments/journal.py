"""The completed-task journal backing durable experiment runs.

A :class:`TaskJournal` is an append-only JSONL file: one header line
carrying a fingerprint of the experiment configuration, then one line
per completed task holding its key and full :class:`RunResult`.  A
re-invoked matrix (``--resume``) opens the same journal, verifies the
fingerprint, and skips every task already recorded -- so a sweep killed
at task *k* re-runs only tasks ``k..n``, and the aggregated
:class:`~repro.experiments.runner.ExperimentResult` equals the
failure-free run's.

Appends are flushed and fsynced per line: a crash mid-append loses at
most the line being written, and the loader ignores a torn trailing
line, so the journal itself is crash-safe.
"""

from __future__ import annotations

import json
import os

from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.runner import RunResult

_FORMAT = "repro-task-journal"
_VERSION = 1


def task_key(dataset: str, seed: int) -> str:
    """The journal key of one (dataset, seed) task."""
    return f"{dataset}:{seed}"


def run_result_to_json(result: "RunResult") -> dict:
    """A JSON-able dict that :func:`run_result_from_json` inverts.

    The telemetry snapshot is kept only when it serialises cleanly; a
    journal must never fail an experiment over a diagnostics payload.
    """
    from dataclasses import asdict

    payload = asdict(result)
    payload["train_accuracy_curve"] = list(result.train_accuracy_curve)
    payload["test_accuracy_curve"] = list(result.test_accuracy_curve)
    if payload.get("telemetry") is not None:
        try:
            json.dumps(payload["telemetry"])
        except (TypeError, ValueError):
            payload["telemetry"] = None
    return payload


def run_result_from_json(payload: dict) -> "RunResult":
    """Rebuild a :class:`RunResult` journalled by :func:`run_result_to_json`."""
    from repro.experiments.runner import RunResult
    from repro.metrics import ClassificationReport

    data = dict(payload)
    data["report"] = ClassificationReport(**data["report"])
    data["train_accuracy_curve"] = tuple(data.get("train_accuracy_curve", ()))
    data["test_accuracy_curve"] = tuple(data.get("test_accuracy_curve", ()))
    return RunResult(**data)


class TaskJournal:
    """Append-only JSONL record of completed experiment tasks.

    Parameters
    ----------
    path:
        The journal file.  Created (with its header) on the first
        :meth:`record`; a missing file loads as an empty journal.
    fingerprint:
        JSON-able description of the experiment configuration.  A journal
        written under a different fingerprint refuses to load: silently
        reusing results from a different configuration would corrupt the
        aggregate, so the mismatch is an explicit error.
    """

    def __init__(self, path: str | Path, fingerprint: dict):
        self.path = Path(path)
        # Round-trip through JSON so tuples in configs compare equal to
        # the lists a reloaded header carries.
        self.fingerprint = json.loads(json.dumps(fingerprint))
        self._header_written = False

    def load(self) -> dict[str, "RunResult"]:
        """Completed tasks keyed by :func:`task_key`.

        Raises
        ------
        ExperimentError
            When the file is not a task journal or its fingerprint does
            not match this journal's configuration.
        """
        if not self.path.exists():
            return {}
        completed: dict[str, RunResult] = {}
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise ExperimentError(
                f"{self.path}: not a task journal (unparseable header)"
            ) from None
        if header.get("format") != _FORMAT:
            raise ExperimentError(f"{self.path}: not a task journal")
        if header.get("fingerprint") != self.fingerprint:
            raise ExperimentError(
                f"{self.path}: journal fingerprint does not match this "
                f"experiment configuration; use a fresh journal path"
            )
        self._header_written = True
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a crash mid-append: the task
                # never completed as far as the journal knows, re-run it.
                continue
            if entry.get("type") != "task":
                continue
            completed[entry["key"]] = run_result_from_json(entry["result"])
        return completed

    def record(self, key: str, result: "RunResult") -> None:
        """Append one completed task (flushed and fsynced)."""
        lines = []
        if not self._header_written and not self.path.exists():
            lines.append(json.dumps({
                "format": _FORMAT,
                "version": _VERSION,
                "fingerprint": self.fingerprint,
            }))
        lines.append(json.dumps({
            "type": "task",
            "key": key,
            "result": run_result_to_json(result),
        }))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()
            os.fsync(handle.fileno())
        self._header_written = True
