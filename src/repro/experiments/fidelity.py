"""Reproduction-fidelity metrics: how close are we to the paper?

Absolute F1 parity is not the reproduction target (the substrate is a
scaled simulator), but two quantities measure whether the reproduction
preserves the paper's *findings*:

* the per-dataset F1 gap distribution (mean absolute gap, worst gap);
* the rank correlation between the paper's difficulty ordering of the
  datasets and the measured one (Spearman's rho) -- 1.0 means "the same
  datasets are easy/hard for the same reasons".

Used by the reporting pipeline and the fidelity benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.reference import PAPER_TABLE3
from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class FidelityReport:
    """Paper-vs-measured agreement for one system.

    Attributes
    ----------
    system:
        Paper system name (``TSB-RNN`` or ``ETSB-RNN``).
    gaps:
        ``{dataset: measured_f1 - paper_f1}``.
    mean_absolute_gap:
        Mean of ``|gap|`` over datasets.
    worst_dataset:
        Dataset with the largest absolute gap.
    rank_correlation:
        Spearman's rho between paper and measured per-dataset F1
        rankings (1.0 = identical difficulty ordering).
    """

    system: str
    gaps: dict[str, float]
    mean_absolute_gap: float
    worst_dataset: str
    rank_correlation: float

    def render(self) -> str:
        """Plain-text summary block."""
        lines = [f"{self.system}: mean |F1 gap| = {self.mean_absolute_gap:.3f}, "
                 f"difficulty-rank correlation = {self.rank_correlation:.2f}"]
        for dataset, gap in sorted(self.gaps.items()):
            lines.append(f"  {dataset:<10} {gap:+.3f}")
        lines.append(f"  worst gap: {self.worst_dataset}")
        return "\n".join(lines)


def _ranks(values: Sequence[float]) -> list[float]:
    """Fractional ranks (ties averaged)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length sequences."""
    if len(a) != len(b):
        raise ExperimentError(f"length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ExperimentError("rank correlation needs at least 2 points")
    ra, rb = _ranks(list(a)), _ranks(list(b))
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(ra, rb))
    var_a = sum((x - mean_a) ** 2 for x in ra)
    var_b = sum((y - mean_b) ** 2 for y in rb)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def fidelity_report(results: Sequence[ExperimentResult],
                    system: str) -> FidelityReport:
    """Compare measured results for one system against its paper row.

    Parameters
    ----------
    results:
        Experiment results; entries whose ``system`` matches are used.
    system:
        ``"TSB-RNN"`` or ``"ETSB-RNN"`` (must exist in the paper table).
    """
    if system not in PAPER_TABLE3:
        raise ExperimentError(
            f"no paper reference for {system!r}; "
            f"available: {sorted(PAPER_TABLE3)}"
        )
    paper = PAPER_TABLE3[system]
    measured = {r.dataset: r.f1.mean for r in results if r.system == system}
    common = [d for d in paper if d in measured and paper[d].f1 is not None]
    if len(common) < 2:
        raise ExperimentError(
            f"need measured results on >= 2 paper datasets for {system}, "
            f"got {sorted(measured)}"
        )
    gaps = {d: measured[d] - paper[d].f1 for d in common}
    mean_abs = sum(abs(g) for g in gaps.values()) / len(gaps)
    worst = max(gaps, key=lambda d: abs(gaps[d]))
    rho = spearman_rho([paper[d].f1 for d in common],
                       [measured[d] for d in common])
    return FidelityReport(system=system, gaps=gaps,
                          mean_absolute_gap=mean_abs,
                          worst_dataset=worst, rank_correlation=rho)
