"""Per-attribute and per-error-type analysis (Section 5.5).

The paper's error analysis explains each dataset's score qualitatively:
Flights fails on cross-record time disagreements, Movies on truncated
Creator values, Hospital succeeds because 'x'-typos are trivially
learnable.  This module makes that analysis mechanical:

* :func:`attribute_breakdown` -- precision/recall/F1 per attribute;
* :func:`error_type_recall` -- recall per injected error type, using the
  generator's :class:`~repro.datasets.errors.CellError` ledger;
* :func:`hardest_attributes` / :func:`false_negatives` -- ranked views
  for reports and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetPair
from repro.datasets.errors import ErrorType
from repro.errors import ExperimentError
from repro.metrics import ClassificationReport
from repro.models.detector import DetectionResult


@dataclass(frozen=True)
class AttributeBreakdown:
    """One attribute's detection metrics plus support counts."""

    attribute: str
    report: ClassificationReport
    n_cells: int
    n_errors: int


def attribute_breakdown(result: DetectionResult,
                        labels: np.ndarray) -> list[AttributeBreakdown]:
    """Per-attribute metrics over a detection result's test cells.

    Parameters
    ----------
    result:
        Output of :meth:`ErrorDetector.evaluate`.
    labels:
        Ground-truth labels parallel to ``result.predictions`` (i.e.
        ``detector.split.test.labels``).
    """
    labels = np.asarray(labels)
    if labels.shape != result.predictions.shape:
        raise ExperimentError(
            f"labels shape {labels.shape} does not match predictions "
            f"{result.predictions.shape}"
        )
    breakdowns = []
    attribute_names = np.array(result.attribute_names)
    for attribute in dict.fromkeys(result.attribute_names):  # stable order
        index = attribute_names == attribute
        report = ClassificationReport.from_predictions(
            labels[index], result.predictions[index])
        breakdowns.append(AttributeBreakdown(
            attribute=attribute,
            report=report,
            n_cells=int(index.sum()),
            n_errors=int(labels[index].sum()),
        ))
    return breakdowns


def hardest_attributes(breakdowns: list[AttributeBreakdown],
                       min_errors: int = 1) -> list[AttributeBreakdown]:
    """Attributes with errors, worst F1 first (the §5.5 view)."""
    with_errors = [b for b in breakdowns if b.n_errors >= min_errors]
    return sorted(with_errors, key=lambda b: b.report.f1)


def error_type_recall(pair: DatasetPair, result: DetectionResult
                      ) -> dict[ErrorType, tuple[int, int]]:
    """Per error type: ``(detected, total)`` over the test cells.

    Uses the generator's injection ledger, so it is only available for
    synthetic pairs (externally loaded data has no typed ledger).
    """
    if not pair.errors:
        raise ExperimentError(
            "error_type_recall needs an injection ledger; "
            "this pair carries none"
        )
    predicted = set(zip(result.tuple_ids.tolist(),
                        result.attribute_names))
    flagged = {
        cell for cell, pred in zip(
            zip(result.tuple_ids.tolist(), result.attribute_names),
            result.predictions)
        if pred == 1
    }
    counts: dict[ErrorType, tuple[int, int]] = {}
    for error in pair.errors:
        cell = (error.row, error.attribute)
        if cell not in predicted:
            continue  # training tuple, not part of the test split
        detected, total = counts.get(error.error_type, (0, 0))
        counts[error.error_type] = (
            detected + (1 if cell in flagged else 0), total + 1)
    return counts


def false_negatives(result: DetectionResult, labels: np.ndarray,
                    pair: DatasetPair, limit: int = 20
                    ) -> list[tuple[int, str, str, str]]:
    """Missed errors as ``(tuple_id, attribute, dirty, clean)`` rows."""
    labels = np.asarray(labels)
    missed = []
    for i in range(result.predictions.shape[0]):
        if labels[i] == 1 and result.predictions[i] == 0:
            tuple_id = int(result.tuple_ids[i])
            attribute = result.attribute_names[i]
            missed.append((
                tuple_id, attribute,
                str(pair.dirty.column(attribute)[tuple_id]),
                str(pair.clean.column(attribute)[tuple_id]),
            ))
            if len(missed) >= limit:
                break
    return missed


def render_breakdown(breakdowns: list[AttributeBreakdown]) -> str:
    """Plain-text per-attribute table for reports."""
    lines = [f"{'attribute':<22} {'cells':>6} {'errors':>7} "
             f"{'P':>6} {'R':>6} {'F1':>6}"]
    for b in breakdowns:
        lines.append(
            f"{b.attribute:<22} {b.n_cells:>6} {b.n_errors:>7} "
            f"{b.report.precision:>6.2f} {b.report.recall:>6.2f} "
            f"{b.report.f1:>6.2f}")
    return "\n".join(lines)
