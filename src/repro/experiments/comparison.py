"""Cross-detector comparison under one shared labelled-tuples budget.

The registry (:mod:`repro.detectors`) makes every family scoreable the
same way, so this module runs them side by side under the strictest
protocol: per run seed, *one* DiverSet labelled-row set is drawn and
handed to every detector (neural families train on exactly those tuples
via ``FixedSampler``), and metrics are computed on all cells of the
non-labelled tuples.  Because the ensemble's raw-member candidates fit
on the same rows, an ensemble that arbitrates to a lone raw member
reproduces that member's row byte for byte -- differences in the table
are attributable to fusion, never to sampling noise.
"""

from __future__ import annotations

import json
import time

from pathlib import Path

import numpy as np

from repro.dataprep import prepare
from repro.datasets.base import DatasetPair
from repro.detectors import build, get, list_detectors
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ARCHITECTURE_LABELS,
    ExperimentResult,
    RunResult,
)
from repro.metrics import ClassificationReport
from repro.sampling import DiverSet

#: Report labels per registry detector (Table 3 naming).
DETECTOR_LABELS = {
    **ARCHITECTURE_LABELS,
    "raha": "Raha (ours)",
    "augment": "Augment (ours)",
    "ensemble": "Ensemble (ours)",
}

#: Ensemble members used when a comparison names bare ``"ensemble"``.
DEFAULT_ENSEMBLE_MEMBERS = ("etsb", "raha")


def _default_config(name: str, n_label_tuples: int, epochs: int | None,
                    model_config: dict | None) -> dict:
    """Comparison-scale constructor kwargs for one registry detector."""
    config: dict = {"n_label_tuples": n_label_tuples}
    neural = {"n_label_tuples": n_label_tuples}
    if epochs is not None:
        neural["training_config"] = {"epochs": epochs}
    if model_config is not None:
        neural["model_config"] = dict(model_config)
    if name == "ensemble":
        config["members"] = [
            (member, dict(neural) if issubclass(get(member),
                                                _neural_base()) else {})
            for member in DEFAULT_ENSEMBLE_MEMBERS]
    elif issubclass(get(name), _neural_base()):
        config = neural
    return config


def _neural_base():
    from repro.detectors import NeuralDetector
    return NeuralDetector


def run_detector_comparison(pair: DatasetPair,
                            detectors: tuple[str, ...] = ("etsb", "raha",
                                                          "ensemble"),
                            n_runs: int = 3, n_label_tuples: int = 20,
                            epochs: int | None = None,
                            model_config: dict | None = None,
                            detector_configs: dict[str, dict] | None = None,
                            base_seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every named detector over shared labelled rows, per seed.

    Parameters
    ----------
    detectors:
        Registry names (see :func:`repro.detectors.list_detectors`).
    epochs, model_config:
        Comparison-scale overrides threaded into every neural detector
        (and the ensemble's neural members); ``None`` keeps defaults.
    detector_configs:
        Per-name constructor overrides, replacing the defaults entirely
        for that detector (``seed`` is still managed per run).
    base_seed:
        Run ``i`` uses seed ``base_seed + i`` for sampling and fitting.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    unknown = [d for d in detectors if d not in list_detectors()]
    if unknown:
        raise ExperimentError(
            f"unknown detectors {unknown}; registered: {list_detectors()}")
    prepared = prepare(pair.dirty, pair.clean)
    mask = np.array(pair.error_mask())
    runs: dict[str, list[RunResult]] = {name: [] for name in detectors}
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        labeled_rows = DiverSet().select(n_label_tuples, prepared, rng)
        test_rows = np.array([i for i in range(pair.n_rows)
                              if i not in set(labeled_rows)])
        for name in detectors:
            if detector_configs and name in detector_configs:
                config = dict(detector_configs[name])
            else:
                config = _default_config(name, n_label_tuples, epochs,
                                         model_config)
            detector = build(name, **{**config, "seed": seed})
            started = time.perf_counter()
            detector.fit(pair, labeled_rows=labeled_rows)
            predictions = detector.predict_cells(pair.dirty)
            elapsed = time.perf_counter() - started
            report = ClassificationReport.from_predictions(
                mask[test_rows].astype(np.int64).reshape(-1),
                predictions[test_rows].reshape(-1))
            runs[name].append(RunResult(seed=seed, report=report,
                                        train_seconds=elapsed,
                                        best_epoch=None))
    return {
        name: ExperimentResult(dataset=pair.name,
                               system=DETECTOR_LABELS.get(name, name),
                               runs=tuple(runs[name]))
        for name in detectors
    }


def run_ensemble_baseline(pair: DatasetPair,
                          members: tuple[str, ...] = DEFAULT_ENSEMBLE_MEMBERS,
                          n_runs: int = 3, n_label_tuples: int = 20,
                          epochs: int | None = None,
                          base_seed: int = 0) -> ExperimentResult:
    """Evaluate one fused ensemble under the comparison protocol."""
    neural: dict = {"n_label_tuples": n_label_tuples}
    if epochs is not None:
        neural["training_config"] = {"epochs": epochs}
    member_specs = [
        (member, dict(neural) if issubclass(get(member), _neural_base())
         else {})
        for member in members]
    results = run_detector_comparison(
        pair, detectors=("ensemble",), n_runs=n_runs,
        n_label_tuples=n_label_tuples, base_seed=base_seed,
        detector_configs={"ensemble": {
            "members": member_specs, "n_label_tuples": n_label_tuples}})
    return results["ensemble"]


def render_comparison(results: dict[str, ExperimentResult]) -> str:
    """Fixed-width text table, one row per detector."""
    header = (f"{'detector':<10} {'system':<16} {'P':>6} {'R':>6} "
              f"{'F1':>6} {'F1 sd':>6} {'sec':>7}")
    lines = [header, "-" * len(header)]
    for name, result in results.items():
        row = result.as_row()
        lines.append(
            f"{name:<10} {result.system:<16} {row['P']:>6.3f} "
            f"{row['R']:>6.3f} {row['F1']:>6.3f} {row['F1_sd']:>6.3f} "
            f"{row['seconds']:>7.2f}")
    return "\n".join(lines)


def save_comparison(results: dict[str, ExperimentResult],
                    path: str | Path,
                    settings: dict[str, object] | None = None) -> None:
    """Write the comparison as a JSON benchmark record."""
    payload = {
        "benchmark": "detector_comparison",
        "settings": settings or {},
        "rows": {name: {"system": result.system, **{
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in result.as_row().items()}}
            for name, result in results.items()},
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
