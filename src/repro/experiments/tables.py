"""Renderers for the paper's Tables 2-5.

Each renderer takes measured :class:`~repro.experiments.runner.ExperimentResult`
objects (and, where the paper quotes other systems, the published
reference numbers) and produces both a structured
:class:`~repro.table.Table` and a formatted text block that prints the
same rows the paper reports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datasets.base import DatasetPair
from repro.errors import ExperimentError
from repro.experiments.reference import (
    DATASETS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.experiments.runner import ExperimentResult
from repro.metrics import mean, stdev
from repro.table import Table


def _fmt(value: float | None, digits: int = 2) -> str:
    return "n/a" if value is None else f"{value:.{digits}f}"


def render_table2(pairs: Sequence[DatasetPair]) -> tuple[Table, str]:
    """Table 2: dataset overview (size, error rate, characters, types)."""
    rows = [pair.stats().as_row() for pair in pairs]
    table = Table.from_rows(rows)
    return table, table.preview(len(rows))


def _results_by_dataset(results: Sequence[ExperimentResult]
                        ) -> dict[tuple[str, str], ExperimentResult]:
    indexed: dict[tuple[str, str], ExperimentResult] = {}
    for result in results:
        key = (result.system, result.dataset)
        if key in indexed:
            raise ExperimentError(f"duplicate result for {key}")
        indexed[key] = result
    return indexed


def render_table3(results: Sequence[ExperimentResult],
                  include_paper_rows: bool = True) -> tuple[Table, str]:
    """Table 3: P/R/F1 per dataset for every system.

    Measured systems come from ``results``; when ``include_paper_rows``
    is set, the published Raha / Rotom / Rotom+SSL rows and the paper's
    own TSB/ETSB rows are added for comparison (marked ``(paper)``).
    """
    indexed = _results_by_dataset(results)
    systems = []
    for result in results:
        if result.system not in systems:
            systems.append(result.system)

    out_rows = []
    if include_paper_rows:
        for system, per_dataset in PAPER_TABLE3.items():
            row: dict[str, object] = {"System": f"{system} (paper)"}
            for dataset in DATASETS:
                entry = per_dataset[dataset]
                row[f"{dataset}/P"] = _fmt(entry.precision)
                row[f"{dataset}/R"] = _fmt(entry.recall)
                row[f"{dataset}/F1"] = _fmt(entry.f1)
            out_rows.append(row)
    for system in systems:
        row = {"System": f"{system} (measured)"}
        sd_row: dict[str, object] = {"System": "  s.d."}
        for dataset in DATASETS:
            result = indexed.get((system, dataset))
            if result is None:
                for metric in ("P", "R", "F1"):
                    row[f"{dataset}/{metric}"] = "n/a"
                    sd_row[f"{dataset}/{metric}"] = "n/a"
                continue
            summary = result.as_row()
            for metric in ("P", "R", "F1"):
                row[f"{dataset}/{metric}"] = _fmt(summary[metric])
                sd_row[f"{dataset}/{metric}"] = _fmt(summary[f"{metric}_sd"])
        out_rows.append(row)
        out_rows.append(sd_row)
    table = Table.from_rows(out_rows)
    return table, table.preview(len(out_rows))


def f1_averages(results: Sequence[ExperimentResult],
                without: str = "flights") -> dict[str, dict[str, float]]:
    """Per-system mean/stdev of F1 across datasets, with/without one dataset.

    This is the Table 4 computation: the spread is over *datasets* (each
    dataset contributing its mean F1 over runs), matching the paper.
    """
    by_system: dict[str, dict[str, float]] = {}
    systems: dict[str, list[ExperimentResult]] = {}
    for result in results:
        systems.setdefault(result.system, []).append(result)
    for system, system_results in systems.items():
        f1s = {r.dataset: r.f1.mean for r in system_results}
        with_values = list(f1s.values())
        without_values = [v for d, v in f1s.items() if d != without]
        if not without_values:
            raise ExperimentError(f"no datasets besides {without!r} for {system}")
        by_system[system] = {
            "avg_wo": mean(without_values), "sd_wo": stdev(without_values),
            "avg_w": mean(with_values), "sd_w": stdev(with_values),
        }
    return by_system


def render_table4(results: Sequence[ExperimentResult],
                  include_paper_rows: bool = True) -> tuple[Table, str]:
    """Table 4: average F1 and s.d. without (1) and with (2) Flights."""
    rows = []
    if include_paper_rows:
        for system, entry in PAPER_TABLE4.items():
            rows.append({
                "System": f"{system} (paper)",
                "AVG w/o Flights": _fmt(entry["avg_wo"]),
                "S.D. w/o Flights": _fmt(entry["sd_wo"]),
                "AVG w/ Flights": _fmt(entry["avg_w"]),
                "S.D. w/ Flights": _fmt(entry["sd_w"]),
            })
    for system, entry in f1_averages(results).items():
        rows.append({
            "System": f"{system} (measured)",
            "AVG w/o Flights": _fmt(entry["avg_wo"]),
            "S.D. w/o Flights": _fmt(entry["sd_wo"]),
            "AVG w/ Flights": _fmt(entry["avg_w"]),
            "S.D. w/ Flights": _fmt(entry["sd_w"]),
        })
    table = Table.from_rows(rows)
    return table, table.preview(len(rows))


def render_table5(results: Sequence[ExperimentResult],
                  include_paper_rows: bool = True) -> tuple[Table, str]:
    """Table 5: training time per dataset for TSB-RNN and ETSB-RNN."""
    indexed = _results_by_dataset(results)
    rows = []
    measured_means: dict[str, list[float]] = {"TSB-RNN": [], "ETSB-RNN": []}
    for dataset in DATASETS:
        row: dict[str, object] = {"Name": dataset}
        if include_paper_rows:
            paper = PAPER_TABLE5[dataset]
            row["TSB paper [s]"] = _fmt(paper["tsb_avg"], 0)
            row["ETSB paper [s]"] = _fmt(paper["etsb_avg"], 0)
        for system, column in (("TSB-RNN", "TSB measured [s]"),
                               ("ETSB-RNN", "ETSB measured [s]")):
            result = indexed.get((system, dataset))
            if result is None:
                row[column] = "n/a"
            else:
                seconds = result.train_seconds
                row[column] = f"{seconds.mean:.1f} ± {seconds.stdev:.1f}"
                measured_means[system].append(seconds.mean)
        rows.append(row)
    avg_row: dict[str, object] = {"Name": "AVG"}
    if include_paper_rows:
        avg_row["TSB paper [s]"] = "183"
        avg_row["ETSB paper [s]"] = "191"
    for system, column in (("TSB-RNN", "TSB measured [s]"),
                           ("ETSB-RNN", "ETSB measured [s]")):
        values = measured_means[system]
        avg_row[column] = _fmt(mean(values), 1) if values else "n/a"
    rows.append(avg_row)
    table = Table.from_rows(rows)
    return table, table.preview(len(rows))
