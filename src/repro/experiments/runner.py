"""Repeated-run experiment execution (Section 5.2's protocol).

``run_experiment`` trains a detector ``n_runs`` times with different
seeds, recording precision/recall/F1, wall-clock training time and
(optionally) per-epoch train/test accuracy for the figures.  Runs are
independent, so ``n_workers > 1`` fans them out over a process pool;
``run_experiment_matrix`` extends the fan-out to the full dataset x seed
grid.  Each task derives its seed as ``base_seed + run_index`` whether it
runs serially or in a worker, so parallel execution aggregates to the
identical result (wall-clock timings aside).
``run_raha_baseline`` evaluates the from-scratch Raha implementation
under the identical 20-labelled-tuples protocol.
"""

from __future__ import annotations

import time

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.baselines.raha import RahaDetector

from repro.datasets.base import DatasetPair
from repro.errors import ExperimentError
from repro.experiments.journal import TaskJournal, task_key
from repro.faults import inject
from repro.metrics import ClassificationReport, summarize
from repro.metrics.stats import Summary
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.nn import EpochEvaluator
from repro.nn.training import predict_proba
from repro.sampling import DiverSet, Sampler

#: Report labels for the neural architectures (Table 3 naming).
ARCHITECTURE_LABELS = {
    "tsb": "TSB-RNN",
    "etsb": "ETSB-RNN",
    "attn": "Attn-ED",
}


@dataclass(frozen=True)
class RunResult:
    """One training run's outcome.

    ``unique_cell_ratio`` and the cache counters describe the evaluation
    prediction pass (the dedup-memoized inference engine): how many test
    cells were duplicates and how many were served from the prediction
    cache, keeping inference speedups observable run by run.

    ``telemetry`` is the run's full metrics snapshot (the
    :meth:`repro.telemetry.MetricsRegistry.snapshot` format) when
    telemetry was enabled during execution, else ``None``.  The snapshot
    pickles cleanly, so worker-process runs carry their metrics back to
    the parent for merging.
    """

    seed: int
    report: ClassificationReport
    train_seconds: float
    best_epoch: int | None
    train_accuracy_curve: tuple[float, ...] = ()
    test_accuracy_curve: tuple[float, ...] = ()
    unique_cell_ratio: float | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    telemetry: dict | None = None


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retries (graceful-degradation record)."""

    task_index: int
    dataset: str
    seed: int
    attempts: int
    error_type: str
    error: str


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate over the repeated runs of one experiment.

    ``failures`` is non-empty only for degraded runs (``fail_fast=False``
    with tasks that exhausted their retries): the aggregate then covers
    the successful runs and the failures document exactly what is
    missing.
    """

    dataset: str
    system: str
    runs: tuple[RunResult, ...]
    failures: tuple[TaskFailure, ...] = ()

    def _summary(self, metric: str) -> Summary:
        return summarize([getattr(run.report, metric) for run in self.runs])

    @property
    def precision(self) -> Summary:
        """Precision summary over runs."""
        return self._summary("precision")

    @property
    def recall(self) -> Summary:
        """Recall summary over runs."""
        return self._summary("recall")

    @property
    def f1(self) -> Summary:
        """F1 summary over runs."""
        return self._summary("f1")

    @property
    def train_seconds(self) -> Summary:
        """Training-time summary over runs."""
        return summarize([run.train_seconds for run in self.runs])

    @property
    def unique_cell_ratio(self) -> float | None:
        """Mean unique-cell ratio of the runs' evaluation passes."""
        ratios = [run.unique_cell_ratio for run in self.runs
                  if run.unique_cell_ratio is not None]
        return sum(ratios) / len(ratios) if ratios else None

    @property
    def cache_counters(self) -> tuple[int, int]:
        """Total (hits, misses) of the runs' evaluation prediction caches."""
        return (sum(run.cache_hits for run in self.runs),
                sum(run.cache_misses for run in self.runs))

    @property
    def merged_telemetry(self) -> dict | None:
        """All runs' telemetry snapshots merged (``None`` if none carry one).

        Counters, histograms and timers add across runs; gauges keep the
        last run's value.  Identical whether the runs executed serially
        or on a process pool.
        """
        snapshots = [run.telemetry for run in self.runs
                     if run.telemetry is not None]
        return telemetry.merge_snapshots(snapshots) if snapshots else None

    def as_row(self) -> dict[str, float]:
        """Flat dict used by the table renderers."""
        return {
            "P": self.precision.mean, "P_sd": self.precision.stdev,
            "R": self.recall.mean, "R_sd": self.recall.stdev,
            "F1": self.f1.mean, "F1_sd": self.f1.stdev,
            "seconds": self.train_seconds.mean,
            "seconds_sd": self.train_seconds.stdev,
        }


def _execute_task(task: tuple, task_index: int, attempt: int) -> RunResult:
    """One durable-executor attempt at one task, bracketed by injects.

    Module-level so the process pool can pickle it; runs in the worker,
    so ``runner.task_start`` / ``runner.task_end`` faults fire in the
    process doing the work (workers inherit plans via ``REPRO_FAULTS``).
    The context carries the task identity and the attempt number, letting
    a chaos plan target e.g. "kill task 3" or "fail every first attempt".
    """
    context = {"task_index": task_index, "dataset": task[0].name,
               "seed": task[6], "attempt": attempt}
    inject("runner.task_start", **context)
    result = _execute_run(*task)
    inject("runner.task_end", **context)
    return result


def _execute_run(pair: DatasetPair, architecture: str,
                 sampler: Sampler | None, n_label_tuples: int,
                 model_config: ModelConfig | None,
                 training_config: TrainingConfig,
                 seed: int, track_curves: bool,
                 inference_workers: int = 0,
                 inference_precision: str = "float64") -> RunResult:
    """Train and evaluate one detector run (one task of the matrix).

    A module-level function so a :class:`ProcessPoolExecutor` can pickle
    it; seeding depends only on the arguments, never on which process
    executes the task, so serial and parallel schedules produce the same
    :class:`RunResult` (up to ``train_seconds`` and telemetry timings).

    When telemetry is enabled the run executes under a task-local
    :class:`~repro.telemetry.MetricsRegistry` whose snapshot is attached
    to the result -- worker processes never share sinks or metric
    objects, so records can't interleave; the parent merges snapshots.
    """
    if telemetry.enabled():
        registry = telemetry.MetricsRegistry()
        capture = telemetry.MemorySink()
        registry.add_sink(capture)
        with telemetry.use_registry(registry):
            result = _execute_run_body(
                pair, architecture, sampler, n_label_tuples, model_config,
                training_config, seed, track_curves,
                inference_workers, inference_precision)
        snapshot = registry.snapshot()
        # Piggyback the raw records so the parent can re-emit them into
        # its own sinks; merge_snapshot ignores the extra key.
        snapshot["records"] = capture.records
        return replace(result, telemetry=snapshot)
    return _execute_run_body(pair, architecture, sampler, n_label_tuples,
                             model_config, training_config, seed,
                             track_curves, inference_workers,
                             inference_precision)


def _execute_run_body(pair: DatasetPair, architecture: str,
                      sampler: Sampler | None, n_label_tuples: int,
                      model_config: ModelConfig | None,
                      training_config: TrainingConfig,
                      seed: int, track_curves: bool,
                      inference_workers: int = 0,
                      inference_precision: str = "float64") -> RunResult:
    detector = ErrorDetector(
        architecture=architecture,
        sampler=sampler if sampler is not None else DiverSet(),
        n_label_tuples=n_label_tuples,
        model_config=model_config,
        training_config=training_config,
        seed=seed,
        inference_workers=inference_workers,
        inference_precision=inference_precision,
    )
    callbacks = []
    curve_logs: dict[str, list[float]] = {"train_acc": [], "test_acc": []}
    if track_curves:
        callbacks.append(_curve_callback(detector, curve_logs))
    detector.extra_callbacks = tuple(callbacks)
    started = time.perf_counter()
    detector.fit(pair)
    elapsed = time.perf_counter() - started
    result = detector.evaluate()
    assert detector.checkpoint is not None
    inference = result.inference
    return RunResult(
        seed=seed,
        report=result.report,
        train_seconds=elapsed,
        best_epoch=detector.checkpoint.best_epoch,
        train_accuracy_curve=tuple(curve_logs["train_acc"]),
        test_accuracy_curve=tuple(curve_logs["test_acc"]),
        unique_cell_ratio=(None if inference is None
                           else round(inference.unique_ratio, 4)),
        cache_hits=0 if inference is None else inference.cache_hits,
        cache_misses=0 if inference is None else inference.cache_misses,
    )


def _journal_fingerprint(architecture: str, n_label_tuples: int,
                         model_config: ModelConfig | None,
                         training_config: TrainingConfig,
                         track_curves: bool,
                         inference_precision: str = "float64") -> dict:
    """The configuration identity a journal is valid for.

    Deliberately excludes the dataset list, seed range and worker counts
    (both process fan-out and the kernel work plane): those select *which*
    tasks run or how fast, not what any one task computes, so e.g.
    widening ``n_runs`` keeps every journalled task reusable.  The
    inference precision *is* part of the identity -- reduced-precision
    metrics are only tolerance-close to float64 -- but the default is
    omitted so pre-existing float64 journals stay valid.
    """
    fingerprint = {
        "architecture": architecture,
        "n_label_tuples": n_label_tuples,
        "model_config": None if model_config is None else asdict(model_config),
        "training_config": asdict(training_config),
        "track_curves": track_curves,
    }
    if inference_precision != "float64":
        fingerprint["inference_precision"] = inference_precision
    return fingerprint


def run_experiment(pair: DatasetPair, architecture: str = "etsb",
                   sampler: Sampler | None = None, n_runs: int = 10,
                   n_label_tuples: int = 20, epochs: int = 120,
                   model_config: ModelConfig | None = None,
                   training_config: TrainingConfig | None = None,
                   base_seed: int = 0,
                   track_curves: bool = False,
                   n_workers: int | None = None,
                   max_retries: int = 0,
                   retry_backoff: float = 0.5,
                   task_timeout: float | None = None,
                   journal_path: str | Path | None = None,
                   fail_fast: bool = True,
                   inference_workers: int = 0,
                   inference_precision: str = "float64") -> ExperimentResult:
    """Train and evaluate a detector ``n_runs`` times on one dataset.

    Parameters
    ----------
    pair:
        The (dirty, clean) dataset.
    architecture:
        ``"tsb"`` or ``"etsb"``.
    sampler:
        Trainset-selection algorithm (default DiverSet, as in Section 5.2).
    n_runs:
        Repetitions; each run uses seed ``base_seed + run_index``.
    n_label_tuples, epochs:
        The paper's 20 tuples and 120 epochs by default.
    training_config:
        Full training configuration (e.g. with ``bucket_batches=True``);
        overrides ``epochs`` when given.
    track_curves:
        Record per-epoch train/test accuracy (needed for Figures 6/7;
        costs one extra evaluation pass per epoch).
    n_workers:
        Fan the runs out over this many worker processes.  ``None`` or 1
        runs serially in-process.  Aggregation is identical either way
        because every run's seed is ``base_seed + run_index``.
    max_retries, retry_backoff, task_timeout:
        Durability knobs: per-task retries with exponential backoff and
        (pooled execution only) a per-attempt wall-clock limit.
    journal_path:
        Completed-task journal (JSONL).  A re-invocation with the same
        journal skips every task already recorded, so a killed sweep
        resumes where it stopped and aggregates identically to a
        failure-free run.
    fail_fast:
        ``True`` raises on the first task that exhausts its retries;
        ``False`` degrades gracefully, returning the successful runs
        plus :class:`TaskFailure` records.
    inference_workers, inference_precision:
        Prediction-pass knobs passed to every run's
        :class:`~repro.models.detector.ErrorDetector` (thread workers
        keep results bit-identical; reduced precision changes the
        journal fingerprint).
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    config = (training_config if training_config is not None
              else TrainingConfig(epochs=epochs))
    tasks = [
        (pair, architecture, sampler, n_label_tuples, model_config, config,
         base_seed + run_index, track_curves, inference_workers,
         inference_precision)
        for run_index in range(n_runs)
    ]
    journal = None
    if journal_path is not None:
        journal = TaskJournal(journal_path, _journal_fingerprint(
            architecture, n_label_tuples, model_config, config, track_curves,
            inference_precision))
    runs, failures = _execute_tasks(
        tasks, n_workers, max_retries=max_retries,
        retry_backoff=retry_backoff, task_timeout=task_timeout,
        journal=journal, fail_fast=fail_fast)
    system = ARCHITECTURE_LABELS.get(architecture, architecture)
    result = ExperimentResult(dataset=pair.name, system=system,
                              runs=tuple(run for run in runs
                                         if run is not None),
                              failures=tuple(failures))
    _publish_experiment_telemetry(result)
    return result


def run_experiment_matrix(pairs: Sequence[DatasetPair],
                          architecture: str = "etsb",
                          sampler: Sampler | None = None, n_runs: int = 10,
                          n_label_tuples: int = 20, epochs: int = 120,
                          model_config: ModelConfig | None = None,
                          training_config: TrainingConfig | None = None,
                          base_seed: int = 0,
                          n_workers: int | None = None,
                          max_retries: int = 0,
                          retry_backoff: float = 0.5,
                          task_timeout: float | None = None,
                          journal_path: str | Path | None = None,
                          fail_fast: bool = True,
                          inference_workers: int = 0,
                          inference_precision: str = "float64",
                          ) -> dict[str, ExperimentResult]:
    """Run the full dataset x seed grid, optionally over a process pool.

    Every (dataset, run) cell is an independent task, so with
    ``n_workers > 1`` the whole grid is interleaved across workers instead
    of parallelising only within one dataset.  Returns one
    :class:`ExperimentResult` per dataset, keyed and aggregated exactly as
    ``{pair.name: run_experiment(pair, ...)}`` would produce serially.

    The durability knobs (``max_retries``, ``retry_backoff``,
    ``task_timeout``, ``journal_path``, ``fail_fast``) behave as in
    :func:`run_experiment`; with a journal, a matrix re-invocation after
    a crash re-runs only the tasks the journal does not yet hold.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    names = [pair.name for pair in pairs]
    if len(set(names)) != len(names):
        raise ExperimentError(f"dataset names must be unique, got {names}")
    config = (training_config if training_config is not None
              else TrainingConfig(epochs=epochs))
    tasks = [
        (pair, architecture, sampler, n_label_tuples, model_config, config,
         base_seed + run_index, False, inference_workers,
         inference_precision)
        for pair in pairs
        for run_index in range(n_runs)
    ]
    journal = None
    if journal_path is not None:
        journal = TaskJournal(journal_path, _journal_fingerprint(
            architecture, n_label_tuples, model_config, config, False,
            inference_precision))
    runs, failures = _execute_tasks(
        tasks, n_workers, max_retries=max_retries,
        retry_backoff=retry_backoff, task_timeout=task_timeout,
        journal=journal, fail_fast=fail_fast)
    system = ARCHITECTURE_LABELS.get(architecture, architecture)
    results: dict[str, ExperimentResult] = {}
    for i, pair in enumerate(pairs):
        chunk = runs[i * n_runs:(i + 1) * n_runs]
        results[pair.name] = ExperimentResult(
            dataset=pair.name, system=system,
            runs=tuple(run for run in chunk if run is not None),
            failures=tuple(f for f in failures if f.dataset == pair.name))
        _publish_experiment_telemetry(results[pair.name])
    return results


def _publish_experiment_telemetry(result: ExperimentResult) -> None:
    """Merge per-run snapshots into the process registry and emit a record.

    Each run's metrics were collected under a task-local registry
    (serial and pooled schedules alike), so the process registry only
    learns about them here -- one merge per run, then one
    ``{"type": "experiment"}`` record per dataset.
    """
    if not telemetry.enabled():
        return
    registry = telemetry.get_registry()
    for run in result.runs:
        if run.telemetry is not None:
            for record in run.telemetry.get("records", ()):
                registry.emit({**record, "run_seed": run.seed})
            registry.merge_snapshot(run.telemetry)
    if not result.runs:  # fully-degraded dataset: nothing to aggregate
        return
    registry.emit({
        "type": "experiment",
        "dataset": result.dataset,
        "system": result.system,
        "n_runs": len(result.runs),
        "f1_mean": round(result.f1.mean, 4),
        "train_seconds_mean": round(result.train_seconds.mean, 4),
        "unique_cell_ratio": result.unique_cell_ratio,
        "cache_hits": result.cache_counters[0],
        "cache_misses": result.cache_counters[1],
    })


def _execute_tasks(tasks: list[tuple], n_workers: int | None,
                   max_retries: int = 0, retry_backoff: float = 0.5,
                   task_timeout: float | None = None,
                   journal: TaskJournal | None = None,
                   fail_fast: bool = True,
                   ) -> tuple[list[RunResult | None], list[TaskFailure]]:
    """Execute run tasks durably, preserving order.

    Per task: journal lookup (already-completed tasks are skipped and
    their journalled results reused), then up to ``1 + max_retries``
    attempts with exponential backoff (``retry_backoff * 2**(n-1)``
    seconds before retry ``n``).  Only ``Exception`` failures are
    retried -- a :class:`~repro.faults.WorkerKilled` (``BaseException``)
    propagates like the SIGKILL it simulates, and the journal is what
    makes the re-invocation cheap.  ``task_timeout`` bounds each pooled
    attempt (the timed-out worker cannot be interrupted and keeps its
    slot until it finishes; serial attempts cannot be timed out and the
    limit is ignored).  A task exhausting its retries raises
    (``fail_fast=True``) or is recorded as a :class:`TaskFailure` with a
    ``None`` result slot (``fail_fast=False``).
    """
    if n_workers is not None and n_workers < 1:
        raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
    if max_retries < 0:
        raise ExperimentError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0:
        raise ExperimentError(
            f"retry_backoff must be >= 0, got {retry_backoff}"
        )
    if task_timeout is not None and task_timeout <= 0:
        raise ExperimentError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    tele = telemetry.enabled()
    registry = telemetry.get_registry() if tele else None
    results: list[RunResult | None] = [None] * len(tasks)
    failures: list[TaskFailure] = []
    completed = journal.load() if journal is not None else {}
    pending: list[int] = []
    for i, task in enumerate(tasks):
        key = task_key(task[0].name, task[6])
        if key in completed:
            results[i] = completed[key]
            if tele:
                registry.counter("runner.tasks_skipped").inc()
        else:
            pending.append(i)

    def finish(index: int, result: RunResult) -> None:
        results[index] = result
        if journal is not None:
            journal.record(task_key(tasks[index][0].name, tasks[index][6]),
                           result)
        if tele:
            registry.counter("runner.tasks_completed").inc()

    def fail(index: int, attempts: int, error: Exception) -> None:
        if tele:
            registry.counter("retry.failures").inc()
        if fail_fast:
            raise ExperimentError(
                f"task {index} ({tasks[index][0].name}, "
                f"seed {tasks[index][6]}) failed after {attempts} "
                f"attempt(s): {error}"
            ) from error
        failures.append(TaskFailure(
            task_index=index, dataset=tasks[index][0].name,
            seed=tasks[index][6], attempts=attempts,
            error_type=type(error).__name__, error=str(error)))

    def backoff(attempt: int) -> None:
        if tele:
            registry.counter("retry.attempts").inc()
        if retry_backoff > 0:
            time.sleep(retry_backoff * 2 ** (attempt - 1))

    if n_workers is None or n_workers == 1 or len(pending) <= 1:
        for i in pending:
            for attempt in range(max_retries + 1):
                if attempt:
                    backoff(attempt)
                try:
                    result = _execute_task(tasks[i], i, attempt)
                except Exception as error:  # kills (BaseException) propagate
                    if attempt == max_retries:
                        fail(i, attempt + 1, error)
                else:
                    if tele and attempt:
                        registry.counter("retry.successes").inc()
                    finish(i, result)
                    break
        return results, failures

    workers = min(n_workers, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {i: pool.submit(_execute_task, tasks[i], i, 0)
                   for i in pending}
        for i in pending:
            for attempt in range(max_retries + 1):
                if attempt:
                    backoff(attempt)
                    futures[i] = pool.submit(_execute_task, tasks[i], i,
                                             attempt)
                try:
                    result = futures[i].result(timeout=task_timeout)
                except FutureTimeout:
                    futures[i].cancel()
                    if attempt == max_retries:
                        fail(i, attempt + 1, ExperimentError(
                            f"attempt exceeded task_timeout={task_timeout}s"))
                except Exception as error:  # kills propagate, see above
                    if attempt == max_retries:
                        fail(i, attempt + 1, error)
                else:
                    if tele and attempt:
                        registry.counter("retry.successes").inc()
                    finish(i, result)
                    break
    return results, failures


def _curve_callback(detector: ErrorDetector,
                    logs: dict[str, list[float]]) -> EpochEvaluator:
    """Per-epoch train/test accuracy recorder for the figure benches."""

    def evaluate() -> dict[str, float]:
        assert detector.model is not None and detector.split is not None
        split = detector.split
        train_probs = predict_proba(detector.model, split.train.features)
        test_probs = predict_proba(detector.model, split.test.features)
        train_acc = float(
            (train_probs.argmax(axis=1) == split.train.labels).mean())
        test_acc = float(
            (test_probs.argmax(axis=1) == split.test.labels).mean())
        logs["train_acc"].append(train_acc)
        logs["test_acc"].append(test_acc)
        return {"train_accuracy": train_acc, "test_accuracy": test_acc}

    return EpochEvaluator(evaluate)


def run_augmentation_baseline(pair: DatasetPair, n_runs: int = 10,
                              n_label_tuples: int = 20,
                              base_seed: int = 0) -> ExperimentResult:
    """Evaluate the augmentation baseline (the Rotom comparison axis).

    The detector receives the same 20 labelled tuples (sampled by
    DiverSet over the prepared data) as cell texts with labels, expands
    them with augmentation operators and classifies every held-out cell
    text.  Cells are treated per-column (one detector per attribute), as
    augmentation-based systems do.
    """
    from repro.baselines.augment import AugmentationDetector
    from repro.dataprep import prepare

    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    prepared = prepare(pair.dirty, pair.clean)
    rows = prepared.df.to_rows()
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        train_ids = set(DiverSet().select(n_label_tuples, prepared, rng))
        started = time.perf_counter()
        y_true: list[int] = []
        y_pred: list[int] = []
        for attribute in prepared.attributes:
            attr_rows = [r for r in rows if r["attribute"] == attribute]
            train = [r for r in attr_rows if r["id_"] in train_ids]
            test = [r for r in attr_rows if r["id_"] not in train_ids]
            detector = AugmentationDetector(rng=rng)
            detector.fit([r["value_x"] for r in train],
                         [int(r["label"]) for r in train])
            predictions = detector.predict([r["value_x"] for r in test])
            y_true.extend(int(r["label"]) for r in test)
            y_pred.extend(int(p) for p in predictions)
        elapsed = time.perf_counter() - started
        report = ClassificationReport.from_predictions(
            np.array(y_true), np.array(y_pred))
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Augment (ours)",
                            runs=tuple(runs))


def run_raha_baseline(pair: DatasetPair, n_runs: int = 10,
                      n_label_tuples: int = 20,
                      base_seed: int = 0) -> ExperimentResult:
    """Evaluate the from-scratch Raha baseline under the same protocol.

    The detector analyses the dirty table, samples ``n_label_tuples``
    tuples, receives their ground-truth cell labels, propagates them and
    classifies every cell.  Metrics are computed on the cells of the
    *non-labelled* tuples, mirroring the BiRNN test split.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    mask = np.array(pair.error_mask())
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        detector = RahaDetector(rng=rng)
        started = time.perf_counter()
        detector.analyze(pair.dirty, n_labels=n_label_tuples)
        labeled_rows = detector.sample_tuples(n_label_tuples)
        predictions = detector.fit_predict(
            labeled_rows, mask[labeled_rows].astype(np.int64))
        elapsed = time.perf_counter() - started
        test_rows = np.array([i for i in range(pair.n_rows)
                              if i not in set(labeled_rows)])
        report = ClassificationReport.from_predictions(
            mask[test_rows].astype(np.int64).reshape(-1),
            predictions[test_rows].reshape(-1),
        )
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Raha (ours)",
                            runs=tuple(runs))
