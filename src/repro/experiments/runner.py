"""Repeated-run experiment execution (Section 5.2's protocol).

``run_experiment`` trains a detector ``n_runs`` times with different
seeds, recording precision/recall/F1, wall-clock training time and
(optionally) per-epoch train/test accuracy for the figures.  Runs are
independent, so ``n_workers > 1`` fans them out over a process pool;
``run_experiment_matrix`` extends the fan-out to the full dataset x seed
grid.  Each task derives its seed as ``base_seed + run_index`` whether it
runs serially or in a worker, so parallel execution aggregates to the
identical result (wall-clock timings aside).
``run_raha_baseline`` evaluates the from-scratch Raha implementation
under the identical 20-labelled-tuples protocol.
"""

from __future__ import annotations

import time

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro import telemetry
from repro.baselines.raha import RahaDetector

from repro.datasets.base import DatasetPair
from repro.errors import ExperimentError
from repro.metrics import ClassificationReport, summarize
from repro.metrics.stats import Summary
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.nn import EpochEvaluator
from repro.nn.training import predict_proba
from repro.sampling import DiverSet, Sampler


@dataclass(frozen=True)
class RunResult:
    """One training run's outcome.

    ``unique_cell_ratio`` and the cache counters describe the evaluation
    prediction pass (the dedup-memoized inference engine): how many test
    cells were duplicates and how many were served from the prediction
    cache, keeping inference speedups observable run by run.

    ``telemetry`` is the run's full metrics snapshot (the
    :meth:`repro.telemetry.MetricsRegistry.snapshot` format) when
    telemetry was enabled during execution, else ``None``.  The snapshot
    pickles cleanly, so worker-process runs carry their metrics back to
    the parent for merging.
    """

    seed: int
    report: ClassificationReport
    train_seconds: float
    best_epoch: int | None
    train_accuracy_curve: tuple[float, ...] = ()
    test_accuracy_curve: tuple[float, ...] = ()
    unique_cell_ratio: float | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    telemetry: dict | None = None


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate over the repeated runs of one experiment."""

    dataset: str
    system: str
    runs: tuple[RunResult, ...]

    def _summary(self, metric: str) -> Summary:
        return summarize([getattr(run.report, metric) for run in self.runs])

    @property
    def precision(self) -> Summary:
        """Precision summary over runs."""
        return self._summary("precision")

    @property
    def recall(self) -> Summary:
        """Recall summary over runs."""
        return self._summary("recall")

    @property
    def f1(self) -> Summary:
        """F1 summary over runs."""
        return self._summary("f1")

    @property
    def train_seconds(self) -> Summary:
        """Training-time summary over runs."""
        return summarize([run.train_seconds for run in self.runs])

    @property
    def unique_cell_ratio(self) -> float | None:
        """Mean unique-cell ratio of the runs' evaluation passes."""
        ratios = [run.unique_cell_ratio for run in self.runs
                  if run.unique_cell_ratio is not None]
        return sum(ratios) / len(ratios) if ratios else None

    @property
    def cache_counters(self) -> tuple[int, int]:
        """Total (hits, misses) of the runs' evaluation prediction caches."""
        return (sum(run.cache_hits for run in self.runs),
                sum(run.cache_misses for run in self.runs))

    @property
    def merged_telemetry(self) -> dict | None:
        """All runs' telemetry snapshots merged (``None`` if none carry one).

        Counters, histograms and timers add across runs; gauges keep the
        last run's value.  Identical whether the runs executed serially
        or on a process pool.
        """
        snapshots = [run.telemetry for run in self.runs
                     if run.telemetry is not None]
        return telemetry.merge_snapshots(snapshots) if snapshots else None

    def as_row(self) -> dict[str, float]:
        """Flat dict used by the table renderers."""
        return {
            "P": self.precision.mean, "P_sd": self.precision.stdev,
            "R": self.recall.mean, "R_sd": self.recall.stdev,
            "F1": self.f1.mean, "F1_sd": self.f1.stdev,
            "seconds": self.train_seconds.mean,
            "seconds_sd": self.train_seconds.stdev,
        }


def _execute_run(pair: DatasetPair, architecture: str,
                 sampler: Sampler | None, n_label_tuples: int,
                 model_config: ModelConfig | None,
                 training_config: TrainingConfig,
                 seed: int, track_curves: bool) -> RunResult:
    """Train and evaluate one detector run (one task of the matrix).

    A module-level function so a :class:`ProcessPoolExecutor` can pickle
    it; seeding depends only on the arguments, never on which process
    executes the task, so serial and parallel schedules produce the same
    :class:`RunResult` (up to ``train_seconds`` and telemetry timings).

    When telemetry is enabled the run executes under a task-local
    :class:`~repro.telemetry.MetricsRegistry` whose snapshot is attached
    to the result -- worker processes never share sinks or metric
    objects, so records can't interleave; the parent merges snapshots.
    """
    if telemetry.enabled():
        registry = telemetry.MetricsRegistry()
        capture = telemetry.MemorySink()
        registry.add_sink(capture)
        with telemetry.use_registry(registry):
            result = _execute_run_body(
                pair, architecture, sampler, n_label_tuples, model_config,
                training_config, seed, track_curves)
        snapshot = registry.snapshot()
        # Piggyback the raw records so the parent can re-emit them into
        # its own sinks; merge_snapshot ignores the extra key.
        snapshot["records"] = capture.records
        return replace(result, telemetry=snapshot)
    return _execute_run_body(pair, architecture, sampler, n_label_tuples,
                             model_config, training_config, seed, track_curves)


def _execute_run_body(pair: DatasetPair, architecture: str,
                      sampler: Sampler | None, n_label_tuples: int,
                      model_config: ModelConfig | None,
                      training_config: TrainingConfig,
                      seed: int, track_curves: bool) -> RunResult:
    detector = ErrorDetector(
        architecture=architecture,
        sampler=sampler if sampler is not None else DiverSet(),
        n_label_tuples=n_label_tuples,
        model_config=model_config,
        training_config=training_config,
        seed=seed,
    )
    callbacks = []
    curve_logs: dict[str, list[float]] = {"train_acc": [], "test_acc": []}
    if track_curves:
        callbacks.append(_curve_callback(detector, curve_logs))
    detector.extra_callbacks = tuple(callbacks)
    started = time.perf_counter()
    detector.fit(pair)
    elapsed = time.perf_counter() - started
    result = detector.evaluate()
    assert detector.checkpoint is not None
    inference = result.inference
    return RunResult(
        seed=seed,
        report=result.report,
        train_seconds=elapsed,
        best_epoch=detector.checkpoint.best_epoch,
        train_accuracy_curve=tuple(curve_logs["train_acc"]),
        test_accuracy_curve=tuple(curve_logs["test_acc"]),
        unique_cell_ratio=(None if inference is None
                           else round(inference.unique_ratio, 4)),
        cache_hits=0 if inference is None else inference.cache_hits,
        cache_misses=0 if inference is None else inference.cache_misses,
    )


def run_experiment(pair: DatasetPair, architecture: str = "etsb",
                   sampler: Sampler | None = None, n_runs: int = 10,
                   n_label_tuples: int = 20, epochs: int = 120,
                   model_config: ModelConfig | None = None,
                   training_config: TrainingConfig | None = None,
                   base_seed: int = 0,
                   track_curves: bool = False,
                   n_workers: int | None = None) -> ExperimentResult:
    """Train and evaluate a detector ``n_runs`` times on one dataset.

    Parameters
    ----------
    pair:
        The (dirty, clean) dataset.
    architecture:
        ``"tsb"`` or ``"etsb"``.
    sampler:
        Trainset-selection algorithm (default DiverSet, as in Section 5.2).
    n_runs:
        Repetitions; each run uses seed ``base_seed + run_index``.
    n_label_tuples, epochs:
        The paper's 20 tuples and 120 epochs by default.
    training_config:
        Full training configuration (e.g. with ``bucket_batches=True``);
        overrides ``epochs`` when given.
    track_curves:
        Record per-epoch train/test accuracy (needed for Figures 6/7;
        costs one extra evaluation pass per epoch).
    n_workers:
        Fan the runs out over this many worker processes.  ``None`` or 1
        runs serially in-process.  Aggregation is identical either way
        because every run's seed is ``base_seed + run_index``.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    config = (training_config if training_config is not None
              else TrainingConfig(epochs=epochs))
    tasks = [
        (pair, architecture, sampler, n_label_tuples, model_config, config,
         base_seed + run_index, track_curves)
        for run_index in range(n_runs)
    ]
    runs = _execute_tasks(tasks, n_workers)
    system = "ETSB-RNN" if architecture == "etsb" else "TSB-RNN"
    result = ExperimentResult(dataset=pair.name, system=system,
                              runs=tuple(runs))
    _publish_experiment_telemetry(result)
    return result


def run_experiment_matrix(pairs: Sequence[DatasetPair],
                          architecture: str = "etsb",
                          sampler: Sampler | None = None, n_runs: int = 10,
                          n_label_tuples: int = 20, epochs: int = 120,
                          model_config: ModelConfig | None = None,
                          training_config: TrainingConfig | None = None,
                          base_seed: int = 0,
                          n_workers: int | None = None,
                          ) -> dict[str, ExperimentResult]:
    """Run the full dataset x seed grid, optionally over a process pool.

    Every (dataset, run) cell is an independent task, so with
    ``n_workers > 1`` the whole grid is interleaved across workers instead
    of parallelising only within one dataset.  Returns one
    :class:`ExperimentResult` per dataset, keyed and aggregated exactly as
    ``{pair.name: run_experiment(pair, ...)}`` would produce serially.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    names = [pair.name for pair in pairs]
    if len(set(names)) != len(names):
        raise ExperimentError(f"dataset names must be unique, got {names}")
    config = (training_config if training_config is not None
              else TrainingConfig(epochs=epochs))
    tasks = [
        (pair, architecture, sampler, n_label_tuples, model_config, config,
         base_seed + run_index, False)
        for pair in pairs
        for run_index in range(n_runs)
    ]
    runs = _execute_tasks(tasks, n_workers)
    system = "ETSB-RNN" if architecture == "etsb" else "TSB-RNN"
    results: dict[str, ExperimentResult] = {}
    for i, pair in enumerate(pairs):
        chunk = tuple(runs[i * n_runs:(i + 1) * n_runs])
        results[pair.name] = ExperimentResult(dataset=pair.name,
                                              system=system, runs=chunk)
        _publish_experiment_telemetry(results[pair.name])
    return results


def _publish_experiment_telemetry(result: ExperimentResult) -> None:
    """Merge per-run snapshots into the process registry and emit a record.

    Each run's metrics were collected under a task-local registry
    (serial and pooled schedules alike), so the process registry only
    learns about them here -- one merge per run, then one
    ``{"type": "experiment"}`` record per dataset.
    """
    if not telemetry.enabled():
        return
    registry = telemetry.get_registry()
    for run in result.runs:
        if run.telemetry is not None:
            for record in run.telemetry.get("records", ()):
                registry.emit({**record, "run_seed": run.seed})
            registry.merge_snapshot(run.telemetry)
    registry.emit({
        "type": "experiment",
        "dataset": result.dataset,
        "system": result.system,
        "n_runs": len(result.runs),
        "f1_mean": round(result.f1.mean, 4),
        "train_seconds_mean": round(result.train_seconds.mean, 4),
        "unique_cell_ratio": result.unique_cell_ratio,
        "cache_hits": result.cache_counters[0],
        "cache_misses": result.cache_counters[1],
    })


def _execute_tasks(tasks: list[tuple], n_workers: int | None) -> list[RunResult]:
    """Execute run tasks serially or on a process pool, preserving order."""
    if n_workers is not None and n_workers < 1:
        raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers is None or n_workers == 1 or len(tasks) == 1:
        return [_execute_run(*task) for task in tasks]
    workers = min(n_workers, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_execute_run, *task) for task in tasks]
        return [future.result() for future in futures]


def _curve_callback(detector: ErrorDetector,
                    logs: dict[str, list[float]]) -> EpochEvaluator:
    """Per-epoch train/test accuracy recorder for the figure benches."""

    def evaluate() -> dict[str, float]:
        assert detector.model is not None and detector.split is not None
        split = detector.split
        train_probs = predict_proba(detector.model, split.train.features)
        test_probs = predict_proba(detector.model, split.test.features)
        train_acc = float(
            (train_probs.argmax(axis=1) == split.train.labels).mean())
        test_acc = float(
            (test_probs.argmax(axis=1) == split.test.labels).mean())
        logs["train_acc"].append(train_acc)
        logs["test_acc"].append(test_acc)
        return {"train_accuracy": train_acc, "test_accuracy": test_acc}

    return EpochEvaluator(evaluate)


def run_augmentation_baseline(pair: DatasetPair, n_runs: int = 10,
                              n_label_tuples: int = 20,
                              base_seed: int = 0) -> ExperimentResult:
    """Evaluate the augmentation baseline (the Rotom comparison axis).

    The detector receives the same 20 labelled tuples (sampled by
    DiverSet over the prepared data) as cell texts with labels, expands
    them with augmentation operators and classifies every held-out cell
    text.  Cells are treated per-column (one detector per attribute), as
    augmentation-based systems do.
    """
    from repro.baselines.augment import AugmentationDetector
    from repro.dataprep import prepare

    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    prepared = prepare(pair.dirty, pair.clean)
    rows = prepared.df.to_rows()
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        train_ids = set(DiverSet().select(n_label_tuples, prepared, rng))
        started = time.perf_counter()
        y_true: list[int] = []
        y_pred: list[int] = []
        for attribute in prepared.attributes:
            attr_rows = [r for r in rows if r["attribute"] == attribute]
            train = [r for r in attr_rows if r["id_"] in train_ids]
            test = [r for r in attr_rows if r["id_"] not in train_ids]
            detector = AugmentationDetector(rng=rng)
            detector.fit([r["value_x"] for r in train],
                         [int(r["label"]) for r in train])
            predictions = detector.predict([r["value_x"] for r in test])
            y_true.extend(int(r["label"]) for r in test)
            y_pred.extend(int(p) for p in predictions)
        elapsed = time.perf_counter() - started
        report = ClassificationReport.from_predictions(
            np.array(y_true), np.array(y_pred))
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Augment (ours)",
                            runs=tuple(runs))


def run_raha_baseline(pair: DatasetPair, n_runs: int = 10,
                      n_label_tuples: int = 20,
                      base_seed: int = 0) -> ExperimentResult:
    """Evaluate the from-scratch Raha baseline under the same protocol.

    The detector analyses the dirty table, samples ``n_label_tuples``
    tuples, receives their ground-truth cell labels, propagates them and
    classifies every cell.  Metrics are computed on the cells of the
    *non-labelled* tuples, mirroring the BiRNN test split.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    mask = np.array(pair.error_mask())
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        detector = RahaDetector(rng=rng)
        started = time.perf_counter()
        detector.analyze(pair.dirty, n_labels=n_label_tuples)
        labeled_rows = detector.sample_tuples(n_label_tuples)
        predictions = detector.fit_predict(
            labeled_rows, mask[labeled_rows].astype(np.int64))
        elapsed = time.perf_counter() - started
        test_rows = np.array([i for i in range(pair.n_rows)
                              if i not in set(labeled_rows)])
        report = ClassificationReport.from_predictions(
            mask[test_rows].astype(np.int64).reshape(-1),
            predictions[test_rows].reshape(-1),
        )
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Raha (ours)",
                            runs=tuple(runs))
