"""Repeated-run experiment execution (Section 5.2's protocol).

``run_experiment`` trains a detector ``n_runs`` times with different
seeds, recording precision/recall/F1, wall-clock training time and
(optionally) per-epoch train/test accuracy for the figures.
``run_raha_baseline`` evaluates the from-scratch Raha implementation
under the identical 20-labelled-tuples protocol.
"""

from __future__ import annotations

import time

from dataclasses import dataclass

import numpy as np

from repro.baselines.raha import RahaDetector

from repro.datasets.base import DatasetPair
from repro.errors import ExperimentError
from repro.metrics import ClassificationReport, summarize
from repro.metrics.stats import Summary
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.nn import EpochEvaluator
from repro.nn.training import predict_proba
from repro.sampling import DiverSet, Sampler


@dataclass(frozen=True)
class RunResult:
    """One training run's outcome."""

    seed: int
    report: ClassificationReport
    train_seconds: float
    best_epoch: int | None
    train_accuracy_curve: tuple[float, ...] = ()
    test_accuracy_curve: tuple[float, ...] = ()


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate over the repeated runs of one experiment."""

    dataset: str
    system: str
    runs: tuple[RunResult, ...]

    def _summary(self, metric: str) -> Summary:
        return summarize([getattr(run.report, metric) for run in self.runs])

    @property
    def precision(self) -> Summary:
        """Precision summary over runs."""
        return self._summary("precision")

    @property
    def recall(self) -> Summary:
        """Recall summary over runs."""
        return self._summary("recall")

    @property
    def f1(self) -> Summary:
        """F1 summary over runs."""
        return self._summary("f1")

    @property
    def train_seconds(self) -> Summary:
        """Training-time summary over runs."""
        return summarize([run.train_seconds for run in self.runs])

    def as_row(self) -> dict[str, float]:
        """Flat dict used by the table renderers."""
        return {
            "P": self.precision.mean, "P_sd": self.precision.stdev,
            "R": self.recall.mean, "R_sd": self.recall.stdev,
            "F1": self.f1.mean, "F1_sd": self.f1.stdev,
            "seconds": self.train_seconds.mean,
            "seconds_sd": self.train_seconds.stdev,
        }


def run_experiment(pair: DatasetPair, architecture: str = "etsb",
                   sampler: Sampler | None = None, n_runs: int = 10,
                   n_label_tuples: int = 20, epochs: int = 120,
                   model_config: ModelConfig | None = None,
                   base_seed: int = 0,
                   track_curves: bool = False) -> ExperimentResult:
    """Train and evaluate a detector ``n_runs`` times on one dataset.

    Parameters
    ----------
    pair:
        The (dirty, clean) dataset.
    architecture:
        ``"tsb"`` or ``"etsb"``.
    sampler:
        Trainset-selection algorithm (default DiverSet, as in Section 5.2).
    n_runs:
        Repetitions; each run uses seed ``base_seed + run_index``.
    n_label_tuples, epochs:
        The paper's 20 tuples and 120 epochs by default.
    track_curves:
        Record per-epoch train/test accuracy (needed for Figures 6/7;
        costs one extra evaluation pass per epoch).
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        detector = ErrorDetector(
            architecture=architecture,
            sampler=sampler if sampler is not None else DiverSet(),
            n_label_tuples=n_label_tuples,
            model_config=model_config,
            training_config=TrainingConfig(epochs=epochs),
            seed=seed,
        )
        callbacks = []
        curve_logs: dict[str, list[float]] = {"train_acc": [], "test_acc": []}
        if track_curves:
            callbacks.append(_curve_callback(detector, curve_logs))
        detector.extra_callbacks = tuple(callbacks)
        started = time.perf_counter()
        detector.fit(pair)
        elapsed = time.perf_counter() - started
        report = detector.evaluate().report
        assert detector.checkpoint is not None
        runs.append(RunResult(
            seed=seed,
            report=report,
            train_seconds=elapsed,
            best_epoch=detector.checkpoint.best_epoch,
            train_accuracy_curve=tuple(curve_logs["train_acc"]),
            test_accuracy_curve=tuple(curve_logs["test_acc"]),
        ))
    system = "ETSB-RNN" if architecture == "etsb" else "TSB-RNN"
    return ExperimentResult(dataset=pair.name, system=system, runs=tuple(runs))


def _curve_callback(detector: ErrorDetector,
                    logs: dict[str, list[float]]) -> EpochEvaluator:
    """Per-epoch train/test accuracy recorder for the figure benches."""

    def evaluate() -> dict[str, float]:
        assert detector.model is not None and detector.split is not None
        split = detector.split
        train_probs = predict_proba(detector.model, split.train.features)
        test_probs = predict_proba(detector.model, split.test.features)
        train_acc = float(
            (train_probs.argmax(axis=1) == split.train.labels).mean())
        test_acc = float(
            (test_probs.argmax(axis=1) == split.test.labels).mean())
        logs["train_acc"].append(train_acc)
        logs["test_acc"].append(test_acc)
        return {"train_accuracy": train_acc, "test_accuracy": test_acc}

    return EpochEvaluator(evaluate)


def run_augmentation_baseline(pair: DatasetPair, n_runs: int = 10,
                              n_label_tuples: int = 20,
                              base_seed: int = 0) -> ExperimentResult:
    """Evaluate the augmentation baseline (the Rotom comparison axis).

    The detector receives the same 20 labelled tuples (sampled by
    DiverSet over the prepared data) as cell texts with labels, expands
    them with augmentation operators and classifies every held-out cell
    text.  Cells are treated per-column (one detector per attribute), as
    augmentation-based systems do.
    """
    from repro.baselines.augment import AugmentationDetector
    from repro.dataprep import prepare

    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    prepared = prepare(pair.dirty, pair.clean)
    rows = prepared.df.to_rows()
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        train_ids = set(DiverSet().select(n_label_tuples, prepared, rng))
        started = time.perf_counter()
        y_true: list[int] = []
        y_pred: list[int] = []
        for attribute in prepared.attributes:
            attr_rows = [r for r in rows if r["attribute"] == attribute]
            train = [r for r in attr_rows if r["id_"] in train_ids]
            test = [r for r in attr_rows if r["id_"] not in train_ids]
            detector = AugmentationDetector(rng=rng)
            detector.fit([r["value_x"] for r in train],
                         [int(r["label"]) for r in train])
            predictions = detector.predict([r["value_x"] for r in test])
            y_true.extend(int(r["label"]) for r in test)
            y_pred.extend(int(p) for p in predictions)
        elapsed = time.perf_counter() - started
        report = ClassificationReport.from_predictions(
            np.array(y_true), np.array(y_pred))
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Augment (ours)",
                            runs=tuple(runs))


def run_raha_baseline(pair: DatasetPair, n_runs: int = 10,
                      n_label_tuples: int = 20,
                      base_seed: int = 0) -> ExperimentResult:
    """Evaluate the from-scratch Raha baseline under the same protocol.

    The detector analyses the dirty table, samples ``n_label_tuples``
    tuples, receives their ground-truth cell labels, propagates them and
    classifies every cell.  Metrics are computed on the cells of the
    *non-labelled* tuples, mirroring the BiRNN test split.
    """
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    mask = np.array(pair.error_mask())
    runs: list[RunResult] = []
    for run_index in range(n_runs):
        seed = base_seed + run_index
        rng = np.random.default_rng(seed)
        detector = RahaDetector(rng=rng)
        started = time.perf_counter()
        detector.analyze(pair.dirty, n_labels=n_label_tuples)
        labeled_rows = detector.sample_tuples(n_label_tuples)
        predictions = detector.fit_predict(
            labeled_rows, mask[labeled_rows].astype(np.int64))
        elapsed = time.perf_counter() - started
        test_rows = np.array([i for i in range(pair.n_rows)
                              if i not in set(labeled_rows)])
        report = ClassificationReport.from_predictions(
            mask[test_rows].astype(np.int64).reshape(-1),
            predictions[test_rows].reshape(-1),
        )
        runs.append(RunResult(seed=seed, report=report,
                              train_seconds=elapsed, best_epoch=None))
    return ExperimentResult(dataset=pair.name, system="Raha (ours)",
                            runs=tuple(runs))
