"""Scaled-down vs paper-scale experiment settings.

The paper trains 120 epochs x 10 repetitions per dataset on Colab GPUs;
our substrate is a pure-numpy CPU autograd engine.  The benchmarks
therefore default to reduced settings that preserve the qualitative
ordering and switch to full fidelity when ``REPRO_FULL=1`` is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.datasets.registry import dataset_spec


@dataclass(frozen=True)
class ExperimentScale:
    """Resolved experiment scale.

    Attributes
    ----------
    full:
        Whether paper-scale settings are active.
    epochs:
        Training epochs per run.
    n_runs:
        Repetitions per experiment (the paper uses 10).
    n_label_tuples:
        Labelled tuples per run (the paper uses 20).
    """

    full: bool
    epochs: int
    n_runs: int
    n_label_tuples: int

    def dataset_rows(self, name: str) -> int:
        """Row count for one dataset under this scale."""
        paper_rows = dataset_spec(name).paper_rows
        if self.full:
            return paper_rows
        return min(paper_rows, _SCALED_ROWS.get(name, 200))


#: Scaled-down row counts chosen so every dataset keeps > 100 tuples and
#: the rarest error type still occurs in double digits.
_SCALED_ROWS = {
    "beers": 200,
    "flights": 240,
    "hospital": 200,
    "movies": 200,
    "rayyan": 200,
    "tax": 300,
}


def current_scale() -> ExperimentScale:
    """Resolve the active scale from the ``REPRO_FULL`` environment flag."""
    full = os.environ.get("REPRO_FULL", "") == "1"
    if full:
        return ExperimentScale(full=True, epochs=120, n_runs=10, n_label_tuples=20)
    return ExperimentScale(full=False, epochs=60, n_runs=2, n_label_tuples=20)
