"""EXPERIMENTS.md generation from benchmark result files.

The benchmark suite writes each table/figure's rendering to
``benchmarks/results/``; :func:`generate_report` assembles them into the
EXPERIMENTS.md document (paper-vs-measured for every table and figure),
so the report always reflects the latest benchmark run:

    python -m repro.experiments.report [results_dir] [output_md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.errors import ExperimentError

#: Section order: (result file, heading, paper context paragraph).
_SECTIONS: tuple[tuple[str, str, str], ...] = (
    ("table2_datasets.txt", "Table 2 — dataset overview",
     "Paper: Beers 2,410x11 @ 0.16, Flights 2,376x7 @ 0.30, Hospital "
     "1,000x20 @ 0.03, Movies 7,390x17 @ 0.06, Rayyan 1,000x10 @ 0.09, "
     "Tax 200,000x15 @ 0.04. The synthetic generators reproduce the "
     "error rates exactly by construction; sizes are scaled down unless "
     "`REPRO_FULL=1`."),
    ("table3_comparison.txt", "Table 3 — P/R/F1 comparison (20 labelled tuples)",
     "Paper rows are quoted verbatim above the measured rows. Shape "
     "checks: ETSB-RNN's cross-dataset average F1 is at least TSB-RNN's; "
     "hospital is among the easiest datasets; flights clearly harder "
     "than hospital."),
    ("table4_averages.txt", "Table 4 — average F1 and standard deviation",
     "Paper: ETSB-RNN 0.91/0.05 without Flights, 0.88/0.06 with. The "
     "measured averages are lower in absolute terms (scaled training) "
     "but preserve the ETSB >= TSB ordering."),
    ("table5_training_time.txt", "Table 5 — training time [s]",
     "Paper times are Colab-GPU seconds; measured times are CPU numpy. "
     "The relative shape holds: the enriched model costs a few percent "
     "more, and time scales with attributes x alphabet x value length."),
    ("fig6_learning_curves.csv", "Figure 6 — test accuracy during training",
     "Per-epoch mean test accuracy with 95% confidence intervals over "
     "repeated runs, plus the checkpoint-selected best epochs. Both "
     "models improve monotonically modulo noise; ETSB-RNN's final "
     "accuracy is at least TSB-RNN's on the curve datasets."),
    ("fig7_train_test_accuracy.csv", "Figure 7 — train vs test accuracy (ETSB-RNN)",
     "The paper's overfitting check: train accuracy approaches 1.0 "
     "while the train/test gap stays bounded."),
    ("ablation_samplers.csv", "Ablation A — trainset-selection algorithms (§5.2)",
     "The paper reports DiverSet as the best sampler; at reduced scale "
     "the three samplers are close, with DiverSet competitive with the "
     "best."),
    ("ablation_enrichment.csv", "Ablation B — ETSB enrichment (§4.3.2)",
     "Value-only (TSB) vs value+attribute+length (ETSB) on beers."),
    ("ablation_cell_types.csv", "Ablation C — recurrence family (§2)",
     "The related-work claim quantified: the plain tanh RNN trains "
     "several times faster than LSTM/GRU. (At reduced epochs the gated "
     "cells buy some F1; the paper's point is the cost/benefit at its "
     "budget.)"),
    ("analysis_error_types.csv", "Analysis — recall per error type (§5.5)",
     "Character-visible errors (formatting issues, missing-value "
     "markers) are caught at near-perfect recall; violated attribute "
     "dependencies — whose evidence lives in other cells — lag behind, "
     "which is exactly the paper's explanation for the Flights/Tax "
     "scores."),
    ("error_families.txt", "Analysis — authentic-error families (taxonomy matrix)",
     "Each family of the authentic-error taxonomy (keyboard-adjacency "
     "typos, correlated multi-column errors, format/locale drift, "
     "truncation, value swaps, missing markers) injected *alone* at a "
     "10% cell rate into one clean table, with ETSB-RNN and the "
     "Raha-style baseline trained per pair. Character-visible families "
     "(missing, format drift, truncation) score high; families whose "
     "evidence lives in other cells (value swaps, correlated errors) "
     "collapse for every per-cell system — the causal version of the "
     "§5.5 error-mix analysis. Full matrix with settings: "
     "`BENCH_error_families.json`."),
    ("baselines_comparison.csv", "Baselines — our Raha-style and augmentation detectors",
     "Measured live under the same 20-tuple protocol (Table 3's "
     "published Raha/Rotom rows are from the original papers)."),
    ("fidelity.txt", "Fidelity — paper-vs-measured agreement",
     "Per-dataset F1 gaps against the paper's Table 3 rows and the "
     "Spearman rank correlation of the difficulty ordering (1.0 = the "
     "same datasets are easy/hard as in the paper)."),
    ("sweep_label_budget.csv", "Sweep — F1 vs labelling budget (§5.3)",
     "The honest version of the budget sweep the paper criticises "
     "Rotom for: the 20-tuple operating point captures most of the "
     "achievable quality."),
    ("extension_fusion_repair.csv", "Extension — duplicate fusion + repair (§5.7/§6)",
     "The future-work pipeline on Flights: fusing the BiRNN with "
     "cross-record disagreement signals raises recall; repairs drawn "
     "from record-group majorities are almost always exact."),
)

_HEADER = """# EXPERIMENTS — paper vs measured

Generated from `benchmarks/results/` (run `pytest benchmarks/
--benchmark-only` to refresh; `REPRO_FULL=1` for paper-scale settings).
Absolute numbers are not expected to match the paper — the substrate is
a scaled-down pure-numpy CPU build over synthetic data — but every
table/figure's *shape* (who wins, what is easy/hard, relative cost) is
asserted by the benchmark suite itself.
"""


def generate_report(results_dir: str | Path,
                    output_path: str | Path | None = None) -> str:
    """Assemble the report; optionally write it to ``output_path``."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ExperimentError(f"no results directory at {results_dir}")
    parts = [_HEADER]
    missing = []
    for filename, heading, context in _SECTIONS:
        path = results_dir / filename
        parts.append(f"\n## {heading}\n")
        parts.append(context + "\n")
        if path.exists():
            parts.append("```\n" + path.read_text().strip() + "\n```\n")
        else:
            missing.append(filename)
            parts.append("*(no result file — benchmark not run yet)*\n")
    if missing:
        parts.append("\n---\nMissing result files: " + ", ".join(missing) + "\n")
    report = "\n".join(parts)
    if output_path is not None:
        Path(output_path).write_text(report)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI shim: ``python -m repro.experiments.report [dir] [out]``."""
    argv = sys.argv[1:] if argv is None else argv
    results_dir = argv[0] if argv else "benchmarks/results"
    output = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    generate_report(results_dir, output)
    print(f"wrote {output} from {results_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
