"""The paper's published numbers, kept verbatim for side-by-side reports.

Raha and Rotom rows of Table 3 are quoted from the original papers (the
authors did the same); TSB/ETSB rows are the paper's own measurements and
serve as the reproduction target.  ``None`` encodes the paper's ``n/a``.
"""

from __future__ import annotations

from dataclasses import dataclass

DATASETS = ("beers", "flights", "hospital", "movies", "rayyan", "tax")


@dataclass(frozen=True)
class PaperRow:
    """One (system, dataset) entry of Table 3."""

    precision: float | None
    recall: float | None
    f1: float | None
    f1_sd: float | None = None


#: Table 3 -- comparison between the different models (20 labeled tuples).
PAPER_TABLE3: dict[str, dict[str, PaperRow]] = {
    "Raha": {
        "beers": PaperRow(0.99, 0.99, 0.99),
        "flights": PaperRow(0.82, 0.81, 0.81),
        "hospital": PaperRow(0.94, 0.59, 0.72),
        "movies": PaperRow(0.85, 0.88, 0.86),
        "rayyan": PaperRow(0.81, 0.78, 0.79),
        "tax": PaperRow(None, None, 0.91),
    },
    "Rotom": {
        "beers": PaperRow(None, None, 0.99),
        "flights": PaperRow(None, None, None),
        "hospital": PaperRow(None, None, 1.00),
        "movies": PaperRow(None, None, 0.68),
        "rayyan": PaperRow(None, None, 0.86),
        "tax": PaperRow(None, None, 0.97),
    },
    "Rotom+SSL": {
        "beers": PaperRow(None, None, 0.99),
        "flights": PaperRow(None, None, None),
        "hospital": PaperRow(None, None, 1.00),
        "movies": PaperRow(None, None, 0.54),
        "rayyan": PaperRow(None, None, 0.76),
        "tax": PaperRow(None, None, 1.00),
    },
    "TSB-RNN": {
        "beers": PaperRow(0.99, 0.94, 0.96, 0.01),
        "flights": PaperRow(0.77, 0.63, 0.69, 0.02),
        "hospital": PaperRow(0.98, 0.95, 0.97, 0.01),
        "movies": PaperRow(0.96, 0.79, 0.87, 0.03),
        "rayyan": PaperRow(0.83, 0.73, 0.78, 0.05),
        "tax": PaperRow(0.83, 0.90, 0.85, 0.11),
    },
    "ETSB-RNN": {
        "beers": PaperRow(1.00, 0.96, 0.98, 0.01),
        "flights": PaperRow(0.81, 0.68, 0.74, 0.02),
        "hospital": PaperRow(0.98, 0.95, 0.97, 0.02),
        "movies": PaperRow(0.96, 0.81, 0.88, 0.02),
        "rayyan": PaperRow(0.87, 0.83, 0.85, 0.03),
        "tax": PaperRow(0.82, 0.92, 0.86, 0.10),
    },
}

#: Table 4 -- average F1 and s.d. without / with Flights.
PAPER_TABLE4: dict[str, dict[str, float | None]] = {
    "Raha": {"avg_wo": 0.85, "sd_wo": 0.08, "avg_w": 0.85, "sd_w": 0.07},
    "Rotom": {"avg_wo": 0.90, "sd_wo": 0.10, "avg_w": None, "sd_w": None},
    "Rotom+SSL": {"avg_wo": 0.86, "sd_wo": 0.17, "avg_w": None, "sd_w": None},
    "TSB-RNN": {"avg_wo": 0.89, "sd_wo": 0.06, "avg_w": 0.85, "sd_w": 0.08},
    "ETSB-RNN": {"avg_wo": 0.91, "sd_wo": 0.05, "avg_w": 0.88, "sd_w": 0.06},
}

#: Table 5 -- training time in seconds on Colab GPUs.
PAPER_TABLE5: dict[str, dict[str, float]] = {
    "beers": {"tsb_avg": 92, "tsb_sd": 1, "etsb_avg": 101, "etsb_sd": 1},
    "flights": {"tsb_avg": 47, "tsb_sd": 0, "etsb_avg": 54, "etsb_sd": 0},
    "hospital": {"tsb_avg": 283, "tsb_sd": 3, "etsb_avg": 287, "etsb_sd": 2},
    "movies": {"tsb_avg": 302, "tsb_sd": 3, "etsb_avg": 312, "etsb_sd": 3},
    "rayyan": {"tsb_avg": 199, "tsb_sd": 2, "etsb_avg": 209, "etsb_sd": 2},
    "tax": {"tsb_avg": 176, "tsb_sd": 1, "etsb_avg": 183, "etsb_sd": 1},
}
