"""Learning-curve extraction for Figure 6 and Figure 7.

Figure 6 plots the average test accuracy per epoch (with a confidence
interval over the repeated runs) for TSB-RNN vs ETSB-RNN, marking the
epoch each run's checkpoint selected.  Figure 7 plots ETSB-RNN's average
train vs test accuracy.  Both reduce to per-epoch series over runs, which
:func:`collect_curves` computes from tracked experiment results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult
from repro.metrics import confidence_interval, mean


@dataclass(frozen=True)
class CurvePoint:
    """One epoch of an averaged learning curve."""

    epoch: int
    mean: float
    ci_low: float
    ci_high: float


@dataclass(frozen=True)
class LearningCurves:
    """Averaged train/test accuracy curves plus best-epoch markers."""

    dataset: str
    system: str
    train: tuple[CurvePoint, ...]
    test: tuple[CurvePoint, ...]
    best_epochs: tuple[int, ...]

    def as_series(self, which: str = "test") -> list[tuple[int, float]]:
        """The ``(epoch, mean accuracy)`` pairs for plotting."""
        points = self.test if which == "test" else self.train
        return [(p.epoch, p.mean) for p in points]

    def final_test_accuracy(self) -> float:
        """Mean test accuracy at the last epoch."""
        if not self.test:
            raise ExperimentError("no test curve recorded")
        return self.test[-1].mean


def _average(curves: list[tuple[float, ...]]) -> tuple[CurvePoint, ...]:
    if not curves:
        return ()
    n_epochs = min(len(c) for c in curves)
    points = []
    for epoch in range(n_epochs):
        values = [c[epoch] for c in curves]
        low, high = confidence_interval(values)
        points.append(CurvePoint(epoch=epoch, mean=mean(values),
                                 ci_low=low, ci_high=high))
    return tuple(points)


def collect_curves(result: ExperimentResult) -> LearningCurves:
    """Build averaged curves from a curve-tracked experiment result.

    Raises
    ------
    ExperimentError
        When the experiment was run without ``track_curves=True``.
    """
    test_curves = [run.test_accuracy_curve for run in result.runs]
    train_curves = [run.train_accuracy_curve for run in result.runs]
    if not any(test_curves):
        raise ExperimentError(
            "experiment was run without track_curves=True; no curves recorded"
        )
    return LearningCurves(
        dataset=result.dataset,
        system=result.system,
        train=_average([c for c in train_curves if c]),
        test=_average([c for c in test_curves if c]),
        best_epochs=tuple(run.best_epoch for run in result.runs
                          if run.best_epoch is not None),
    )


def render_curve(curves: LearningCurves, which: str = "test",
                 width: int = 60) -> str:
    """A plain-text sparkline rendering of one curve (for bench output)."""
    points = curves.test if which == "test" else curves.train
    if not points:
        return "(no curve)"
    marks = " .:-=+*#%@"
    lo = min(p.mean for p in points)
    hi = max(p.mean for p in points)
    span = (hi - lo) or 1.0
    step = max(len(points) // width, 1)
    chars = []
    for i in range(0, len(points), step):
        level = int((points[i].mean - lo) / span * (len(marks) - 1))
        chars.append(marks[level])
    return (f"{curves.system} {which} acc "
            f"[{lo:.3f}..{hi:.3f}] {''.join(chars)}")
