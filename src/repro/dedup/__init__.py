"""Duplicate-record handling (the paper's §5.7 future work).

The Flights failure mode: the same flight is reported by several sources
with disagreeing times, and a per-cell character model cannot see the
cross-record signal.  "To improve this, we should integrate a way to
identify primary keys ... our system would know that it has to fuse the
values in one record."

This subpackage implements that plan:

* :func:`identify_record_key` -- find the column(s) that identify an
  entity across duplicate records (a non-unique near-key);
* :class:`DuplicateGroups` -- group records by the key and expose
  per-group value disagreements;
* :func:`disagreement_mask` -- flag cells that deviate from their
  group's majority value (a per-cell error signal);
* :class:`FusedDetector` -- fuse a base detector's predictions with the
  disagreement signal.
"""

from repro.dedup.keys import identify_record_key
from repro.dedup.groups import DuplicateGroups, disagreement_mask
from repro.dedup.fusion import FusedDetector, fuse_predictions

__all__ = [
    "identify_record_key",
    "DuplicateGroups",
    "disagreement_mask",
    "FusedDetector",
    "fuse_predictions",
]
