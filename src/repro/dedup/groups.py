"""Duplicate-record groups and cross-record disagreement signals."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.table import Table


class DuplicateGroups:
    """Rows of a table grouped by a record key.

    Parameters
    ----------
    table:
        The (dirty) table.
    key_columns:
        Columns identifying the entity (see
        :func:`repro.dedup.keys.identify_record_key`).
    """

    def __init__(self, table: Table, key_columns: tuple[str, ...]):
        for name in key_columns:
            if name not in table:
                raise DataError(f"unknown key column {name!r}")
        if not key_columns:
            raise DataError("at least one key column is required")
        self._table = table
        self._key_columns = tuple(key_columns)
        key_cols = [table.column(c).values for c in key_columns]
        groups: dict[tuple, list[int]] = {}
        for i in range(table.n_rows):
            key = tuple(col[i] for col in key_cols)
            groups.setdefault(key, []).append(i)
        self._groups = groups

    @property
    def key_columns(self) -> tuple[str, ...]:
        """The grouping key."""
        return self._key_columns

    def __len__(self) -> int:
        return len(self._groups)

    def n_duplicated_records(self) -> int:
        """Rows living in a group of size >= 2."""
        return sum(len(ix) for ix in self._groups.values() if len(ix) > 1)

    def groups(self) -> dict[tuple, list[int]]:
        """Key tuple -> row indices."""
        return {k: list(v) for k, v in self._groups.items()}

    def majority_values(self) -> dict[tuple, dict[str, object]]:
        """Per group, the majority value of every non-key column.

        Empty strings and ``None`` never win a majority unless the whole
        group is empty -- a missing value is an error candidate, not
        evidence of the true value.
        """
        value_columns = [c for c in self._table.column_names
                         if c not in self._key_columns]
        majorities: dict[tuple, dict[str, object]] = {}
        for key, indices in self._groups.items():
            row_majority: dict[str, object] = {}
            for name in value_columns:
                counts: dict[object, int] = {}
                for i in indices:
                    value = self._table.column(name)[i]
                    if value in (None, ""):
                        continue
                    counts[value] = counts.get(value, 0) + 1
                if counts:
                    row_majority[name] = max(counts, key=counts.get)
                else:
                    row_majority[name] = None
            majorities[key] = row_majority
        return majorities


def disagreement_mask(table: Table, key_columns: tuple[str, ...]) -> np.ndarray:
    """Boolean ``(n_rows, n_columns)`` mask of cross-record disagreements.

    A cell is flagged when its record belongs to a multi-row group and
    its value deviates from the group's majority for that column --
    exactly the Flights error pattern (``'2:46 p.m.'`` on orbitz vs
    ``'2:26 p.m.'`` on flightstats).  Key columns are never flagged.
    """
    groups = DuplicateGroups(table, key_columns)
    majorities = groups.majority_values()
    mask = np.zeros(table.shape, dtype=bool)
    column_pos = {name: j for j, name in enumerate(table.column_names)}
    for key, indices in groups.groups().items():
        if len(indices) < 2:
            continue
        majority = majorities[key]
        for name, expected in majority.items():
            if expected is None:
                continue
            j = column_pos[name]
            for i in indices:
                if table.column(name)[i] != expected:
                    mask[i, j] = True
    return mask
