"""Fusing per-cell model predictions with cross-record signals.

The §5.7 extension as a working system: the BiRNN sees character-level
errors, the duplicate-group analysis sees cross-record disagreements;
their union recovers the Flights recall the paper's model lacked.
"""

from __future__ import annotations

import numpy as np

from repro.dedup.groups import disagreement_mask
from repro.dedup.keys import identify_record_key
from repro.errors import DataError, NotFittedError
from repro.models.detector import ErrorDetector
from repro.table import Table


def fuse_predictions(model_mask: np.ndarray,
                     signal_mask: np.ndarray,
                     mode: str = "union") -> np.ndarray:
    """Combine two binary per-cell masks.

    ``"union"`` flags a cell when either source does (raises recall --
    appropriate when the signal is precise); ``"intersection"`` requires
    both (raises precision).
    """
    model_mask = np.asarray(model_mask, dtype=bool)
    signal_mask = np.asarray(signal_mask, dtype=bool)
    if model_mask.shape != signal_mask.shape:
        raise DataError(
            f"mask shapes differ: {model_mask.shape} vs {signal_mask.shape}"
        )
    if mode == "union":
        return model_mask | signal_mask
    if mode == "intersection":
        return model_mask & signal_mask
    raise DataError(f"mode must be 'union' or 'intersection', got {mode!r}")


class FusedDetector:
    """An :class:`ErrorDetector` augmented with duplicate-record signals.

    Workflow: fit the base detector as usual, then :meth:`predict_mask`
    returns a per-cell error matrix where the BiRNN's verdicts are fused
    with cross-record disagreement flags.  The record key is discovered
    automatically unless given.

    Parameters
    ----------
    detector:
        A fitted (or to-be-fitted) base detector.
    key_columns:
        Record-key columns; ``None`` triggers automatic discovery.
    exclude:
        Columns excluded from key discovery (e.g. a source column).
    mode:
        Fusion mode (see :func:`fuse_predictions`).
    """

    def __init__(self, detector: ErrorDetector,
                 key_columns: tuple[str, ...] | None = None,
                 exclude: tuple[str, ...] = (),
                 mode: str = "union"):
        self.detector = detector
        self.key_columns = key_columns
        self.exclude = exclude
        self.mode = mode
        self.discovered_key: tuple[str, ...] | None = None

    def fit(self, pair) -> "FusedDetector":
        """Fit the base detector on a dataset pair."""
        self.detector.fit(pair)
        return self

    def _resolve_key(self, dirty: Table) -> tuple[str, ...] | None:
        if self.key_columns is not None:
            return self.key_columns
        candidate = identify_record_key(dirty, exclude=self.exclude)
        self.discovered_key = candidate.columns if candidate else None
        return self.discovered_key

    def predict_mask(self, dirty: Table) -> np.ndarray:
        """Fused per-cell error mask over the whole table.

        Without a usable record key the base model's mask is returned
        unchanged (the fusion degrades gracefully on tables that have no
        duplicate records).
        """
        if self.detector.model is None:
            raise NotFittedError("fit() the base detector first")
        model_cells = set(self.detector.predict_table())
        prepared = self.detector.prepared
        assert prepared is not None
        column_pos = {name: j for j, name in enumerate(prepared.attributes)}
        model_mask = np.zeros(dirty.shape, dtype=bool)
        for tuple_id, attribute in model_cells:
            model_mask[tuple_id, column_pos[attribute]] = True

        key = self._resolve_key(dirty)
        if key is None:
            return model_mask
        signal = disagreement_mask(dirty, key)
        return fuse_predictions(model_mask, signal, mode=self.mode)
