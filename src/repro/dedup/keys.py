"""Record-key identification for duplicate detection.

A *record key* is a column (or small column set) that identifies an
entity which may legitimately appear in several rows -- Flights'
``flight`` column, for example.  Unlike a candidate key it is expected
to be non-unique; unlike an arbitrary column it must partition the table
into groups whose other attributes mostly agree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import DataError
from repro.table import Table


@dataclass(frozen=True)
class RecordKeyCandidate:
    """A scored record-key hypothesis.

    Attributes
    ----------
    columns:
        The key columns.
    duplication:
        Fraction of rows that share their key with at least one other
        row (0 = unique key, useless for fusion).
    agreement:
        Mean fraction of non-key cells agreeing with their group
        majority, over multi-row groups.  High agreement means the key
        groups genuinely duplicated records rather than unrelated rows.
    score:
        ``duplication * agreement`` -- the ranking criterion.
    """

    columns: tuple[str, ...]
    duplication: float
    agreement: float

    @property
    def score(self) -> float:
        return self.duplication * self.agreement


def _group_rows(table: Table, columns: tuple[str, ...]) -> dict[tuple, list[int]]:
    key_cols = [table.column(c).values for c in columns]
    groups: dict[tuple, list[int]] = {}
    for i in range(table.n_rows):
        key = tuple(col[i] for col in key_cols)
        if None in key or "" in key:
            continue
        groups.setdefault(key, []).append(i)
    return groups


def score_record_key(table: Table, columns: tuple[str, ...],
                     exclude: frozenset[str] = frozenset()) -> RecordKeyCandidate:
    """Score one key hypothesis (see :class:`RecordKeyCandidate`)."""
    groups = _group_rows(table, columns)
    n_rows = table.n_rows
    if n_rows == 0:
        return RecordKeyCandidate(columns, 0.0, 0.0)
    duplicated_rows = sum(len(ix) for ix in groups.values() if len(ix) > 1)
    duplication = duplicated_rows / n_rows

    value_columns = [c for c in table.column_names
                     if c not in columns and c not in exclude]
    agreements: list[float] = []
    for indices in groups.values():
        if len(indices) < 2:
            continue
        agreeing = 0
        total = 0
        for name in value_columns:
            values = [table.column(name)[i] for i in indices]
            counts: dict[object, int] = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            agreeing += max(counts.values())
            total += len(values)
        if total:
            agreements.append(agreeing / total)
    agreement = sum(agreements) / len(agreements) if agreements else 0.0
    return RecordKeyCandidate(columns, duplication, agreement)


def identify_record_key(table: Table, max_size: int = 1,
                        min_duplication: float = 0.2,
                        min_agreement: float = 0.5,
                        exclude: tuple[str, ...] = ()) -> RecordKeyCandidate | None:
    """Find the best record key, or ``None`` when nothing qualifies.

    Parameters
    ----------
    table:
        The (dirty) table to analyse.
    max_size:
        Largest key size to consider.
    min_duplication:
        Required fraction of rows sharing their key value.
    min_agreement:
        Required mean within-group agreement of non-key cells (a dirty
        table never agrees perfectly; 0.5 tolerates a 30% error rate).
    exclude:
        Columns never considered part of the key and ignored in the
        agreement computation (e.g. a source/provenance column).
    """
    if table.n_rows == 0:
        raise DataError("cannot identify a record key on an empty table")
    excluded = frozenset(exclude)
    best: RecordKeyCandidate | None = None
    names = [c for c in table.column_names if c not in excluded]
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(names, size):
            candidate = score_record_key(table, combo, exclude=excluded)
            if candidate.duplication < min_duplication:
                continue
            if candidate.agreement < min_agreement:
                continue
            if best is None or candidate.score > best.score:
                best = candidate
    return best
