"""An augmentation-based detector standing in for the Rotom comparison.

Rotom (Miao et al., SIGMOD 2021) meta-learns policies for combining data
augmentation operators and trains a seq2seq language model -- far outside
a laptop-scale numpy build.  This module keeps the *comparison axis*
alive with a self-contained analogue: labelled cells are expanded with
character-level augmentation operators (the same family Rotom draws
from), then a hashed-n-gram logistic regression classifies each cell.

Table 3's Rotom rows in the experiment report still quote the paper's
published numbers; this detector powers the ablation benchmarks that ask
"does augmentation help at 20 labelled tuples?".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.baselines.logreg import LogisticRegression
from repro.errors import ConfigurationError, NotFittedError

AugmentOp = Callable[[str, np.random.Generator], str]


def op_delete_char(text: str, rng: np.random.Generator) -> str:
    """Drop one random character (typo simulation)."""
    if not text:
        return text
    i = int(rng.integers(len(text)))
    return text[:i] + text[i + 1:]


def op_duplicate_char(text: str, rng: np.random.Generator) -> str:
    """Double one random character."""
    if not text:
        return text
    i = int(rng.integers(len(text)))
    return text[:i + 1] + text[i] + text[i + 1:]


def op_swap_adjacent(text: str, rng: np.random.Generator) -> str:
    """Transpose two adjacent characters."""
    if len(text) < 2:
        return text
    i = int(rng.integers(len(text) - 1))
    return text[:i] + text[i + 1] + text[i] + text[i + 2:]


def op_case_flip(text: str, rng: np.random.Generator) -> str:
    """Flip the case of one random letter."""
    letters = [i for i, c in enumerate(text) if c.isalpha()]
    if not letters:
        return text
    i = letters[int(rng.integers(len(letters)))]
    flipped = text[i].lower() if text[i].isupper() else text[i].upper()
    return text[:i] + flipped + text[i + 1:]


DEFAULT_OPS: tuple[AugmentOp, ...] = (
    op_delete_char, op_duplicate_char, op_swap_adjacent, op_case_flip,
)


def hashed_ngram_features(text: str, n_buckets: int = 256,
                          ngram: int = 3) -> np.ndarray:
    """Hashed character n-gram counts plus coarse shape features."""
    features = np.zeros(n_buckets + 3)
    padded = f"^{text}$"
    for i in range(max(len(padded) - ngram + 1, 1)):
        gram = padded[i:i + ngram]
        features[hash(gram) % n_buckets] += 1.0
    features[n_buckets] = len(text) / 64.0
    features[n_buckets + 1] = sum(c.isdigit() for c in text) / max(len(text), 1)
    features[n_buckets + 2] = 1.0 if text == "" else 0.0
    return features


class AugmentationDetector:
    """Few-shot cell classifier with label-preserving data augmentation.

    Parameters
    ----------
    n_augments:
        Augmented copies generated per labelled cell.
    ops:
        Augmentation operators applied uniformly at random.
    n_buckets:
        Size of the hashed n-gram feature space.
    rng:
        Random generator (augmentation and classifier are deterministic
        given it).
    """

    def __init__(self, n_augments: int = 4,
                 ops: Sequence[AugmentOp] = DEFAULT_OPS,
                 n_buckets: int = 256,
                 rng: np.random.Generator | None = None):
        if n_augments < 0:
            raise ConfigurationError(f"n_augments must be >= 0, got {n_augments}")
        if not ops and n_augments > 0:
            raise ConfigurationError("augmentation requested but no operators given")
        self.n_augments = n_augments
        self.ops = tuple(ops)
        self.n_buckets = n_buckets
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._classifier: LogisticRegression | None = None

    def _featurize(self, texts: Sequence[str]) -> np.ndarray:
        return np.stack([hashed_ngram_features(t, self.n_buckets) for t in texts])

    def fit(self, texts: Sequence[str], labels: Sequence[int]) -> "AugmentationDetector":
        """Fit on labelled cell texts, expanding them with augmentation.

        Augmented copies inherit the original's label: a corrupted copy
        of a correct value still *looks like* the column's value family,
        which is the weak-supervision signal Rotom-style systems exploit.
        """
        texts = list(texts)
        labels = list(labels)
        if len(texts) != len(labels):
            raise ConfigurationError(
                f"got {len(texts)} texts but {len(labels)} labels"
            )
        if not texts:
            raise ConfigurationError("cannot fit on an empty training set")
        augmented_texts = list(texts)
        augmented_labels = list(labels)
        for text, label in zip(texts, labels):
            for _ in range(self.n_augments):
                op = self.ops[int(self._rng.integers(len(self.ops)))]
                augmented_texts.append(op(text, self._rng))
                augmented_labels.append(label)
        features = self._featurize(augmented_texts)
        label_array = np.asarray(augmented_labels, dtype=np.int64)
        if label_array.min() == label_array.max():
            # Degenerate single-class trainset: remember the constant.
            self._classifier = None
            self._constant = int(label_array[0])
            return self
        classifier = LogisticRegression(n_iterations=400)
        classifier.fit(features, label_array)
        self._classifier = classifier
        return self

    def predict(self, texts: Sequence[str]) -> np.ndarray:
        """Binary error predictions for cell texts."""
        if self._classifier is None:
            if hasattr(self, "_constant"):
                return np.full(len(texts), self._constant, dtype=np.int64)
            raise NotFittedError("AugmentationDetector.fit has not been called")
        return self._classifier.predict(self._featurize(texts))

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Positive-class probability per cell text (for score fusion)."""
        if self._classifier is None:
            if hasattr(self, "_constant"):
                return np.full(len(texts), float(self._constant))
            raise NotFittedError("AugmentationDetector.fit has not been called")
        return self._classifier.predict_proba(self._featurize(texts))
