"""Agglomerative clustering of per-cell feature vectors.

Raha groups the cells of each column by the similarity of their strategy
verdict vectors (hierarchical agglomerative clustering), then propagates
the user's few labels within each cluster.  This module implements
average-linkage agglomerative clustering from scratch on binary vectors,
with a deterministic subsampling cap so the 200k-row Tax dataset stays
tractable: out-of-sample cells are assigned to the cluster with the
nearest centroid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _pairwise_sq_distances(vectors: np.ndarray) -> np.ndarray:
    """Dense squared Euclidean distance matrix."""
    norms = (vectors ** 2).sum(axis=1)
    sq = norms[:, None] + norms[None, :] - 2.0 * vectors @ vectors.T
    np.fill_diagonal(sq, np.inf)
    return np.maximum(sq, 0.0) + np.where(np.eye(len(vectors), dtype=bool), np.inf, 0.0)


def agglomerative_clusters(vectors: np.ndarray, n_clusters: int,
                           max_points: int = 1500,
                           rng: np.random.Generator | None = None) -> np.ndarray:
    """Cluster rows of ``vectors`` into ``n_clusters`` groups.

    Average-linkage agglomerative clustering (Lance-Williams update).
    When there are more than ``max_points`` rows, a uniform subsample is
    clustered and the remaining rows are assigned to the nearest cluster
    centroid.

    Parameters
    ----------
    vectors:
        ``(n, d)`` float array (binary strategy verdicts in practice).
    n_clusters:
        Number of clusters to return (capped at ``n``).
    max_points:
        Subsampling cap for the quadratic clustering core.
    rng:
        Generator for the subsample; defaults to a fixed seed so results
        are reproducible.

    Returns
    -------
    ``(n,)`` int array of cluster labels in ``[0, n_clusters)``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ConfigurationError(f"vectors must be 2-d, got shape {vectors.shape}")
    n = vectors.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n_clusters < 1:
        raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
    n_clusters = min(n_clusters, n)
    if rng is None:
        rng = np.random.default_rng(0)

    if n > max_points:
        sample = np.sort(rng.choice(n, size=max_points, replace=False))
        sample_labels = _cluster_core(vectors[sample], n_clusters)
        centroids = _centroids(vectors[sample], sample_labels, n_clusters)
        labels = _assign_nearest(vectors, centroids)
        labels[sample] = sample_labels
        return labels
    return _cluster_core(vectors, n_clusters)


def _cluster_core(vectors: np.ndarray, n_clusters: int) -> np.ndarray:
    """Average-linkage agglomeration down to ``n_clusters`` groups."""
    n = vectors.shape[0]
    # De-duplicate identical vectors first: strategy verdicts are binary,
    # so most cells collapse into a handful of distinct profiles and the
    # quadratic phase runs on those.
    unique, inverse, counts = np.unique(
        vectors, axis=0, return_inverse=True, return_counts=True)
    m = unique.shape[0]
    if m <= n_clusters:
        return inverse.astype(np.int64)

    distances = _pairwise_sq_distances(unique)
    sizes = counts.astype(np.float64)
    active = np.ones(m, dtype=bool)
    parent = np.arange(m)
    n_active = m
    while n_active > n_clusters:
        flat = np.argmin(distances)
        a, b = int(flat // m), int(flat % m)
        # Lance-Williams average-linkage update: merge b into a.
        total = sizes[a] + sizes[b]
        new_row = (sizes[a] * distances[a] + sizes[b] * distances[b]) / total
        distances[a] = new_row
        distances[:, a] = new_row
        distances[a, a] = np.inf
        distances[b, :] = np.inf
        distances[:, b] = np.inf
        sizes[a] = total
        active[b] = False
        parent[b] = a
        n_active -= 1

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    roots = sorted({find(i) for i in range(m)})
    root_label = {root: label for label, root in enumerate(roots)}
    unique_labels = np.array([root_label[find(i)] for i in range(m)], dtype=np.int64)
    return unique_labels[inverse]


def _centroids(vectors: np.ndarray, labels: np.ndarray,
               n_clusters: int) -> np.ndarray:
    """Per-cluster mean vectors (empty clusters get +inf sentinels)."""
    centroids = np.full((n_clusters, vectors.shape[1]), np.inf)
    for label in range(n_clusters):
        members = vectors[labels == label]
        if len(members):
            centroids[label] = members.mean(axis=0)
    return centroids


def _assign_nearest(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment for out-of-sample rows."""
    finite = np.isfinite(centroids).all(axis=1)
    usable = centroids.copy()
    usable[~finite] = 1e18  # never win the argmin
    distances = ((vectors[:, None, :] - usable[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1).astype(np.int64)
