"""Error-detection strategies for the Raha-style baseline.

Raha runs a library of unsupervised detection strategies and uses their
binary verdicts as per-cell feature vectors.  We implement the four
strategy families the paper cites (Section 2): outlier detection
(dBoost-style), pattern-violation detection, rule-violation detection and
missing-value detection.  Each strategy returns a boolean matrix of shape
``(n_rows, n_attributes)``: ``True`` marks a suspected error.
"""

from __future__ import annotations


from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.table import Table, discover_functional_dependencies
from repro.table.keys import fd_violating_rows

#: Cell contents commonly used as explicit missing-value markers.
MISSING_MARKERS = frozenset({"", "nan", "NaN", "NAN", "n/a", "N/A", "null",
                             "NULL", "None", "-", "?"})


def _cell_text(value: object) -> str:
    return "" if value is None else str(value)


class DetectionStrategy:
    """Base class: an unsupervised per-cell error detector."""

    #: Identifier used in feature vectors and reports.
    name: str = "strategy"

    def detect(self, dirty: Table) -> np.ndarray:
        """Return a ``(n_rows, n_attributes)`` boolean suspicion matrix."""
        raise NotImplementedError


class MissingValueStrategy(DetectionStrategy):
    """Flags cells whose content is a conventional missing-value marker."""

    name = "missing_value"

    def __init__(self, markers: Sequence[str] = tuple(MISSING_MARKERS)):
        self._markers = frozenset(markers)

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        for j, attr in enumerate(dirty.column_names):
            for i, value in enumerate(dirty.column(attr).values):
                out[i, j] = _cell_text(value).strip() in self._markers
        return out


def character_pattern(text: str) -> str:
    """Collapse a value into a character-class pattern.

    Letters -> ``a``, digits -> ``9``, whitespace -> ``_``; other
    characters are kept.  Runs are collapsed (``"12.0 oz"`` ->
    ``"9.9_a"``), so the pattern captures the value's *format*.
    """
    classes = []
    for char in text:
        if char.isalpha():
            classes.append("a")
        elif char.isdigit():
            classes.append("9")
        elif char.isspace():
            classes.append("_")
        else:
            classes.append(char)
    collapsed = []
    for cls in classes:
        if not collapsed or collapsed[-1] != cls:
            collapsed.append(cls)
    return "".join(collapsed)


class PatternProfileStrategy(DetectionStrategy):
    """Flags cells whose character-class pattern is rare in their column.

    This is the pattern-violation detector: a column dominated by
    ``"9.9"`` values makes ``"9.9_a"`` (``'12.0 oz'``) suspicious.

    Parameters
    ----------
    max_pattern_share:
        Patterns covering at most this fraction of a column's cells are
        flagged.
    """

    name = "pattern_profile"

    def __init__(self, max_pattern_share: float = 0.05):
        if not 0.0 < max_pattern_share < 1.0:
            raise ConfigurationError(
                f"max_pattern_share must be in (0, 1), got {max_pattern_share}"
            )
        self.max_pattern_share = max_pattern_share

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        for j, attr in enumerate(dirty.column_names):
            values = [_cell_text(v) for v in dirty.column(attr).values]
            patterns = [character_pattern(v) for v in values]
            counts: dict[str, int] = {}
            for pattern in patterns:
                counts[pattern] = counts.get(pattern, 0) + 1
            threshold = self.max_pattern_share * len(values)
            for i, pattern in enumerate(patterns):
                out[i, j] = counts[pattern] <= threshold
        return out


class ValueFrequencyStrategy(DetectionStrategy):
    """Flags rare values in low-cardinality columns (dBoost-style outliers).

    Columns whose distinct-value count is a small fraction of the row
    count behave like categorical domains; a value occurring only once or
    twice there is suspicious (e.g. a typo'd city name).

    Parameters
    ----------
    max_cardinality_ratio:
        A column is treated as categorical when
        ``n_distinct / n_rows`` is at most this ratio.
    max_count:
        Values occurring at most this many times are flagged.
    """

    name = "value_frequency"

    def __init__(self, max_cardinality_ratio: float = 0.3, max_count: int = 1):
        if max_count < 1:
            raise ConfigurationError(f"max_count must be >= 1, got {max_count}")
        self.max_cardinality_ratio = max_cardinality_ratio
        self.max_count = max_count

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        if dirty.n_rows == 0:
            return out
        for j, attr in enumerate(dirty.column_names):
            values = [_cell_text(v) for v in dirty.column(attr).values]
            counts: dict[str, int] = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            if len(counts) / dirty.n_rows > self.max_cardinality_ratio:
                continue  # high-cardinality column: frequency is no signal
            for i, value in enumerate(values):
                out[i, j] = counts[value] <= self.max_count
        return out


class LengthOutlierStrategy(DetectionStrategy):
    """Flags cells whose length deviates strongly from the column mean.

    A robust z-score on value length catches truncated values, missing
    words and concatenated formatting garbage.

    Parameters
    ----------
    z_threshold:
        Cells whose length is more than this many standard deviations
        from the column mean are flagged.
    """

    name = "length_outlier"

    def __init__(self, z_threshold: float = 3.0):
        if z_threshold <= 0:
            raise ConfigurationError(f"z_threshold must be positive, got {z_threshold}")
        self.z_threshold = z_threshold

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        for j, attr in enumerate(dirty.column_names):
            lengths = np.array([
                len(_cell_text(v)) for v in dirty.column(attr).values
            ], dtype=np.float64)
            if lengths.size == 0:
                continue
            std = lengths.std()
            if std < 1e-9:
                continue
            z = np.abs(lengths - lengths.mean()) / std
            out[:, j] = z > self.z_threshold
        return out


class FDViolationStrategy(DetectionStrategy):
    """Flags rows violating mined functional dependencies (rule violations).

    Mines approximate FDs on the dirty table (tolerating the errors it is
    trying to find) and flags the deviating cells of each violating row --
    both the determinant and dependent attribute are marked, since either
    side may hold the wrong value.

    Parameters
    ----------
    max_violation_rate:
        FD mining tolerance; see
        :func:`repro.table.keys.discover_functional_dependencies`.
    """

    name = "fd_violation"

    def __init__(self, max_violation_rate: float = 0.3, min_support: float = 0.05):
        self.max_violation_rate = max_violation_rate
        self.min_support = min_support

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        attr_pos = {attr: j for j, attr in enumerate(dirty.column_names)}
        dependencies = discover_functional_dependencies(
            dirty, max_lhs_size=1,
            max_violation_rate=self.max_violation_rate,
            min_support=self.min_support,
        )
        for fd in dependencies:
            for row in fd_violating_rows(dirty, fd):
                out[row, attr_pos[fd.rhs]] = True
                for lhs_attr in fd.lhs:
                    out[row, attr_pos[lhs_attr]] = True
        return out


class NumericOutlierStrategy(DetectionStrategy):
    """dBoost-style Gaussian outliers on numeric-parsable columns.

    Columns where most cells parse as numbers are modelled as a
    Gaussian; cells whose parsed value deviates beyond ``z_threshold``
    standard deviations are flagged, and -- importantly for formatting
    errors -- cells that *fail to parse* in a predominantly numeric
    column are flagged too (``'12.0 oz'`` in an ounces column).

    Parameters
    ----------
    z_threshold:
        Deviation threshold for parsed values.
    min_numeric_share:
        A column is treated as numeric when at least this fraction of
        its non-empty cells parse as floats.
    """

    name = "numeric_outlier"

    def __init__(self, z_threshold: float = 3.0,
                 min_numeric_share: float = 0.8):
        if z_threshold <= 0:
            raise ConfigurationError(f"z_threshold must be positive, got {z_threshold}")
        if not 0.0 < min_numeric_share <= 1.0:
            raise ConfigurationError(
                f"min_numeric_share must be in (0, 1], got {min_numeric_share}"
            )
        self.z_threshold = z_threshold
        self.min_numeric_share = min_numeric_share

    @staticmethod
    def _parse(text: str) -> float | None:
        try:
            return float(text.replace(",", ""))
        except ValueError:
            return None

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        for j, attr in enumerate(dirty.column_names):
            texts = [_cell_text(v) for v in dirty.column(attr).values]
            non_empty = [(i, t) for i, t in enumerate(texts) if t.strip()]
            if not non_empty:
                continue
            parsed = [(i, self._parse(t)) for i, t in non_empty]
            numbers = [(i, v) for i, v in parsed if v is not None]
            if len(numbers) / len(non_empty) < self.min_numeric_share:
                continue  # not a numeric column
            values = np.array([v for _, v in numbers])
            mean = values.mean()
            std = values.std()
            for i, v in parsed:
                if v is None:
                    out[i, j] = True  # unparsable cell in a numeric column
                elif std > 1e-12 and abs(v - mean) / std > self.z_threshold:
                    out[i, j] = True
        return out


class DomainDictionaryStrategy(DetectionStrategy):
    """KATARA-style knowledge-base lookups: flag out-of-domain values.

    Given per-column value domains (from a curated dictionary or an
    external knowledge base), any non-empty cell outside its column's
    domain is flagged.  Columns without a configured domain are skipped.

    Parameters
    ----------
    domains:
        Mapping from column name to the set of valid values.
    case_sensitive:
        Compare values case-sensitively (default: insensitive, matching
        the benchmark data's mixed casing).
    """

    name = "domain_dictionary"

    def __init__(self, domains: dict[str, Sequence[str]],
                 case_sensitive: bool = False):
        if not domains:
            raise ConfigurationError("at least one column domain is required")
        self.case_sensitive = case_sensitive
        self._domains = {
            column: frozenset(v if case_sensitive else v.lower()
                              for v in values)
            for column, values in domains.items()
        }

    def detect(self, dirty: Table) -> np.ndarray:
        out = np.zeros(dirty.shape, dtype=bool)
        for j, attr in enumerate(dirty.column_names):
            domain = self._domains.get(attr)
            if domain is None:
                continue
            for i, value in enumerate(dirty.column(attr).values):
                text = _cell_text(value).strip()
                if not text:
                    continue
                if not self.case_sensitive:
                    text = text.lower()
                out[i, j] = text not in domain
        return out


def default_strategies() -> list[DetectionStrategy]:
    """The strategy ensemble used by the Raha-style baseline."""
    return [
        MissingValueStrategy(),
        PatternProfileStrategy(max_pattern_share=0.05),
        PatternProfileStrategy(max_pattern_share=0.15),
        ValueFrequencyStrategy(max_count=1),
        ValueFrequencyStrategy(max_count=2),
        LengthOutlierStrategy(z_threshold=3.0),
        NumericOutlierStrategy(),
        FDViolationStrategy(),
    ]


def run_strategies(dirty: Table,
                   strategies: Sequence[DetectionStrategy]) -> np.ndarray:
    """Stack strategy verdicts into ``(n_rows, n_attributes, n_strategies)``."""
    if not strategies:
        raise ConfigurationError("at least one strategy is required")
    layers = []
    for strategy in strategies:
        verdicts = strategy.detect(dirty)
        if verdicts.shape != dirty.shape:
            raise ConfigurationError(
                f"strategy {strategy.name!r} returned shape {verdicts.shape}, "
                f"expected {dirty.shape}"
            )
        layers.append(verdicts)
    return np.stack(layers, axis=-1)
