"""L2-regularised logistic regression trained by full-batch gradient descent.

The per-column classifier of the Raha-style baseline and the sequence
classifier of the augmentation baseline.  Kept dependency-free (numpy
only) and deliberately simple: the feature spaces are tiny (a handful of
strategy verdicts or hashed n-grams).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class LogisticRegression:
    """Binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iterations:
        Number of full-batch updates.
    l2:
        L2 penalty weight on the coefficients (not the intercept).
    class_weight:
        ``"balanced"`` reweights examples inversely to class frequency
        (important: error cells are rare); ``None`` weights uniformly.
    """

    def __init__(self, learning_rate: float = 0.5, n_iterations: int = 300,
                 l2: float = 1e-3, class_weight: str | None = "balanced"):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if n_iterations < 1:
            raise ConfigurationError(f"n_iterations must be >= 1, got {n_iterations}")
        if class_weight not in (None, "balanced"):
            raise ConfigurationError(
                f"class_weight must be None or 'balanced', got {class_weight!r}"
            )
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.class_weight = class_weight
        self.coefficients: np.ndarray | None = None
        self.intercept: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on ``(n, d)`` features and binary ``(n,)`` labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1:
            raise ConfigurationError(
                f"expected 2-d features and 1-d labels, got {features.shape}, {labels.shape}"
            )
        if features.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"feature rows {features.shape[0]} != label count {labels.shape[0]}"
            )
        n, d = features.shape
        if n == 0:
            raise ConfigurationError("cannot fit on an empty training set")

        weights = np.ones(n)
        if self.class_weight == "balanced":
            positives = labels.sum()
            negatives = n - positives
            if positives > 0 and negatives > 0:
                weights = np.where(labels == 1, n / (2 * positives), n / (2 * negatives))
        weights /= weights.sum()

        coef = np.zeros(d)
        intercept = 0.0
        for _ in range(self.n_iterations):
            logits = features @ coef + intercept
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
            residual = weights * (probs - labels)
            grad_coef = features.T @ residual + self.l2 * coef
            grad_intercept = residual.sum()
            coef -= self.learning_rate * grad_coef
            intercept -= self.learning_rate * grad_intercept
        self.coefficients = coef
        self.intercept = float(intercept)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        if self.coefficients is None:
            raise NotFittedError("LogisticRegression.fit has not been called")
        features = np.asarray(features, dtype=np.float64)
        logits = features @ self.coefficients + self.intercept
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)
