"""Baseline error-detection systems implemented from scratch.

* :mod:`~repro.baselines.strategies` -- the error-detection strategy
  ensemble Raha configures automatically (outlier, pattern, rule/FD and
  missing-value detectors);
* :mod:`~repro.baselines.clustering` -- agglomerative clustering of
  per-cell strategy-output feature vectors;
* :mod:`~repro.baselines.raha` -- the Raha-style detector: strategies ->
  features -> clustering -> label propagation -> per-column classifier;
* :mod:`~repro.baselines.logreg` -- the L2-regularised logistic
  regression used as the per-column classifier;
* :mod:`~repro.baselines.augment` -- an augmentation-based detector
  standing in for Rotom's comparison axis.
"""

from repro.baselines.augment import AugmentationDetector
from repro.baselines.clustering import agglomerative_clusters
from repro.baselines.logreg import LogisticRegression
from repro.baselines.raha import RahaDetector
from repro.baselines.strategies import (
    DetectionStrategy,
    DomainDictionaryStrategy,
    FDViolationStrategy,
    LengthOutlierStrategy,
    MissingValueStrategy,
    NumericOutlierStrategy,
    PatternProfileStrategy,
    ValueFrequencyStrategy,
    default_strategies,
)

__all__ = [
    "DetectionStrategy",
    "MissingValueStrategy",
    "PatternProfileStrategy",
    "ValueFrequencyStrategy",
    "LengthOutlierStrategy",
    "NumericOutlierStrategy",
    "DomainDictionaryStrategy",
    "FDViolationStrategy",
    "default_strategies",
    "agglomerative_clusters",
    "LogisticRegression",
    "RahaDetector",
    "AugmentationDetector",
]
