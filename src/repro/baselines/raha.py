"""A Raha-style configuration-free error detector.

Follows the published Raha design (Mahdavi et al., SIGMOD 2019):

1. run an ensemble of unsupervised detection strategies over the dirty
   table;
2. represent every cell as the binary vector of strategy verdicts;
3. cluster each column's cells by verdict similarity (hierarchical
   agglomerative clustering);
4. ask the user to label a few *tuples*, chosen so that their cells cover
   as many unlabelled clusters as possible;
5. propagate the obtained cell labels to all cells of the same cluster;
6. train a per-column classifier on the propagated labels and predict an
   error mask for the whole table.

The same clustering state drives the paper's Algorithm 2 sampler
(:class:`repro.sampling.raha_set.RahaSet`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines.clustering import agglomerative_clusters
from repro.baselines.logreg import LogisticRegression
from repro.baselines.strategies import (
    DetectionStrategy,
    default_strategies,
    run_strategies,
)
from repro.errors import ConfigurationError, NotFittedError
from repro.table import Table


@dataclass
class _ColumnState:
    """Per-column feature matrix and clustering."""

    features: np.ndarray          # (n_rows, n_strategies)
    cluster_labels: np.ndarray    # (n_rows,)
    n_clusters: int


class RahaDetector:
    """Configuration-free error detection via strategy-verdict clustering.

    Parameters
    ----------
    strategies:
        Detection strategies; defaults to
        :func:`repro.baselines.strategies.default_strategies`.
    clusters_per_label:
        Cluster count per column is
        ``min(n_labels * clusters_per_label + 1, n_rows)``; more clusters
        give finer label propagation at the cost of coverage.
    rng:
        Random generator used for clustering subsamples and tie-breaks.
    """

    def __init__(self, strategies: Sequence[DetectionStrategy] | None = None,
                 clusters_per_label: int = 2,
                 rng: np.random.Generator | None = None):
        if clusters_per_label < 1:
            raise ConfigurationError(
                f"clusters_per_label must be >= 1, got {clusters_per_label}"
            )
        self.strategies = list(strategies) if strategies is not None else default_strategies()
        self.clusters_per_label = clusters_per_label
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._columns: list[_ColumnState] | None = None
        self._dirty: Table | None = None

    # -- unsupervised phase ---------------------------------------------------

    def analyze(self, dirty: Table, n_labels: int = 20) -> None:
        """Run strategies and cluster each column (steps 1-3)."""
        verdicts = run_strategies(dirty, self.strategies)  # (rows, attrs, strats)
        n_clusters = n_labels * self.clusters_per_label + 1
        columns = []
        for j in range(dirty.n_cols):
            features = verdicts[:, j, :].astype(np.float64)
            labels = agglomerative_clusters(
                features, min(n_clusters, dirty.n_rows), rng=self._rng)
            columns.append(_ColumnState(
                features=features,
                cluster_labels=labels,
                n_clusters=int(labels.max()) + 1 if len(labels) else 0,
            ))
        self._columns = columns
        self._dirty = dirty

    def _require_analyzed(self) -> tuple[Table, list[_ColumnState]]:
        if self._columns is None or self._dirty is None:
            raise NotFittedError("call analyze() before sampling or fitting")
        return self._dirty, self._columns

    # -- tuple sampling (step 4; used by RahaSet) --------------------------------

    def sample_tuples(self, n_obs: int) -> list[int]:
        """Greedily pick tuples whose cells cover the most unlabelled clusters."""
        dirty, columns = self._require_analyzed()
        if n_obs > dirty.n_rows:
            raise ConfigurationError(
                f"cannot sample {n_obs} tuples from {dirty.n_rows} rows"
            )
        covered: list[set[int]] = [set() for _ in columns]
        chosen: list[int] = []
        chosen_set: set[int] = set()
        for _ in range(n_obs):
            best_rows: list[int] = []
            best_gain = -1
            for row in range(dirty.n_rows):
                if row in chosen_set:
                    continue
                gain = sum(
                    1 for j, state in enumerate(columns)
                    if int(state.cluster_labels[row]) not in covered[j]
                )
                if gain > best_gain:
                    best_gain = gain
                    best_rows = [row]
                elif gain == best_gain:
                    best_rows.append(row)
            pick = best_rows[int(self._rng.integers(len(best_rows)))]
            chosen.append(pick)
            chosen_set.add(pick)
            for j, state in enumerate(columns):
                covered[j].add(int(state.cluster_labels[pick]))
        return chosen

    # -- supervised phase ------------------------------------------------------

    def fit_predict(self, labeled_rows: Sequence[int],
                    cell_labels: np.ndarray) -> np.ndarray:
        """Propagate labels and classify every cell (steps 5-6).

        Parameters
        ----------
        labeled_rows:
            Row indices the user labelled.
        cell_labels:
            ``(len(labeled_rows), n_attributes)`` binary ground-truth
            labels for those rows' cells.

        Returns
        -------
        ``(n_rows, n_attributes)`` binary error predictions.
        """
        dirty, columns = self._require_analyzed()
        labeled_rows = list(labeled_rows)
        cell_labels = np.asarray(cell_labels, dtype=np.int64)
        if cell_labels.shape != (len(labeled_rows), dirty.n_cols):
            raise ConfigurationError(
                f"cell_labels shape {cell_labels.shape} does not match "
                f"({len(labeled_rows)}, {dirty.n_cols})"
            )

        predictions = np.zeros((dirty.n_rows, dirty.n_cols), dtype=np.int64)
        for j, state in enumerate(columns):
            # Label propagation: each labelled cell stamps its cluster.
            cluster_votes: dict[int, list[int]] = {}
            for row, label in zip(labeled_rows, cell_labels[:, j]):
                cluster_votes.setdefault(
                    int(state.cluster_labels[row]), []).append(int(label))
            propagated_features = []
            propagated_labels = []
            for cluster, votes in cluster_votes.items():
                majority = 1 if sum(votes) * 2 >= len(votes) else 0
                members = np.where(state.cluster_labels == cluster)[0]
                propagated_features.append(state.features[members])
                propagated_labels.append(np.full(len(members), majority))
            features = np.concatenate(propagated_features, axis=0)
            labels = np.concatenate(propagated_labels, axis=0)
            if labels.min() == labels.max():
                # Single-class training data: predict that class everywhere.
                predictions[:, j] = labels[0]
                continue
            classifier = LogisticRegression()
            classifier.fit(features, labels)
            predictions[:, j] = classifier.predict(state.features)
        return predictions
