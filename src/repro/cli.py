"""Command-line interface.

The subcommands mirror the library's main workflows::

    repro datasets                          # Table 2 overview
    repro detect  --dirty d.csv --clean c.csv --out errors.csv
    repro repair  --dirty d.csv --clean c.csv --out repaired.csv
    repro predict --model model.npz --dirty d.csv
    repro serve   --model model.npz a.csv b.csv c.csv
    repro serve   --model model.npz --daemon --port 7433
    repro benchmark --dataset beers --rows 200 --runs 2
    repro benchmark --dataset beers --resume runs.jsonl --max-retries 2
    repro faults list
    repro faults run --plan plan.json --dataset beers --resume runs.jsonl

``detect``/``repair`` also accept ``--save model.npz`` /
``--model model.npz`` for reusing a trained detector.  ``predict`` and
``serve`` score through the dedup-memoized inference engine (disable
with ``--no-dedup``; size the cross-call cache with ``--cache-size``);
``serve`` keeps the prediction cache warm across input files and, with
``--daemon``, becomes a long-lived socket server that micro-batches
concurrent score requests, re-scores only edited cells, and hot-swaps
models per tenant (see :mod:`repro.serving`).

Every workload subcommand accepts ``--telemetry-out out.jsonl``, which
enables the instrumentation layer for the duration of the command and
streams structured records (epochs, spans, inference counters, plus a
final metrics snapshot) to the given JSON-lines file; inspect one with
``repro telemetry summarize out.jsonl``.
"""

from __future__ import annotations

import argparse
import sys

from contextlib import contextmanager

import numpy as np

from repro import telemetry
from repro.datasets import DATASET_NAMES, load
from repro.errors import ConfigurationError
from repro.experiments import render_table2, run_experiment
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.models.serialization import load_detector, save_detector
from repro.repair import (
    FormatRepairer,
    FrequentValueRepairer,
    RepairPipeline,
)
from repro.table import Table, read_csv, write_csv


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry-out", metavar="JSONL", default=None,
                        help="enable instrumentation for this command and "
                             "stream records to the given JSON-lines file "
                             "(summarize with 'repro telemetry summarize')")


@contextmanager
def _telemetry_session(args):
    """Run one command under a fresh registry streaming to ``--telemetry-out``.

    A no-op when the flag is absent.  Installs a fresh
    :class:`~repro.telemetry.MetricsRegistry` (so repeated ``main()``
    calls in one process never accumulate) with a JSON-lines sink, turns
    telemetry on for the duration, and closes with a final
    ``{"type": "snapshot"}`` record carrying the full metrics state.
    """
    path = getattr(args, "telemetry_out", None)
    if not path:
        yield
        return
    registry = telemetry.MetricsRegistry()
    sink = telemetry.JsonlSink(path)
    registry.add_sink(sink)
    with telemetry.use_telemetry(registry):
        try:
            yield
        finally:
            registry.emit({"type": "snapshot",
                           "metrics": registry.snapshot()})
            sink.close()
            print(f"telemetry: {sink.n_records} records written to {path}",
                  file=sys.stderr)


def _add_serving_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-dedup", action="store_true",
                        help="disable the dedup-memoized inference engine "
                             "(predictions are identical; this is the "
                             "naive-baseline switch)")
    parser.add_argument("--cache-size", type=int, default=None,
                        help="prediction-cache capacity in unique cells "
                             "(default: 65536)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker threads for the kernel work plane "
                             "(0 = serial; predictions are bit-identical "
                             "at any count)")
    parser.add_argument("--precision", choices=("float64", "float32", "int8"),
                        default="float64",
                        help="inference numeric mode (float32/int8 are the "
                             "tolerance-gated fast paths; float64 is the "
                             "bit-exact reference)")


def _add_training_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=("tsb", "etsb", "attn"),
                        default="etsb",
                        help="model architecture (default: etsb)")
    parser.add_argument("--epochs", type=int, default=120,
                        help="training epochs (default: 120, the paper's)")
    parser.add_argument("--tuples", type=int, default=20,
                        help="labelled tuples (default: 20)")
    parser.add_argument("--cell", choices=("rnn", "lstm", "gru"),
                        default="rnn", help="recurrence cell family")
    parser.add_argument("--seed", type=int, default=0)


def _add_benchmark_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``benchmark`` and ``faults run``."""
    parser.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    parser.add_argument("--rows", type=int, default=200)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None,
                        help="fan runs out over this many worker processes "
                             "(default: serial; results are identical)")
    parser.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="completed-task journal (JSONL); tasks already "
                             "recorded are skipped, so re-invoking after a "
                             "crash finishes only the remaining runs")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="per-task retries with exponential backoff "
                             "(default: 0)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-task wall-clock limit in seconds "
                             "(enforced with --workers > 1 only)")
    parser.add_argument("--detectors", default=None, metavar="NAMES",
                        help="comma-separated registry detectors (e.g. "
                             "etsb,raha,attn,ensemble); runs the "
                             "cross-detector comparison over shared "
                             "labelled rows instead of one architecture")
    _add_training_flags(parser)
    _add_telemetry_flag(parser)


def _fit_detector(args) -> tuple[ErrorDetector, Table]:
    dirty = read_csv(args.dirty)
    detector = ErrorDetector(
        architecture=args.arch,
        n_label_tuples=args.tuples,
        model_config=ModelConfig(cell_type=args.cell),
        training_config=TrainingConfig(epochs=args.epochs),
        seed=args.seed,
    )
    clean = read_csv(args.clean)
    print(f"training {args.arch.upper()}-RNN on {dirty.n_rows} rows "
          f"x {dirty.n_cols} columns ({args.epochs} epochs)...",
          file=sys.stderr)
    detector.fit_tables(dirty, clean)
    result = detector.evaluate()
    print(f"held-out metrics: {result.report}", file=sys.stderr)
    return detector, dirty


def _predicted_mask(detector: ErrorDetector, dirty: Table) -> np.ndarray:
    positions = {a: j for j, a in enumerate(dirty.column_names)}
    mask = np.zeros(dirty.shape, dtype=bool)
    for tuple_id, attribute in detector.predict_table():
        mask[tuple_id, positions[attribute]] = True
    return mask


def cmd_datasets(args) -> int:
    rows = args.rows
    pairs = [load(name, n_rows=rows, seed=args.seed)
             for name in DATASET_NAMES]
    _, text = render_table2(pairs)
    print(text)
    return 0


def cmd_detect_path(args) -> int:
    """Unlabeled mode: ingest real files and score them end to end.

    ``repro detect <path>`` walks a file or folder through the
    :mod:`repro.io` ingestion layer (encoding/dialect sniffing, ragged
    recovery, SQLite extraction), profiles every column, and either
    trains a BiRNN per table against the analyzers' weak labels or, with
    ``--model``, scores with a saved detector.  No clean table needed.
    """
    from repro.errors import IngestError
    from repro.io import detect_path, scores_table

    detector = None
    if args.model:
        detector = load_detector(args.model)
    try:
        report, outcomes = detect_path(
            args.path, detector=detector, architecture=args.arch,
            n_label_tuples=args.tuples, epochs=args.epochs,
            cell_type=args.cell, seed=args.seed)
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path, reason in report.skipped:
        print(f"skipped {path}: {reason}", file=sys.stderr)
    stats = report.stats
    print(f"ingested {stats.tables_ingested} table(s) from "
          f"{stats.files_parsed}/{stats.files_discovered} file(s) "
          f"({stats.encoding_fallbacks} encoding fallbacks, "
          f"{stats.rows_recovered} ragged rows recovered)", file=sys.stderr)
    if not outcomes:
        print("error: nothing ingestable under "
              f"{args.path}", file=sys.stderr)
        return 1
    total_flagged = 0
    for outcome in outcomes:
        flagged = outcome.flagged
        total_flagged += len(flagged)
        kinds = ", ".join(f"{name}={profile.kind.value}"
                          for name, profile in outcome.profiles.items())
        print(f"{outcome.table.name}: {outcome.table.table.n_rows} rows, "
              f"{len(flagged)} suspicious cells  [{kinds}]", file=sys.stderr)
    out = scores_table(outcomes, flagged_only=not args.all_cells)
    if args.out:
        write_csv(out, args.out)
        print(f"{out.n_rows} scored cells written to {args.out}",
              file=sys.stderr)
    else:
        print(out.preview(min(out.n_rows, 50)))
    return 0


def cmd_detect(args) -> int:
    if args.path:
        if args.dirty or args.clean:
            print("error: give either a PATH (unlabeled ingestion) or "
                  "--dirty/--clean (labeled pair), not both",
                  file=sys.stderr)
            return 2
        return cmd_detect_path(args)
    if not args.dirty or not args.clean:
        print("error: detect needs a PATH or both --dirty and --clean",
              file=sys.stderr)
        return 2
    detector, dirty = _fit_detector(args)
    if args.save:
        save_detector(detector, args.save)
        print(f"model saved to {args.save}", file=sys.stderr)
    cells = detector.predict_table()
    out = Table({
        "row": [tid for tid, _ in cells],
        "attribute": [attr for _, attr in cells],
        "value": [dirty.column(attr)[tid] for tid, attr in cells],
    })
    if args.out:
        write_csv(out, args.out)
        print(f"{out.n_rows} suspicious cells written to {args.out}",
              file=sys.stderr)
    else:
        print(out.preview(min(out.n_rows, 50)))
    return 0


def cmd_repair(args) -> int:
    detector, dirty = _fit_detector(args)
    mask = _predicted_mask(detector, dirty)
    pipeline = RepairPipeline([FormatRepairer(), FrequentValueRepairer()])
    outcome = pipeline.run(dirty, mask)
    print(f"flagged {int(mask.sum())} cells; repaired {outcome.n_applied}, "
          f"left {len(outcome.unrepaired)} unrepaired", file=sys.stderr)
    write_csv(outcome.repaired, args.out)
    print(f"repaired table written to {args.out}", file=sys.stderr)
    return 0


def _score_csv(detector: ErrorDetector, dirty: Table) -> Table | None:
    """Score every cell of ``dirty`` with a loaded detector.

    Returns the flagged-cells table, or ``None`` when no column matches
    the model's attributes.  Prediction runs through the detector's
    dedup-memoized inference engine, so duplicate cells (and, across
    calls, previously seen cells) skip the network.
    """
    from repro.models.serialization import encode_values_for

    known = set(detector.prepared.attributes)
    usable = [name for name in dirty.column_names if name in known]
    skipped = [name for name in dirty.column_names if name not in known]
    if skipped:
        print(f"skipping columns the model never saw: {skipped}",
              file=sys.stderr)
    if not usable:
        return None

    rows, attrs, values = [], [], []
    for name in usable:
        for i, value in enumerate(dirty.column(name).values):
            rows.append(i)
            attrs.append(name)
            values.append("" if value is None else str(value))
    features = encode_values_for(detector, values, attrs)
    predictions = detector.predict(features)
    flagged = [(rows[i], attrs[i], values[i])
               for i in range(len(rows)) if predictions[i] == 1]
    return Table({
        "row": [r for r, _, __ in flagged],
        "attribute": [a for _, a, __ in flagged],
        "value": [v for _, __, v in flagged],
    })


def _configure_inference(detector: ErrorDetector, args) -> None:
    """Apply the shared serving flags (--no-dedup, --cache-size,
    --workers, --precision)."""
    detector.deduplicate = not args.no_dedup
    if args.cache_size is not None:
        detector.prediction_cache.resize(args.cache_size)
    if args.workers < 0:
        raise ConfigurationError(
            f"--workers must be >= 0, got {args.workers}")
    detector.inference_workers = args.workers
    if args.no_dedup and args.precision != "float64":
        raise ConfigurationError(
            "--precision float32/int8 requires the dedup engine; "
            "drop --no-dedup")
    detector.inference_precision = args.precision


def cmd_predict(args) -> int:
    from repro.models.serialization import load_detector

    detector = load_detector(args.model)
    _configure_inference(detector, args)
    out = _score_csv(detector, read_csv(args.dirty))
    if out is None:
        print("error: no column of this CSV matches the model's attributes",
              file=sys.stderr)
        return 1
    if args.out:
        write_csv(out, args.out)
        print(f"{out.n_rows} suspicious cells written to {args.out}",
              file=sys.stderr)
    else:
        print(out.preview(min(out.n_rows, 50)))
    stats = detector.inference_stats
    if stats is not None:
        print(f"inference: {stats.n_rows} cells, {stats.n_unique} unique "
              f"({stats.unique_ratio:.1%}), cache hits {stats.cache_hits} / "
              f"misses {stats.cache_misses}", file=sys.stderr)
    return 0


def cmd_serve_daemon(args) -> int:
    """Long-lived scoring daemon (``repro serve --daemon``).

    Binds a local TCP socket and serves JSON-lines score / update /
    feedback / swap_model requests until a client sends ``shutdown`` (or
    the process receives SIGINT).  Concurrent requests are coalesced
    into micro-batched forwards; see :mod:`repro.serving`.
    """
    from repro.serving import ServingDaemon

    if args.no_dedup:
        raise ConfigurationError(
            "--daemon always serves through the dedup engine; drop --no-dedup")
    daemon = ServingDaemon(
        model_path=args.model,
        host=args.host, port=args.port,
        max_batch_rows=args.max_batch_rows,
        batch_delay_ms=args.batch_delay_ms,
        max_queue_rows=args.max_queue_rows,
        cache_size=args.cache_size if args.cache_size is not None else 65536,
        workers=args.workers, precision=args.precision,
    )
    print(f"serving daemon listening on {daemon.host}:{daemon.port} "
          f"(micro-batch <= {args.max_batch_rows} rows / "
          f"{args.batch_delay_ms}ms, queue bound {args.max_queue_rows} rows)",
          file=sys.stderr)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.close()
    stats = daemon.batcher.stats
    print(f"daemon stopped: {daemon.n_requests} requests, "
          f"{stats.n_batches} batches ({stats.mean_batch_items:.1f} "
          f"requests/batch), {daemon.n_rejected} shed", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Batch-scoring loop: load the model once, score many CSVs.

    The detector's prediction cache persists across files, so any cell
    (attribute, value) pair seen in an earlier file is served without
    touching the network -- the serving-traffic fast path.  A file that
    fails (unreadable, malformed, or sharing no column with the model)
    is reported with its reason and turns the exit code nonzero; the
    remaining files are still served.

    ``--daemon`` switches to the long-lived socket daemon instead (no
    input CSVs; see :mod:`repro.serving`).
    """
    from pathlib import Path

    from repro.errors import DataError, TableError
    from repro.models.serialization import load_detector

    if args.daemon:
        if args.inputs:
            print("error: --daemon takes no input CSVs (clients submit "
                  "cells over the socket)", file=sys.stderr)
            return 2
        try:
            return cmd_serve_daemon(args)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if not args.inputs:
        print("error: batch mode needs at least one input CSV "
              "(or --daemon for the socket server)", file=sys.stderr)
        return 2

    detector = load_detector(args.model)
    _configure_inference(detector, args)
    failures: list[tuple[str, str]] = []
    for path in args.inputs:
        try:
            table = read_csv(path)
            out = _score_csv(detector, table)
        except (OSError, DataError, TableError, ConfigurationError) as exc:
            failures.append((str(path), f"{type(exc).__name__}: {exc}"))
            print(f"{path}: FAILED ({failures[-1][1]})", file=sys.stderr)
            continue
        if out is None:
            reason = "no column matches the model's attributes"
            failures.append((str(path), reason))
            print(f"{path}: FAILED ({reason})", file=sys.stderr)
            continue
        stats = detector.inference_stats
        detail = ""
        if stats is not None:
            detail = (f" ({stats.n_unique}/{stats.n_rows} unique, "
                      f"{stats.cache_hits} cache hits)")
        print(f"{path}: {out.n_rows} suspicious cells{detail}",
              file=sys.stderr)
        if args.out_dir:
            target = Path(args.out_dir)
            target.mkdir(parents=True, exist_ok=True)
            dest = target / f"{Path(path).stem}.errors.csv"
            write_csv(out, dest)
            print(f"  written to {dest}", file=sys.stderr)
        else:
            print(out.preview(min(out.n_rows, 20)))
    cache = detector.prediction_cache
    total = detector.trainer.total_inference_stats
    print(f"served {len(args.inputs) - len(failures)}/{len(args.inputs)} "
          f"files: {total.n_rows} cells, {total.n_evaluated} network "
          f"forwards, cache hit rate {cache.hit_rate:.1%} "
          f"({cache.hits} hits / {cache.misses} misses, "
          f"{len(cache)} entries)", file=sys.stderr)
    if failures:
        print(f"{len(failures)} file(s) failed:", file=sys.stderr)
        for path, reason in failures:
            print(f"  {path}: {reason}", file=sys.stderr)
    return 1 if failures else 0


def cmd_analyze(args) -> int:
    from repro.experiments import (
        attribute_breakdown,
        hardest_attributes,
        render_breakdown,
    )
    detector, dirty = _fit_detector(args)
    result = detector.evaluate()
    breakdowns = attribute_breakdown(result, detector.split.test.labels)
    print(render_breakdown(breakdowns))
    hardest = hardest_attributes(breakdowns)
    if hardest:
        print("\nhardest attributes (errors present, worst F1 first):")
        for b in hardest[:5]:
            print(f"  {b.attribute:<20} F1={b.report.f1:.2f} "
                  f"({b.n_errors} errors / {b.n_cells} cells)")
    return 0


def cmd_telemetry_summarize(args) -> int:
    try:
        text = telemetry.summarize_jsonl(args.path)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(text)
    return 0


def cmd_benchmark(args) -> int:
    pair = load(args.dataset, n_rows=args.rows, seed=args.seed)
    print(f"{args.dataset}: {pair.dirty.shape}, "
          f"error rate {pair.measured_error_rate():.2%}", file=sys.stderr)
    if getattr(args, "detectors", None):
        from repro.detectors import list_detectors
        from repro.experiments import (
            render_comparison,
            run_detector_comparison,
        )
        names = tuple(n.strip() for n in args.detectors.split(",") if n.strip())
        unknown = [n for n in names if n not in list_detectors()]
        if unknown:
            print(f"error: unknown detectors {unknown}; registered: "
                  f"{list(list_detectors())}", file=sys.stderr)
            return 1
        results = run_detector_comparison(
            pair, detectors=names, n_runs=args.runs,
            n_label_tuples=args.tuples, epochs=args.epochs,
            base_seed=args.seed)
        print(render_comparison(results))
        return 0
    # Durability flags switch the runner to graceful degradation: a task
    # that exhausts its retries becomes a failure record instead of
    # aborting the sweep, and --resume makes the re-invocation cheap.
    durable = bool(args.resume or args.max_retries or args.task_timeout)
    result = run_experiment(
        pair, architecture=args.arch, n_runs=args.runs,
        n_label_tuples=args.tuples, epochs=args.epochs,
        model_config=ModelConfig(cell_type=args.cell),
        n_workers=args.workers,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        journal_path=args.resume,
        fail_fast=not durable)
    if result.failures:
        for failure in result.failures:
            print(f"FAILED task {failure.task_index} "
                  f"(seed {failure.seed}) after {failure.attempts} "
                  f"attempt(s): {failure.error_type}: {failure.error}",
                  file=sys.stderr)
        print(f"{len(result.failures)} of "
              f"{len(result.failures) + len(result.runs)} runs failed; "
              f"aggregates below cover the completed runs only"
              + (" (re-invoke with the same --resume journal to retry)"
                 if args.resume else ""),
              file=sys.stderr)
    if not result.runs:
        print("error: every run failed; nothing to aggregate",
              file=sys.stderr)
        return 1
    row = result.as_row()
    print(f"P  = {row['P']:.3f} ± {row['P_sd']:.3f}")
    print(f"R  = {row['R']:.3f} ± {row['R_sd']:.3f}")
    print(f"F1 = {row['F1']:.3f} ± {row['F1_sd']:.3f}")
    print(f"train time = {row['seconds']:.1f}s ± {row['seconds_sd']:.1f}s")
    return 1 if result.failures else 0


def cmd_faults_list(args) -> int:
    from repro.faults import describe_points

    print(describe_points())
    return 0


def cmd_faults_run(args) -> int:
    """Run one benchmark experiment under a fault plan (chaos mode).

    The plan activates in this process *and*, via the ``REPRO_FAULTS``
    environment variable, in every worker process a pooled run spawns.
    Exit code 0 means the sweep completed (faults absorbed or not
    triggered); a kill fault escaping to the top level exits like the
    crash it simulates, after pointing at the --resume journal.
    """
    import os

    from repro.faults import (FAULTS_ENV_VAR, FaultPlan, WorkerKilled,
                              clear_plan, install_plan)

    plan = FaultPlan.load(args.plan)
    print(f"fault plan: {len(plan.specs)} spec(s) from {args.plan}",
          file=sys.stderr)
    previous = os.environ.get(FAULTS_ENV_VAR)
    os.environ[FAULTS_ENV_VAR] = args.plan
    install_plan(plan)
    try:
        code = cmd_benchmark(args)
    except WorkerKilled as exc:
        print(f"sweep killed by injected fault: {exc}", file=sys.stderr)
        if args.resume:
            print(f"completed tasks are journalled in {args.resume}; "
                  f"re-invoke to resume", file=sys.stderr)
        return 1
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV_VAR, None)
        else:
            os.environ[FAULTS_ENV_VAR] = previous
        clear_plan()
        # Per-spec trigger counts for this process (pooled workers count
        # their own triggers; those surface via faults.* telemetry).
        for spec, count in zip(plan.specs, plan.triggers()):
            if count:
                print(f"fault triggered: {spec.point} [{spec.action}] "
                      f"x{count}", file=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error detection with bidirectional RNNs (EDBT 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets",
                                help="show the Table 2 dataset overview")
    p_datasets.add_argument("--rows", type=int, default=200,
                            help="rows per generated dataset (default: 200)")
    p_datasets.add_argument("--seed", type=int, default=0)
    p_datasets.set_defaults(fn=cmd_datasets)

    p_detect = sub.add_parser(
        "detect",
        help="detect errors in a CSV pair, or in real unlabeled files "
             "(folder/CSV/SQLite) via the ingestion layer")
    p_detect.add_argument("path", nargs="?", metavar="PATH",
                          help="file or folder to ingest and score without "
                               "labels (encoding/dialect sniffing, SQLite "
                               "extraction, analyzer weak labels)")
    p_detect.add_argument("--dirty", help="dirty CSV path (labeled mode)")
    p_detect.add_argument("--clean",
                          help="clean CSV path (labels for sampled tuples)")
    p_detect.add_argument("--out", help="write flagged cells to this CSV")
    p_detect.add_argument("--save", help="save the fitted model (.npz)")
    p_detect.add_argument("--model",
                          help="score PATH with this saved detector instead "
                               "of training on analyzer weak labels")
    p_detect.add_argument("--all-cells", action="store_true",
                          help="with PATH: write every cell's score, not "
                               "just the flagged ones")
    _add_training_flags(p_detect)
    _add_telemetry_flag(p_detect)
    p_detect.set_defaults(fn=cmd_detect)

    p_repair = sub.add_parser("repair",
                              help="detect and repair errors in a CSV pair")
    p_repair.add_argument("--dirty", required=True)
    p_repair.add_argument("--clean", required=True)
    p_repair.add_argument("--out", required=True,
                          help="write the repaired table here")
    _add_training_flags(p_repair)
    _add_telemetry_flag(p_repair)
    p_repair.set_defaults(fn=cmd_repair)

    p_predict = sub.add_parser(
        "predict", help="flag cells of a CSV with a saved model (no training)")
    p_predict.add_argument("--model", required=True,
                           help="detector archive from 'detect --save'")
    p_predict.add_argument("--dirty", required=True)
    p_predict.add_argument("--out", help="write flagged cells to this CSV")
    _add_serving_flags(p_predict)
    _add_telemetry_flag(p_predict)
    p_predict.set_defaults(fn=cmd_predict)

    p_serve = sub.add_parser(
        "serve",
        help="batch-score many CSVs with one saved model (the prediction "
             "cache persists across files), or run the long-lived scoring "
             "daemon with --daemon")
    p_serve.add_argument("--model", required=True,
                         help="detector archive from 'detect --save'")
    p_serve.add_argument("inputs", nargs="*", metavar="CSV",
                         help="dirty CSV files to score in order "
                              "(batch mode; omit with --daemon)")
    p_serve.add_argument("--out-dir",
                         help="write one <name>.errors.csv per input here")
    p_serve.add_argument("--daemon", action="store_true",
                         help="run the long-lived JSON-lines socket daemon "
                              "(micro-batching, incremental re-scoring, "
                              "hot-swap model registry)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="daemon bind host (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="daemon bind port (default: 0 = pick a free "
                              "port, printed at startup)")
    p_serve.add_argument("--max-batch-rows", type=int, default=256,
                         help="micro-batch size bound in feature rows "
                              "(default: 256)")
    p_serve.add_argument("--batch-delay-ms", type=float, default=4.0,
                         help="micro-batch deadline in milliseconds "
                              "(default: 4.0)")
    p_serve.add_argument("--max-queue-rows", type=int, default=4096,
                         help="admission-control bound: reject (429) once "
                              "this many rows are queued (default: 4096)")
    _add_serving_flags(p_serve)
    _add_telemetry_flag(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_analyze = sub.add_parser(
        "analyze", help="per-attribute error analysis on a CSV pair")
    p_analyze.add_argument("--dirty", required=True)
    p_analyze.add_argument("--clean", required=True)
    _add_training_flags(p_analyze)
    p_analyze.set_defaults(fn=cmd_analyze)

    p_bench = sub.add_parser("benchmark",
                             help="run one benchmark dataset end to end")
    _add_benchmark_flags(p_bench)
    p_bench.set_defaults(fn=cmd_benchmark)

    p_faults = sub.add_parser(
        "faults", help="fault-injection harness (chaos testing)")
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_flist = faults_sub.add_parser(
        "list", help="list the named injection points")
    p_flist.set_defaults(fn=cmd_faults_list)
    p_frun = faults_sub.add_parser(
        "run",
        help="run one benchmark under a JSON fault plan; combine with "
             "--resume to exercise crash recovery")
    p_frun.add_argument("--plan", required=True,
                        help="JSON fault-plan file (see repro.faults)")
    _add_benchmark_flags(p_frun)
    p_frun.set_defaults(fn=cmd_faults_run)

    p_tele = sub.add_parser(
        "telemetry", help="inspect telemetry JSON-lines files")
    tele_sub = p_tele.add_subparsers(dest="telemetry_command", required=True)
    p_summarize = tele_sub.add_parser(
        "summarize", help="aggregate a --telemetry-out JSON-lines file")
    p_summarize.add_argument("path",
                             help="file written by --telemetry-out")
    p_summarize.set_defaults(fn=cmd_telemetry_summarize)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    with _telemetry_session(args):
        return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
