"""Custom autograd operations with hand-derived backward passes.

A :class:`Function` packages an arbitrary numpy computation -- potentially
a whole loop of recurrence steps -- into a *single* node of the autograd
graph.  The forward pass receives raw numpy arrays, stashes whatever it
needs on a :class:`FunctionCtx`, and the backward pass returns one
gradient array per tensor input.

This is the substrate for :mod:`repro.nn.kernels`: instead of recording
thousands of tiny per-step nodes for an RNN sequence, the fused kernels
run the full time loop inside one ``Function`` and hand-derive the
backpropagation-through-time sweep.

:func:`gradcheck_function` plugs any ``Function`` into the existing
finite-difference checker so every hand-written backward is validated the
same way as the built-in ops.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.gradcheck import check_gradients
from repro.autograd.tensor import Tensor

__all__ = ["Function", "FunctionCtx", "gradcheck_function"]


class FunctionCtx:
    """Per-invocation scratch space shared between forward and backward.

    ``forward`` may assign arbitrary attributes (saved activations,
    flags, ...); ``backward`` reads them back.  :attr:`needs_input_grad`
    mirrors ``requires_grad`` of the tensor inputs in order of
    appearance, letting backward skip gradients nobody will consume.
    """

    def __init__(self, needs_input_grad: tuple[bool, ...]):
        self.needs_input_grad = needs_input_grad


class Function:
    """Base class for custom ops with hand-derived gradients.

    Subclasses implement two static methods::

        class Square(Function):
            @staticmethod
            def forward(ctx, x):          # x: np.ndarray
                ctx.x = x
                return x * x

            @staticmethod
            def backward(ctx, grad):      # grad: np.ndarray
                return (2.0 * ctx.x * grad,)

    and are invoked through :meth:`apply`, which accepts a mix of
    :class:`Tensor` and plain-python arguments.  Tensor arguments are
    unwrapped to their numpy payloads before ``forward`` runs;
    ``backward`` must return one gradient (or ``None``) per *tensor*
    argument, in order of appearance.
    """

    @staticmethod
    def forward(ctx: FunctionCtx, *args: Any) -> np.ndarray:
        """Compute the op's output from raw numpy inputs."""
        raise NotImplementedError

    @staticmethod
    def backward(ctx: FunctionCtx, grad: np.ndarray
                 ) -> tuple[np.ndarray | None, ...]:
        """Gradients w.r.t. the tensor inputs, given the output gradient."""
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any) -> Tensor:
        """Run ``forward`` and register the op as one autograd node."""
        from repro.errors import GraphError

        parents = tuple(a for a in args if isinstance(a, Tensor))
        ctx = FunctionCtx(tuple(p.requires_grad for p in parents))
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        data = cls.forward(ctx, *raw_args)
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=np.float64)

        def backward(grad: np.ndarray) -> None:
            grads = cls.backward(ctx, grad)
            if not isinstance(grads, tuple):
                grads = (grads,)
            if len(grads) != len(parents):
                raise GraphError(
                    f"{cls.__name__}.backward returned {len(grads)} gradients "
                    f"for {len(parents)} tensor inputs"
                )
            for parent, parent_grad in zip(parents, grads):
                if parent.requires_grad and parent_grad is not None:
                    parent.accumulate_grad(parent_grad)

        return Tensor.from_op(data, parents, backward)


def gradcheck_function(function: type[Function], args: tuple[Any, ...],
                       epsilon: float = 1e-6, atol: float = 1e-5,
                       rtol: float = 1e-4) -> None:
    """Finite-difference check of a :class:`Function`'s backward pass.

    Re-applies ``function`` to ``args`` (tensors are perturbed in place by
    the checker); non-scalar outputs are reduced with a sum of squares so
    every output element contributes gradient signal.
    """
    tensors = [a for a in args if isinstance(a, Tensor) and a.requires_grad]

    def fn() -> Tensor:
        out = function.apply(*args)
        return out if out.size == 1 else (out * out).sum()

    check_gradients(fn, tensors, epsilon=epsilon, atol=atol, rtol=rtol)
