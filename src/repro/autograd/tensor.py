"""The differentiable :class:`Tensor` type.

A tensor wraps a numpy array and, when ``requires_grad`` is set, records
the operation that produced it so that :meth:`Tensor.backward` can
propagate gradients through the computation graph with a single reverse
topological sweep.

Broadcasting follows numpy semantics; gradients of broadcast operands are
summed back to the operand's original shape (:func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.errors import GraphError, ShapeError

_grad_enabled = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def grad_enabled() -> bool:
    """Whether operations currently record the autodiff graph."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value: Any) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        When ``True``, operations on this tensor are recorded and
        :meth:`backward` will populate :attr:`grad`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(self, data: Any, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- construction helpers -------------------------------------------------

    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> Tensor:
        """A tensor of zeros."""
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> Tensor:
        """A tensor of ones."""
        return cls(np.ones(shape), requires_grad=requires_grad)

    @classmethod
    def from_op(cls, data: np.ndarray, parents: Sequence[Tensor],
                backward: Callable[[np.ndarray], None]) -> Tensor:
        """Create an op output node.

        Records ``backward`` only when grad mode is on and some parent
        requires gradients; otherwise the result is a detached constant.
        """
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic protocol ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._not_scalar()

    def _not_scalar(self) -> float:
        raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (not a copy; treat as read-only)."""
        return self.data

    def detach(self) -> Tensor:
        """A tensor sharing this data but cut out of the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # -- gradient accumulation ----------------------------------------------------

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Clear the gradient buffer."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  May be omitted only for single-element
            tensors, in which case it defaults to 1.
        """
        if not self.requires_grad:
            raise GraphError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GraphError(
                    "backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        order = self._topological_order()
        self.accumulate_grad(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> list[Tensor]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # -- arithmetic -------------------------------------------------------------

    def _coerce(self, other: Any) -> Tensor:
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Any) -> Tensor:
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other.accumulate_grad(unbroadcast(grad, other.data.shape))

        return Tensor.from_op(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> Tensor:
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(-grad)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other: Any) -> Tensor:
        return self + (-self._coerce(other))

    def __rsub__(self, other: Any) -> Tensor:
        return self._coerce(other) + (-self)

    def __mul__(self, other: Any) -> Tensor:
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other.accumulate_grad(unbroadcast(grad * self.data, other.data.shape))

        return Tensor.from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> Tensor:
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other.accumulate_grad(unbroadcast(
                    -grad * self.data / (other.data ** 2), other.data.shape))

        return Tensor.from_op(data, (self, other), backward)

    def __rtruediv__(self, other: Any) -> Tensor:
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> Tensor:
        if not isinstance(exponent, (int, float)):
            raise ShapeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(data, (self,), backward)

    def __matmul__(self, other: Any) -> Tensor:
        other = self._coerce(other)
        if self.data.ndim < 1 or other.data.ndim < 1:
            raise ShapeError("matmul requires at least 1-d operands")
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            # Promote 1-d operands to matrices, mirroring numpy's matmul
            # semantics, so one code path covers every dimension mix.
            grad_m = grad
            a_m, b_m = a, b
            if b.ndim == 1:
                b_m = b[:, None]
                grad_m = grad_m[..., None]
            if a.ndim == 1:
                a_m = a[None, :]
                grad_m = grad_m[..., None, :]
            if self.requires_grad:
                grad_a = grad_m @ np.swapaxes(b_m, -1, -2)
                if a.ndim == 1:
                    grad_a = np.squeeze(grad_a, -2)
                self.accumulate_grad(unbroadcast(grad_a, a.shape))
            if other.requires_grad:
                grad_b = np.swapaxes(a_m, -1, -2) @ grad_m
                if b.ndim == 1:
                    grad_b = np.squeeze(grad_b, -1)
                other.accumulate_grad(unbroadcast(grad_b, b.shape))

        return Tensor.from_op(data, (self, other), backward)

    # -- shape manipulation ------------------------------------------------------

    def reshape(self, *shape: int) -> Tensor:
        """Return a reshaped view of this tensor."""
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.reshape(original))

        return Tensor.from_op(data, (self,), backward)

    def transpose(self, *axes: int) -> Tensor:
        """Permute dimensions (all axes must be given, or none for reverse)."""
        order = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(order)
        data = self.data.transpose(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.transpose(inverse))

        return Tensor.from_op(data, (self,), backward)

    def __getitem__(self, key: Any) -> Tensor:
        data = self.data[key]
        # Basic indexing (ints/slices only) selects disjoint positions, so
        # the scatter in backward can use plain slice-assignment; fancy
        # (array) indexing may repeat positions and needs np.add.at.
        parts = key if isinstance(key, tuple) else (key,)
        is_basic = all(isinstance(p, (int, slice, type(Ellipsis))) for p in parts)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # Scatter straight into the gradient buffer: allocating a
                # full-shape temporary per slice would make per-time-step
                # RNN slicing quadratic in sequence length.
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                if is_basic:
                    self.grad[key] += grad
                else:
                    np.add.at(self.grad, key, grad)

        return Tensor.from_op(data, (self,), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> Tensor:
        """Sum over the given axes."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self.accumulate_grad(np.broadcast_to(g, self.data.shape).copy())

        return Tensor.from_op(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> Tensor:
        """Arithmetic mean over the given axes."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> Tensor:
        """Maximum along one axis; gradient flows to the (first) argmax."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            maxed = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxed)
            # Split gradient evenly among ties to stay a valid subgradient.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            self.accumulate_grad(mask * expanded)

        return Tensor.from_op(data, (self,), backward)

    # -- pointwise nonlinearities (methods; functional forms live in ops.py) ----

    def exp(self) -> Tensor:
        """Elementwise exponential."""
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * data)

        return Tensor.from_op(data, (self,), backward)

    def log(self) -> Tensor:
        """Elementwise natural logarithm."""
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad / self.data)

        return Tensor.from_op(data, (self,), backward)

    def sqrt(self) -> Tensor:
        """Elementwise square root."""
        return self ** 0.5

    def clip(self, low: float, high: float) -> Tensor:
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self.accumulate_grad(grad * inside)

        return Tensor.from_op(data, (self,), backward)
