"""A small reverse-mode automatic-differentiation engine on numpy.

The paper's models (Eq. 1-4, Figure 5) need embeddings, tanh RNN
recurrences, dense layers, batch normalisation, softmax and binary
cross-entropy.  This subpackage provides the differentiable tensor type and
the operations required to express all of them, plus a finite-difference
gradient checker used extensively by the test suite.

Public API
----------
:class:`~repro.autograd.tensor.Tensor`
    The differentiable array type; supports ``+ - * / @``, broadcasting,
    slicing, reductions and the activation functions used by the models.
:mod:`~repro.autograd.ops`
    Functional forms (``tanh``, ``relu``, ``sigmoid``, ``softmax``,
    ``log_softmax``, ``embedding_lookup``, ``concat``, ...).
:func:`~repro.autograd.gradcheck.check_gradients`
    Finite-difference validation of the analytic gradients.
:class:`~repro.autograd.function.Function`
    Base class for custom ops with hand-derived backwards (one autograd
    node per op, however large), with
    :func:`~repro.autograd.function.gradcheck_function` for validation.
"""

from repro.autograd.function import Function, FunctionCtx, gradcheck_function
from repro.autograd.gradcheck import check_gradients
from repro.autograd.ops import (
    concat,
    embedding_lookup,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    stack,
    tanh,
    where,
)
from repro.autograd.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "check_gradients",
    "Function",
    "FunctionCtx",
    "gradcheck_function",
    "concat",
    "embedding_lookup",
    "log_softmax",
    "relu",
    "sigmoid",
    "softmax",
    "stack",
    "tanh",
    "where",
]
