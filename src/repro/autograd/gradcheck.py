"""Finite-difference gradient checking.

Used by the test suite to validate every analytic gradient in
:mod:`repro.autograd` and :mod:`repro.nn` against a central-difference
approximation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn()`` (a scalar) w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = fn().item()
        flat[i] = original - epsilon
        lower = fn().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    epsilon: float = 1e-6, atol: float = 1e-5,
                    rtol: float = 1e-4) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Parameters
    ----------
    fn:
        A zero-argument callable that rebuilds the scalar loss from the
        current values of ``tensors`` (it is re-evaluated many times).
    tensors:
        Leaf tensors with ``requires_grad=True`` whose gradients to check.

    Raises
    ------
    AssertionError
        When any analytic gradient deviates beyond the tolerances.
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = fn()
    loss.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad
        assert analytic is not None, f"tensor #{index} received no gradient"
        numeric = numerical_gradient(fn, tensor, epsilon=epsilon)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for tensor #{index} (shape {tensor.shape})",
        )
