"""Functional autograd operations built on :class:`~repro.autograd.tensor.Tensor`.

These cover every operation the paper's architectures need beyond basic
arithmetic: activations, numerically stable (log-)softmax, embedding
lookup, concatenation and stacking.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.autograd.tensor import Tensor


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent (the paper's RNN activation, Eq. 2/4)."""
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * (1.0 - data ** 2))

    return Tensor.from_op(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit (dense layers of Figure 5)."""
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * (x.data > 0.0))

    return Tensor.from_op(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    data = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * data * (1.0 - data))

    return Tensor.from_op(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (final layer of Figure 5)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            x.accumulate_grad(data * (grad - dot))

    return Tensor.from_op(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            soft = np.exp(data)
            x.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor.from_op(data, (x,), backward)


def embedding_lookup(weights: Tensor, indices: np.ndarray) -> Tensor:
    """Gather embedding rows: output ``indices.shape + (embed_dim,)``.

    This is the character-embedding layer of Section 3.1: indices address
    rows of the trainable ``weights`` matrix.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        raise ShapeError(f"embedding indices must be integers, got dtype {indices.dtype}")
    if weights.data.ndim != 2:
        raise ShapeError(f"embedding weights must be 2-d, got shape {weights.shape}")
    vocab_size = weights.data.shape[0]
    if indices.size and (indices.min() < 0 or indices.max() >= vocab_size):
        raise ShapeError(
            f"embedding index out of range [0, {vocab_size}): "
            f"min={indices.min()}, max={indices.max()}"
        )
    data = weights.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not weights.requires_grad:
            return
        if weights.grad is None:
            weights.grad = np.zeros_like(weights.data)
        flat_idx = indices.reshape(-1)
        if not flat_idx.size:
            return
        # Sorted segment-sum scatter: repeated indices are grouped and
        # reduced per row, which is much faster than np.add.at's
        # element-wise buffered loop on large batches.
        order = np.argsort(flat_idx, kind="stable")
        sorted_idx = flat_idx[order]
        sorted_grad = grad.reshape(-1, weights.data.shape[1])[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_idx)) + 1))
        weights.grad[sorted_idx[starts]] += np.add.reduceat(
            sorted_grad, starts, axis=0)

    return Tensor.from_op(data, (weights,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (joins forward/backward RNN paths)."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(slicer)])

    return Tensor.from_op(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equally-shaped tensors along a new axis."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    shapes = {t.data.shape for t in tensors}
    if len(shapes) != 1:
        raise ShapeError(f"stack requires equal shapes, got {sorted(map(str, shapes))}")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor.accumulate_grad(np.squeeze(piece, axis=axis))

    return Tensor.from_op(data, tuple(tensors), backward)


def where(condition: np.ndarray, if_true: Tensor, if_false: Tensor) -> Tensor:
    """Elementwise select: ``condition ? if_true : if_false``.

    ``condition`` is a plain boolean array (no gradient flows through it).
    """
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, if_true.data, if_false.data)

    def backward(grad: np.ndarray) -> None:
        from repro.autograd.tensor import unbroadcast
        if if_true.requires_grad:
            if_true.accumulate_grad(unbroadcast(grad * condition, if_true.data.shape))
        if if_false.requires_grad:
            if_false.accumulate_grad(unbroadcast(grad * ~condition, if_false.data.shape))

    return Tensor.from_op(data, (if_true, if_false), backward)
