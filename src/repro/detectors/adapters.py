"""Registry adapters wrapping the existing detector implementations.

Each adapter folds one entry point -- :class:`ErrorDetector` for the
neural families, :class:`RahaDetector`, :class:`AugmentationDetector` --
into the uniform :class:`~repro.detectors.base.Detector` protocol, so
ensembles, experiment tables, the CLI and the conformance suite treat
them interchangeably.
"""

from __future__ import annotations

import hashlib
import json

from pathlib import Path

import numpy as np

from repro.baselines.augment import AugmentationDetector
from repro.baselines.raha import RahaDetector
from repro.dataprep import prepare
from repro.dataprep.pipeline import _normalise_cell
from repro.datasets.base import DatasetPair
from repro.detectors.base import (
    PROCESS_LOCAL,
    POINTWISE,
    TRANSDUCTIVE,
    Detector,
)
from repro.detectors.registry import register
from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.models.serialization import (
    encode_values_for,
    load_detector,
    save_detector,
)
from repro.sampling import DiverSet, Sampler
from repro.table import Table

#: Tiny widths shared by every ``example()`` (conformance-suite speed).
_EXAMPLE_MODEL = dict(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                      attr_units=3, length_dense_units=6, head_units=8,
                      attn_dim=6)


class FixedSampler(Sampler):
    """A sampler returning a preset tuple-id list.

    Lets a caller (the ensemble's cross-fit folds, the comparison
    runner's shared labelled set) pin exactly which tuples a neural
    detector trains on while reusing the untouched
    :class:`ErrorDetector` pipeline.  Ignores ``rng`` -- the selection
    is already made -- but still validates against the prepared data.
    """

    name = "fixed"

    def __init__(self, tuple_ids):
        self.tuple_ids = [int(t) for t in tuple_ids]
        if len(set(self.tuple_ids)) != len(self.tuple_ids):
            raise ConfigurationError(
                f"tuple_ids must be distinct, got {self.tuple_ids}")

    def select(self, n_obs, prepared, rng):
        if n_obs != len(self.tuple_ids):
            raise ConfigurationError(
                f"FixedSampler holds {len(self.tuple_ids)} tuples but "
                f"{n_obs} were requested")
        available = set(prepared.tuple_ids())
        missing = [t for t in self.tuple_ids if t not in available]
        if missing:
            raise ConfigurationError(
                f"tuple ids {missing} not present in the prepared data")
        return list(self.tuple_ids)


def table_digest(table: Table) -> str:
    """Content hash of a table (column names + normalised cell text)."""
    digest = hashlib.sha256()
    for name in table.column_names:
        digest.update(name.encode())
        digest.update(b"\x00")
        for value in table.column(name).values:
            digest.update(_normalise_cell(value).encode())
            digest.update(b"\x01")
    return digest.hexdigest()


def _cells_row_major(table: Table) -> tuple[list[str], list[str]]:
    """(values, attributes) flattened row-major, cells normalised."""
    names = table.column_names
    columns = [table.column(name).values for name in names]
    values: list[str] = []
    attributes: list[str] = []
    for i in range(table.n_rows):
        for name, column in zip(names, columns):
            values.append(_normalise_cell(column[i]))
            attributes.append(name)
    return values, attributes


# -- neural families ----------------------------------------------------------


class NeuralDetector(Detector):
    """Adapter over :class:`ErrorDetector` for one registered architecture.

    Parameters mirror the wrapped class; ``model_config`` /
    ``training_config`` accept plain dicts (the JSON-serialisable
    registry form) or the dataclasses.
    """

    architecture = ""
    capabilities = frozenset({POINTWISE})

    def __init__(self, n_label_tuples: int = 20,
                 model_config: dict | ModelConfig | None = None,
                 training_config: dict | TrainingConfig | None = None,
                 seed: int = 0):
        if isinstance(model_config, dict):
            model_config = ModelConfig(**model_config)
        if isinstance(training_config, dict):
            training_config = TrainingConfig(**training_config)
        self.n_label_tuples = n_label_tuples
        self.model_config = model_config
        self.training_config = training_config
        self.seed = seed
        self._detector: ErrorDetector | None = None
        self._columns: tuple[str, ...] | None = None

    def fit(self, pair: DatasetPair,
            labeled_rows: list[int] | None = None) -> "NeuralDetector":
        if labeled_rows is not None:
            sampler: Sampler = FixedSampler(labeled_rows)
            n_label = len(labeled_rows)
        else:
            sampler = DiverSet()
            n_label = self.n_label_tuples
        self._detector = ErrorDetector(
            architecture=self.architecture, sampler=sampler,
            n_label_tuples=n_label, model_config=self.model_config,
            training_config=self.training_config, seed=self.seed)
        self._detector.fit(pair)
        self._columns = tuple(pair.dirty.column_names)
        return self

    def _require_fitted(self) -> ErrorDetector:
        if self._detector is None:
            raise NotFittedError(f"{self.name}: fit() has not been called")
        return self._detector

    def score_cells(self, table: Table) -> np.ndarray:
        detector = self._require_fitted()
        if self._columns is not None \
                and tuple(table.column_names) != self._columns:
            raise DataError(
                f"{self.name} was fitted on columns {self._columns}, "
                f"got {tuple(table.column_names)}")
        values, attributes = _cells_row_major(table)
        features = encode_values_for(detector, values, attributes)
        assert detector.trainer is not None
        probabilities = detector.trainer.predict_proba(
            features, deduplicate=detector.deduplicate,
            workers=detector.inference_workers,
            precision=detector.inference_precision)
        return probabilities[:, 1].reshape(table.n_rows, table.n_cols)

    def config(self) -> dict:
        from dataclasses import asdict
        return {
            "n_label_tuples": self.n_label_tuples,
            "model_config": (None if self.model_config is None
                             else asdict(self.model_config)),
            "training_config": (None if self.training_config is None
                                else asdict(self.training_config)),
            "seed": self.seed,
        }

    def _state_digest(self) -> str | None:
        if self._detector is None or self._detector.model is None:
            return None
        digest = hashlib.sha256()
        state = self._detector.model.state_dict()
        for key in sorted(state):
            digest.update(key.encode())
            digest.update(np.ascontiguousarray(state[key]).tobytes())
        return digest.hexdigest()[:16]

    def save(self, path: str | Path) -> None:
        save_detector(self._require_fitted(), path)
        # Re-pack with the adapter-level config (n_label_tuples is not
        # part of the detector archive) so load() rebuilds an adapter
        # whose config() -- and hence fingerprint -- matches exactly.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["adapter_meta"] = np.array(json.dumps(self.config()))
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "NeuralDetector":
        with np.load(path, allow_pickle=False) as archive:
            adapter_config = (json.loads(str(archive["adapter_meta"]))
                              if "adapter_meta" in archive.files else None)
        inner = load_detector(path)
        if inner.architecture != cls.architecture:
            raise DataError(
                f"{path}: archive holds a {inner.architecture!r} model, "
                f"not {cls.architecture!r}")
        if adapter_config is not None:
            adapter = cls(**adapter_config)
        else:  # plain save_detector archive: adapter defaults apply
            adapter = cls(model_config=inner.model_config,
                          training_config=inner.training_config,
                          seed=inner.seed)
        adapter._detector = inner
        assert inner.prepared is not None
        adapter._columns = tuple(inner.prepared.attributes)
        return adapter

    @classmethod
    def example(cls, seed: int = 0) -> "NeuralDetector":
        return cls(n_label_tuples=6, model_config=dict(_EXAMPLE_MODEL),
                   training_config={"epochs": 2}, seed=seed)


@register
class TSBDetector(NeuralDetector):
    """The paper's two-stacked bidirectional value RNN."""

    name = "tsb"
    architecture = "tsb"


@register
class ETSBDetector(NeuralDetector):
    """The enriched three-branch BiRNN (the paper's best model)."""

    name = "etsb"
    architecture = "etsb"


@register
class AttnDetector(NeuralDetector):
    """The pattern-perceptive self-attention encoder."""

    name = "attn"
    architecture = "attn"


# -- Raha ---------------------------------------------------------------------


@register
class RahaAdapter(Detector):
    """Adapter over the configuration-free Raha baseline.

    Transductive: the strategy-verdict clustering is computed for one
    dirty table, so only that table can be scored.  Scores are the hard
    0/1 verdicts of the propagated per-column classifiers.
    """

    name = "raha"
    capabilities = frozenset({TRANSDUCTIVE})

    def __init__(self, n_label_tuples: int = 20, clusters_per_label: int = 2,
                 seed: int = 0):
        self.n_label_tuples = n_label_tuples
        self.clusters_per_label = clusters_per_label
        self.seed = seed
        self._predictions: np.ndarray | None = None
        self._digest: str | None = None
        self._columns: tuple[str, ...] | None = None

    def fit(self, pair: DatasetPair,
            labeled_rows: list[int] | None = None) -> "RahaAdapter":
        rng = np.random.default_rng(self.seed)
        detector = RahaDetector(clusters_per_label=self.clusters_per_label,
                                rng=rng)
        n_labels = (len(labeled_rows) if labeled_rows is not None
                    else self.n_label_tuples)
        detector.analyze(pair.dirty, n_labels=n_labels)
        if labeled_rows is None:
            labeled_rows = detector.sample_tuples(self.n_label_tuples)
        mask = np.array(pair.error_mask())
        predictions = detector.fit_predict(
            labeled_rows, mask[labeled_rows].astype(np.int64))
        self._predictions = predictions.astype(np.float64)
        self._digest = table_digest(pair.dirty)
        self._columns = tuple(pair.dirty.column_names)
        return self

    def score_cells(self, table: Table) -> np.ndarray:
        if self._predictions is None:
            raise NotFittedError("raha: fit() has not been called")
        if table_digest(table) != self._digest:
            raise DataError(
                "raha is transductive: score_cells only accepts the table "
                "it was fitted on")
        return self._predictions.copy()

    def config(self) -> dict:
        return {"n_label_tuples": self.n_label_tuples,
                "clusters_per_label": self.clusters_per_label,
                "seed": self.seed}

    def _state_digest(self) -> str | None:
        if self._predictions is None:
            return None
        digest = hashlib.sha256(self._predictions.tobytes())
        digest.update((self._digest or "").encode())
        return digest.hexdigest()[:16]

    def save(self, path: str | Path) -> None:
        if self._predictions is None:
            raise NotFittedError("raha: fit() has not been called")
        meta = {"config": self.config(), "digest": self._digest,
                "columns": list(self._columns or ())}
        np.savez(path, meta=np.array(json.dumps(meta)),
                 predictions=self._predictions)

    @classmethod
    def load(cls, path: str | Path) -> "RahaAdapter":
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            predictions = archive["predictions"]
        adapter = cls(**meta["config"])
        adapter._predictions = predictions
        adapter._digest = meta["digest"]
        adapter._columns = tuple(meta["columns"])
        return adapter

    @classmethod
    def example(cls, seed: int = 0) -> "RahaAdapter":
        return cls(n_label_tuples=6, seed=seed)


# -- augmentation -------------------------------------------------------------


@register
class AugmentAdapter(Detector):
    """Adapter over the per-attribute augmentation baseline.

    Pointwise (a cell's score depends only on its text and column), but
    ``process_local``: the hashed n-gram features are keyed on Python's
    per-process ``hash()`` salt, so archives only round-trip within the
    writing process.
    """

    name = "augment"
    capabilities = frozenset({POINTWISE, PROCESS_LOCAL})

    def __init__(self, n_label_tuples: int = 20, n_augments: int = 4,
                 n_buckets: int = 256, seed: int = 0):
        self.n_label_tuples = n_label_tuples
        self.n_augments = n_augments
        self.n_buckets = n_buckets
        self.seed = seed
        self._models: dict[str, AugmentationDetector] | None = None
        self._columns: tuple[str, ...] | None = None

    def fit(self, pair: DatasetPair,
            labeled_rows: list[int] | None = None) -> "AugmentAdapter":
        prepared = prepare(pair.dirty, pair.clean)
        rng = np.random.default_rng(self.seed)
        if labeled_rows is None:
            labeled_rows = DiverSet().select(self.n_label_tuples, prepared,
                                             rng)
        train_ids = set(int(t) for t in labeled_rows)
        rows = prepared.df.to_rows()
        models: dict[str, AugmentationDetector] = {}
        for attribute in prepared.attributes:
            train = [r for r in rows
                     if r["attribute"] == attribute and r["id_"] in train_ids]
            model = AugmentationDetector(n_augments=self.n_augments,
                                         n_buckets=self.n_buckets, rng=rng)
            model.fit([r["value_x"] for r in train],
                      [int(r["label"]) for r in train])
            models[attribute] = model
        self._models = models
        self._columns = tuple(pair.dirty.column_names)
        return self

    def score_cells(self, table: Table) -> np.ndarray:
        if self._models is None:
            raise NotFittedError("augment: fit() has not been called")
        if tuple(table.column_names) != self._columns:
            raise DataError(
                f"augment was fitted on columns {self._columns}, "
                f"got {tuple(table.column_names)}")
        scores = np.zeros((table.n_rows, table.n_cols))
        for j, attribute in enumerate(table.column_names):
            texts = [_normalise_cell(v)
                     for v in table.column(attribute).values]
            scores[:, j] = self._models[attribute].predict_proba(texts)
        return scores

    def config(self) -> dict:
        return {"n_label_tuples": self.n_label_tuples,
                "n_augments": self.n_augments,
                "n_buckets": self.n_buckets, "seed": self.seed}

    def _state_digest(self) -> str | None:
        if self._models is None:
            return None
        digest = hashlib.sha256()
        for attribute in sorted(self._models):
            model = self._models[attribute]
            digest.update(attribute.encode())
            classifier = model._classifier
            if classifier is None:
                digest.update(str(getattr(model, "_constant", "")).encode())
            else:
                assert classifier.coefficients is not None
                digest.update(classifier.coefficients.tobytes())
                digest.update(np.float64(classifier.intercept).tobytes())
        return digest.hexdigest()[:16]

    def save(self, path: str | Path) -> None:
        if self._models is None:
            raise NotFittedError("augment: fit() has not been called")
        arrays: dict[str, np.ndarray] = {}
        columns_meta = {}
        for attribute, model in self._models.items():
            classifier = model._classifier
            if classifier is None:
                columns_meta[attribute] = {
                    "constant": int(getattr(model, "_constant", 0))}
            else:
                assert classifier.coefficients is not None
                columns_meta[attribute] = {
                    "intercept": classifier.intercept}
                arrays[f"coef:{attribute}"] = classifier.coefficients
        meta = {"config": self.config(),
                "columns": list(self._columns or ()),
                "models": columns_meta}
        np.savez(path, meta=np.array(json.dumps(meta)), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "AugmentAdapter":
        from repro.baselines.logreg import LogisticRegression
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            coefs = {name[len("coef:"):]: archive[name]
                     for name in archive.files if name.startswith("coef:")}
        adapter = cls(**meta["config"])
        models: dict[str, AugmentationDetector] = {}
        for attribute, column_meta in meta["models"].items():
            model = AugmentationDetector(
                n_augments=meta["config"]["n_augments"],
                n_buckets=meta["config"]["n_buckets"])
            if "constant" in column_meta:
                model._classifier = None
                model._constant = int(column_meta["constant"])
            else:
                classifier = LogisticRegression()
                classifier.coefficients = coefs[attribute]
                classifier.intercept = float(column_meta["intercept"])
                model._classifier = classifier
            models[attribute] = model
        adapter._models = models
        adapter._columns = tuple(meta["columns"])
        return adapter

    @classmethod
    def example(cls, seed: int = 0) -> "AugmentAdapter":
        return cls(n_label_tuples=6, n_augments=2, seed=seed)
