"""The uniform detector protocol every registered family implements.

A :class:`Detector` is the composition unit of the registry
(:mod:`repro.detectors.registry`): anything that can be fitted on a
(dirty, clean) pair under the paper's labelled-tuples protocol and then
score every cell of a table with an error probability.  The contract --
shapes, probability range, determinism, invariances, archive round-trip
-- is enforced for every registered family by the conformance suite
(``tests/detectors/test_conformance.py``); a new family gets the checks
by registering alone.
"""

from __future__ import annotations

import abc
import hashlib
import json

from pathlib import Path

import numpy as np

from repro.datasets.base import DatasetPair
from repro.table import Table

#: A detector whose cell score depends only on the cell's own content
#: and attribute: scores are invariant under row subsetting and
#: permutation (checked bitwise by the conformance suite).
POINTWISE = "pointwise"

#: A detector whose scores are tied to the table it was fitted on
#: (e.g. Raha's strategy-verdict clustering); it can only score that
#: table, and subset/permutation invariance is not required.
TRANSDUCTIVE = "transductive"

#: Archives written by this detector are only readable by the process
#: that wrote them (e.g. features keyed on the per-process ``hash()``
#: salt).  The conformance round-trip still applies in-process.
PROCESS_LOCAL = "process_local"

CAPABILITIES = (POINTWISE, TRANSDUCTIVE, PROCESS_LOCAL)


class Detector(abc.ABC):
    """Base class for registry detectors.

    Subclasses define ``name`` (the registry key), ``capabilities`` (a
    frozenset of the module-level capability strings -- exactly one of
    :data:`POINTWISE` / :data:`TRANSDUCTIVE`), and the abstract methods.
    Construction from keyword arguments must equal construction from
    :meth:`config`, i.e. ``type(d)(**d.config())`` builds an equivalent
    unfitted detector -- that identity is what lets ensemble members be
    rebuilt in worker processes and archives name their contents.
    """

    #: Registry key; set by subclasses.
    name: str = ""

    #: Capability strings; set by subclasses.
    capabilities: frozenset[str] = frozenset()

    # -- fitting ------------------------------------------------------------

    @abc.abstractmethod
    def fit(self, pair: DatasetPair,
            labeled_rows: list[int] | None = None) -> "Detector":
        """Fit under the labelled-tuples protocol.

        ``labeled_rows`` pins the labelled tuple ids (position indices
        into the pair's rows); ``None`` lets the detector run its own
        sampler.  Only those tuples' ground-truth labels may be used.
        Returns ``self``.
        """

    # -- scoring ------------------------------------------------------------

    @abc.abstractmethod
    def score_cells(self, table: Table) -> np.ndarray:
        """Per-cell error probabilities, ``(n_rows, n_attributes)`` in [0, 1].

        Transductive detectors accept only the table they were fitted
        on; pointwise detectors accept any table with the fitted columns.
        """

    def predict_cells(self, table: Table, threshold: float = 0.5) -> np.ndarray:
        """Binary error mask derived from :meth:`score_cells`."""
        return (self.score_cells(table) >= threshold).astype(np.int64)

    # -- identity -----------------------------------------------------------

    @abc.abstractmethod
    def config(self) -> dict:
        """JSON-serialisable constructor kwargs (see the class docstring)."""

    def _state_digest(self) -> str | None:
        """Hexdigest of the fitted state; ``None`` while unfitted."""
        return None

    def fingerprint(self) -> str:
        """Stable identity of family + configuration + fitted state.

        Used to order ensemble members deterministically and to
        segregate prediction-cache keys between detectors.
        """
        payload = {"name": self.name, "config": self.config(),
                   "state": self._state_digest()}
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- persistence --------------------------------------------------------

    @abc.abstractmethod
    def save(self, path: str | Path) -> None:
        """Serialise the fitted detector to ``path`` (no pickle)."""

    @classmethod
    @abc.abstractmethod
    def load(cls, path: str | Path) -> "Detector":
        """Reconstruct a detector saved with :meth:`save`."""

    # -- conformance hook ---------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def example(cls, seed: int = 0) -> "Detector":
        """A small, fast instance for the conformance suite.

        Must be deterministic in ``seed`` and cheap enough to fit on a
        40-row pair in a test.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
