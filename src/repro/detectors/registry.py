"""The pluggable detector registry: ``register`` / ``get`` / ``list_detectors``.

The ``get_errors(detectors=[...])`` idiom: experiment tables, the CLI's
``--detectors`` flag and the ensemble all name detectors by registry key
and build them from keyword configs, so a new family lands by defining a
:class:`~repro.detectors.base.Detector` subclass and registering it --
no bespoke plumbing in the serving or experiment layers, and the
conformance suite picks it up automatically.
"""

from __future__ import annotations

from repro.detectors.base import CAPABILITIES, Detector
from repro.errors import ConfigurationError

_REGISTRY: dict[str, type[Detector]] = {}


def register(cls: type[Detector]) -> type[Detector]:
    """Class decorator adding a detector family to the registry.

    Validates the subclass contract eagerly -- a misdeclared family
    fails at import time, not first use.  Re-registering a name with a
    *different* class is an error; re-running the same decorator (e.g. a
    module reload) is idempotent.
    """
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"{cls.__name__} must define a non-empty string ``name``")
    if not isinstance(cls, type) or not issubclass(cls, Detector):
        raise ConfigurationError(
            f"{name!r} must be a Detector subclass, got {cls!r}")
    unknown = set(cls.capabilities) - set(CAPABILITIES)
    if unknown:
        raise ConfigurationError(
            f"{name!r} declares unknown capabilities {sorted(unknown)}")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"detector name {name!r} is already registered to "
            f"{existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def get(name: str) -> type[Detector]:
    """The detector class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; registered: {list_detectors()}"
        ) from None


def list_detectors() -> tuple[str, ...]:
    """All registered detector names, sorted."""
    return tuple(sorted(_REGISTRY))


def build(name: str, **config) -> Detector:
    """Construct an unfitted detector from its registry name and config."""
    return get(name)(**config)
