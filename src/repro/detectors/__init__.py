"""Pluggable detector registry with calibrated score fusion.

Importing this package registers every built-in family -- the neural
encoders (``tsb``, ``etsb``, ``attn``), the Raha and augmentation
baselines, and the calibrated ``ensemble`` -- under the uniform
:class:`~repro.detectors.base.Detector` protocol::

    from repro.detectors import build, list_detectors

    detector = build("ensemble", members=["etsb", "raha"]).fit(pair)
    scores = detector.score_cells(pair.dirty)    # (rows, attrs) in [0, 1]

Every registered family is exercised by the conformance suite
(``tests/detectors/test_conformance.py``) on both autograd backends.
"""

from repro.detectors.base import (
    CAPABILITIES,
    Detector,
    POINTWISE,
    PROCESS_LOCAL,
    TRANSDUCTIVE,
)
from repro.detectors.calibration import (
    CALIBRATION_METHODS,
    IdentityCalibrator,
    IsotonicCalibrator,
    PlattCalibrator,
    fit_calibrator,
    restore_calibrator,
)
from repro.detectors.registry import build, get, list_detectors, register

# Importing the implementations populates the registry as a side effect.
from repro.detectors.adapters import (  # noqa: E402
    AttnDetector,
    AugmentAdapter,
    ETSBDetector,
    FixedSampler,
    NeuralDetector,
    RahaAdapter,
    TSBDetector,
    table_digest,
)
from repro.detectors.ensemble import EnsembleDetector  # noqa: E402

__all__ = [
    "CAPABILITIES",
    "CALIBRATION_METHODS",
    "Detector",
    "POINTWISE",
    "PROCESS_LOCAL",
    "TRANSDUCTIVE",
    "IdentityCalibrator",
    "IsotonicCalibrator",
    "PlattCalibrator",
    "fit_calibrator",
    "restore_calibrator",
    "build",
    "get",
    "list_detectors",
    "register",
    "AttnDetector",
    "AugmentAdapter",
    "ETSBDetector",
    "EnsembleDetector",
    "FixedSampler",
    "NeuralDetector",
    "RahaAdapter",
    "TSBDetector",
    "table_digest",
]
