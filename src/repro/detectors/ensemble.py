"""Calibrated score fusion over registry detectors.

:class:`EnsembleDetector` runs any set of registered members over the
same labelled-tuples budget, maps each member's scores onto a common
probability scale with a per-member calibrator
(:mod:`repro.detectors.calibration`) fitted by two-fold cross-fitting on
the labelled rows, and fuses by averaging the calibrated scores.  The
cross-fit keeps calibration honest (no member is calibrated on cells it
trained on) while the *final* members are fitted on the full labelled
budget -- so a single-member ensemble degenerates to the bare detector,
byte for byte.

Out-of-fold F1 also arbitrates *whether* fusion helps: if a lone
calibrated or raw member beats the fused mean on the held-out cells, the
ensemble serves that member instead (ties prefer fusion, then
calibration).  Fusion itself is canonicalised by member fingerprint, so
the fused scores are bitwise invariant to the order members were listed.
"""

from __future__ import annotations

import json

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.dataprep import prepare
from repro.datasets.base import DatasetPair
from repro.detectors.base import (
    PROCESS_LOCAL,
    POINTWISE,
    TRANSDUCTIVE,
    Detector,
)
from repro.detectors.calibration import (
    CALIBRATION_METHODS,
    IdentityCalibrator,
    fit_calibrator,
    restore_calibrator,
)
from repro.detectors.registry import build, get, register
from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.metrics import ClassificationReport
from repro.sampling import DiverSet
from repro.table import Table

MemberSpec = tuple[str, dict]


def _normalise_specs(members) -> tuple[MemberSpec, ...]:
    if not members:
        raise ConfigurationError("an ensemble needs at least one member")
    specs: list[MemberSpec] = []
    for entry in members:
        if isinstance(entry, str):
            specs.append((entry, {}))
        else:
            name, config = entry
            specs.append((str(name), dict(config)))
    for name, _ in specs:
        get(name)  # raises on unknown members at construction time
    return tuple(specs)


def _fold_fit_scores(spec: MemberSpec, pair: DatasetPair,
                     fit_rows: list[int]) -> np.ndarray:
    """Fit one member copy on a fold and score the dirty table.

    Module-level so a :class:`ProcessPoolExecutor` (fork context, same
    as the experiment runner's) can pickle it; the copy is rebuilt from
    the spec inside the worker, so nothing fitted crosses the boundary.
    """
    member = build(spec[0], **spec[1])
    member.fit(pair, labeled_rows=fit_rows)
    return member.score_cells(pair.dirty)


def _f1(labels: np.ndarray, scores: np.ndarray) -> float:
    predictions = (scores >= 0.5).astype(np.int64)
    return ClassificationReport.from_predictions(labels, predictions).f1


@register
class EnsembleDetector(Detector):
    """Fuse registered detectors with cross-fit calibrated averaging.

    Parameters
    ----------
    members:
        Member specs: registry names, or ``(name, config_dict)`` pairs.
    calibration:
        One of :data:`~repro.detectors.calibration.CALIBRATION_METHODS`.
    n_label_tuples:
        Labelled budget when ``fit`` picks its own rows (DiverSet).
    n_workers:
        Fan the cross-fit member fits over a fork process pool when
        ``> 1``; ``0``/``1`` runs serially with identical results.
    """

    name = "ensemble"
    capabilities = frozenset({POINTWISE})

    def __init__(self, members=("etsb", "raha"), calibration: str = "auto",
                 n_label_tuples: int = 20, n_workers: int = 0,
                 seed: int = 0):
        if calibration not in CALIBRATION_METHODS:
            raise ConfigurationError(
                f"calibration must be one of {CALIBRATION_METHODS}, "
                f"got {calibration!r}")
        self._specs = _normalise_specs(members)
        self.calibration = calibration
        self.n_label_tuples = n_label_tuples
        self.n_workers = n_workers
        self.seed = seed
        member_caps = [get(name).capabilities for name, _ in self._specs]
        caps = {TRANSDUCTIVE} if any(TRANSDUCTIVE in c for c in member_caps) \
            else {POINTWISE}
        if any(PROCESS_LOCAL in c for c in member_caps):
            caps.add(PROCESS_LOCAL)
        self.capabilities = frozenset(caps)
        self._members: list[Detector] | None = None
        self._calibrators: list = []
        self._mode: tuple | None = None
        self._order: list[int] = []

    # -- fitting ------------------------------------------------------------

    def _cross_fit_scores(self, pair: DatasetPair,
                          folds: tuple[list[int], list[int]]) -> list[np.ndarray]:
        """Per-member full-table score grids, one per (member, fold)."""
        tasks = [(spec, fit_rows) for spec in self._specs for fit_rows in folds]
        if self.n_workers > 1:
            import multiprocessing
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                    max_workers=min(self.n_workers, len(tasks)),
                    mp_context=context) as pool:
                futures = [pool.submit(_fold_fit_scores, spec, pair, rows)
                           for spec, rows in tasks]
                return [f.result() for f in futures]
        return [_fold_fit_scores(spec, pair, rows) for spec, rows in tasks]

    def fit(self, pair: DatasetPair,
            labeled_rows: list[int] | None = None) -> "EnsembleDetector":
        if labeled_rows is None:
            prepared = prepare(pair.dirty, pair.clean)
            rng = np.random.default_rng(self.seed)
            labeled_rows = DiverSet().select(self.n_label_tuples, prepared,
                                             rng)
        labeled_rows = [int(t) for t in labeled_rows]

        if len(self._specs) == 1:
            # Degenerate ensemble: serve the bare member, byte for byte.
            member = build(self._specs[0][0], **self._specs[0][1])
            member.fit(pair, labeled_rows=labeled_rows)
            self._members = [member]
            self._calibrators = [IdentityCalibrator()]
            self._mode = ("identity",)
            self._order = [0]
            return self

        if len(labeled_rows) < 2:
            raise ConfigurationError(
                "cross-fit calibration needs at least 2 labelled tuples, "
                f"got {len(labeled_rows)}")
        folds = (labeled_rows[0::2], labeled_rows[1::2])
        mask = np.array(pair.error_mask())

        grids = self._cross_fit_scores(pair, folds)
        # Out-of-fold cells: fold A's model is judged on fold B's rows.
        eval_rows = np.array(folds[1] + folds[0], dtype=np.int64)
        oof_labels = mask[eval_rows].reshape(-1).astype(np.int64)
        oof_scores = []
        for m in range(len(self._specs)):
            fit_a, fit_b = grids[2 * m], grids[2 * m + 1]
            oof = np.concatenate([fit_a[folds[1]].reshape(-1),
                                  fit_b[folds[0]].reshape(-1)])
            oof_scores.append(oof)

        self._calibrators = [fit_calibrator(s, oof_labels, self.calibration)
                             for s in oof_scores]
        calibrated = [c.transform(s)
                      for c, s in zip(self._calibrators, oof_scores)]
        fused = sum(calibrated) / len(calibrated)

        self._members = []
        for name, config in self._specs:
            member = build(name, **config)
            member.fit(pair, labeled_rows=labeled_rows)
            self._members.append(member)
        fingerprints = [m.fingerprint() for m in self._members]
        self._order = sorted(range(len(self._members)),
                             key=lambda i: fingerprints[i])

        # Candidate arbitration on out-of-fold F1; ties prefer fusion,
        # then the calibrated form of a member, then fingerprint order --
        # every key is invariant to the order members were listed.
        candidates: list[tuple[float, int, str, tuple]] = [
            (_f1(oof_labels, fused), 0, "", ("fused",))]
        for m in range(len(self._specs)):
            candidates.append((_f1(oof_labels, calibrated[m]), 1,
                               fingerprints[m], ("member", m, "calibrated")))
            candidates.append((_f1(oof_labels, oof_scores[m]), 2,
                               fingerprints[m], ("member", m, "raw")))
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        self._mode = candidates[0][3]
        return self

    # -- scoring ------------------------------------------------------------

    def score_cells(self, table: Table) -> np.ndarray:
        if self._members is None or self._mode is None:
            raise NotFittedError("ensemble: fit() has not been called")
        kind = self._mode[0]
        if kind == "identity":
            return self._members[0].score_cells(table)
        if kind == "member":
            _, index, form = self._mode
            scores = self._members[index].score_cells(table)
            if form == "raw":
                return np.clip(scores, 0.0, 1.0)
            return self._calibrators[index].transform(scores)
        # Fused: sum in fingerprint order so the float accumulation is
        # bitwise invariant to the order members were listed.
        total: np.ndarray | None = None
        for i in self._order:
            scores = self._calibrators[i].transform(
                self._members[i].score_cells(table))
            total = scores if total is None else total + scores
        assert total is not None
        return total / len(self._members)

    # -- identity -----------------------------------------------------------

    def config(self) -> dict:
        return {
            "members": [[name, dict(config)] for name, config in self._specs],
            "calibration": self.calibration,
            "n_label_tuples": self.n_label_tuples,
            "n_workers": self.n_workers,
            "seed": self.seed,
        }

    def _state_digest(self) -> str | None:
        if self._members is None:
            return None
        payload = {
            "mode": list(self._mode or ()),
            "members": [m.fingerprint() for m in self._members],
            "calibrators": [c.state() for c in self._calibrators],
        }
        import hashlib
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        if self._members is None or self._mode is None:
            raise NotFittedError("ensemble: fit() has not been called")
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        for i, member in enumerate(self._members):
            member.save(path / f"member_{i}.npz")
        meta = {
            "config": self.config(),
            "mode": list(self._mode),
            "order": list(self._order),
            "calibrators": [c.state() for c in self._calibrators],
        }
        (path / "ensemble.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "EnsembleDetector":
        path = Path(path)
        meta_path = path / "ensemble.json"
        if not meta_path.exists():
            raise DataError(f"{path}: not an ensemble archive")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        ensemble = cls(**{**meta["config"],
                          "members": [tuple(m) for m in meta["config"]["members"]]})
        ensemble._members = []
        for i, (name, config) in enumerate(ensemble._specs):
            loaded = get(name).load(path / f"member_{i}.npz")
            # Rebuild from the spec so config() (and hence the
            # fingerprint) matches the saving instance exactly, then
            # graft the fitted state (underscore attrs by convention).
            member = build(name, **config)
            member.__dict__.update(
                {k: v for k, v in loaded.__dict__.items()
                 if k.startswith("_")})
            ensemble._members.append(member)
        ensemble._calibrators = [restore_calibrator(s)
                                 for s in meta["calibrators"]]
        ensemble._mode = tuple(meta["mode"])
        ensemble._order = [int(i) for i in meta["order"]]
        return ensemble

    @classmethod
    def example(cls, seed: int = 0) -> "EnsembleDetector":
        return cls(members=[("etsb", get("etsb").example(seed).config()),
                            ("raha", get("raha").example(seed).config())],
                   n_label_tuples=6, seed=seed)
