"""Per-detector score calibration for ensemble fusion.

Raw detector scores are not comparable: the BiRNN emits softmax
probabilities, Raha emits hard 0/1 verdicts, the augmentation baseline a
logistic score.  Before fusing, each member's scores are mapped onto a
common probability scale with a calibrator fitted on held-out labelled
cells:

* :class:`IsotonicCalibrator` -- pool-adjacent-violators (PAVA)
  regression with linear interpolation between block centres; the
  non-parametric default when enough distinct scores exist;
* :class:`PlattCalibrator` -- logistic ``sigmoid(a * score + b)`` with
  the slope clamped non-negative, for small or binary score sets;
* :class:`IdentityCalibrator` -- the degenerate-label fallback.

Every calibrator's ``transform`` is monotone non-decreasing and maps
into ``[0, 1]`` -- properties the Hypothesis suite checks directly --
and fitting is deterministic (no RNG anywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

CALIBRATION_METHODS = ("auto", "isotonic", "platt", "identity")


def _validate_pairs(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if scores.shape != labels.shape:
        raise ConfigurationError(
            f"{scores.shape[0]} scores but {labels.shape[0]} labels")
    if scores.size == 0:
        raise ConfigurationError("cannot calibrate on zero cells")
    if labels.min() < 0 or labels.max() > 1:
        raise ConfigurationError("labels must be binary 0/1")
    return scores, labels


@dataclass(frozen=True)
class IdentityCalibrator:
    """Clip-to-[0,1] passthrough (degenerate labels, or no calibration)."""

    method = "identity"

    def transform(self, scores: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(scores, dtype=np.float64), 0.0, 1.0)

    def state(self) -> dict:
        return {"method": self.method}


@dataclass(frozen=True)
class PlattCalibrator:
    """Logistic calibration ``sigmoid(a * score + b)`` with ``a >= 0``.

    Fitted by Newton iterations on the log-loss; the slope is clamped at
    zero so the map can never invert the detector's ranking (the
    monotonicity contract fusion relies on).
    """

    a: float
    b: float
    method = "platt"

    @classmethod
    def fit(cls, scores: np.ndarray, labels: np.ndarray,
            n_iterations: int = 50) -> "PlattCalibrator":
        scores, labels = _validate_pairs(scores, labels)
        # Platt's target smoothing keeps the optimum finite on separable data.
        n_pos = int(labels.sum())
        n_neg = labels.size - n_pos
        target = np.where(labels == 1, (n_pos + 1.0) / (n_pos + 2.0),
                          1.0 / (n_neg + 2.0))
        a, b = 1.0, 0.0
        for _ in range(n_iterations):
            z = np.clip(a * scores + b, -500.0, 500.0)
            p = 1.0 / (1.0 + np.exp(-z))
            g = p - target
            w = np.maximum(p * (1.0 - p), 1e-12)
            grad_a = float((g * scores).sum())
            grad_b = float(g.sum())
            h_aa = float((w * scores * scores).sum()) + 1e-9
            h_ab = float((w * scores).sum())
            h_bb = float(w.sum()) + 1e-9
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            step_a = (h_bb * grad_a - h_ab * grad_b) / det
            step_b = (h_aa * grad_b - h_ab * grad_a) / det
            a, b = a - step_a, b - step_b
            a = max(a, 0.0)
            if abs(step_a) < 1e-10 and abs(step_b) < 1e-10:
                break
        return cls(a=max(a, 0.0), b=b)

    def transform(self, scores: np.ndarray) -> np.ndarray:
        z = np.clip(self.a * np.asarray(scores, dtype=np.float64) + self.b,
                    -500.0, 500.0)
        return 1.0 / (1.0 + np.exp(-z))

    def state(self) -> dict:
        return {"method": self.method, "a": self.a, "b": self.b}


@dataclass(frozen=True)
class IsotonicCalibrator:
    """PAVA isotonic regression, interpolated between block centres.

    ``thresholds`` are the (strictly increasing) block-centre scores and
    ``values`` the corresponding calibrated probabilities
    (non-decreasing); ``transform`` linearly interpolates and clamps to
    the end values outside the fitted range, so the map is monotone
    non-decreasing over the whole real line.
    """

    thresholds: tuple[float, ...]
    values: tuple[float, ...]
    method = "isotonic"

    @classmethod
    def fit(cls, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        scores, labels = _validate_pairs(scores, labels)
        order = np.argsort(scores, kind="stable")
        xs = scores[order]
        ys = labels[order].astype(np.float64)
        # Pool ties first so PAVA blocks start from distinct scores.
        uniq, starts = np.unique(xs, return_index=True)
        bounds = np.append(starts, xs.size)
        centre = uniq
        weight = np.diff(bounds).astype(np.float64)
        mean = np.add.reduceat(ys, starts) / weight
        # Pool adjacent violators: merge blocks while any mean decreases.
        blocks: list[list[float]] = []  # [centre_sum_w, weight, mean]
        for c, w, m in zip(centre, weight, mean):
            blocks.append([c * w, w, m])
            while len(blocks) > 1 and blocks[-2][2] >= blocks[-1][2]:
                cw, w2, m2 = blocks.pop()
                blocks[-1][2] = ((blocks[-1][2] * blocks[-1][1] + m2 * w2)
                                 / (blocks[-1][1] + w2))
                blocks[-1][0] += cw
                blocks[-1][1] += w2
        thresholds = tuple(b[0] / b[1] for b in blocks)
        values = tuple(min(max(b[2], 0.0), 1.0) for b in blocks)
        return cls(thresholds=thresholds, values=values)

    def transform(self, scores: np.ndarray) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        return np.interp(scores, np.asarray(self.thresholds),
                         np.asarray(self.values))

    def state(self) -> dict:
        return {"method": self.method,
                "thresholds": list(self.thresholds),
                "values": list(self.values)}


Calibrator = IdentityCalibrator | PlattCalibrator | IsotonicCalibrator


def fit_calibrator(scores: np.ndarray, labels: np.ndarray,
                   method: str = "auto") -> Calibrator:
    """Fit the requested calibrator on held-out (score, label) pairs.

    ``"auto"`` picks isotonic when the scores carry enough resolution
    (>= 4 distinct values), Platt otherwise (e.g. Raha's binary
    verdicts, where isotonic would reduce to two unsmoothed plateaus).
    Degenerate single-class labels always fall back to the identity.
    """
    if method not in CALIBRATION_METHODS:
        raise ConfigurationError(
            f"method must be one of {CALIBRATION_METHODS}, got {method!r}")
    if method == "identity":
        return IdentityCalibrator()
    scores, labels = _validate_pairs(scores, labels)
    if labels.min() == labels.max():
        return IdentityCalibrator()
    if method == "platt":
        return PlattCalibrator.fit(scores, labels)
    if method == "isotonic" or np.unique(scores).size >= 4:
        return IsotonicCalibrator.fit(scores, labels)
    return PlattCalibrator.fit(scores, labels)


def restore_calibrator(state: dict) -> Calibrator:
    """Rebuild a calibrator from its :meth:`state` dict (archive loads)."""
    method = state.get("method")
    if method == "identity":
        return IdentityCalibrator()
    if method == "platt":
        return PlattCalibrator(a=float(state["a"]), b=float(state["b"]))
    if method == "isotonic":
        return IsotonicCalibrator(thresholds=tuple(state["thresholds"]),
                                  values=tuple(state["values"]))
    raise ConfigurationError(f"unknown calibrator state {state!r}")
