"""Compute-backend selection for the sequence layers.

Two implementations of the recurrent levels (and the classifier head's
loss) coexist:

``"fused"`` (default)
    Whole-sequence numpy kernels from :mod:`repro.nn.kernels`; each level
    is a single autograd node with a hand-derived
    backpropagation-through-time backward.

``"graph"``
    The reference implementation: one autograd node per step per level,
    built from the primitive ops in :mod:`repro.autograd`.  Slower, but
    every gradient comes from the generic engine, which makes it the
    ground truth the fused kernels are tested against.

Both produce bit-for-bit identical forward values (the fused kernels run
the same numpy expressions in the same order), so reproduction results do
not depend on the active backend.  Both are also padding-aware: the time
loop stops at the batch's effective width (the last step that is live for
any row), so trimmed bucketed batches and full-padding batches cost what
their real characters cost, on either backend.

Selection, in order of precedence: :func:`set_backend` /
:func:`use_backend` at runtime, then the ``REPRO_NN_BACKEND`` environment
variable, then the ``"fused"`` default.
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator

from repro.errors import ConfigurationError

#: Recognised backend names.
BACKENDS = ("fused", "graph")

#: Environment variable consulted for the initial backend.
BACKEND_ENV_VAR = "REPRO_NN_BACKEND"

_active: str | None = None


def _resolve(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {name!r}"
        )
    return name


def get_backend() -> str:
    """The active backend name (resolving the environment on first use)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(BACKEND_ENV_VAR) or "fused")
    return _active


def set_backend(name: str) -> None:
    """Select the compute backend for all subsequent sequence ops."""
    global _active
    _active = _resolve(name)


def reset_backend() -> None:
    """Forget any runtime selection; re-read the environment on next use."""
    global _active
    _active = None


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager that temporarily selects a backend."""
    global _active
    previous = _active
    set_backend(name)
    try:
        yield
    finally:
        _active = previous
