"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
experiments are reproducible end-to-end from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """An all-zeros array (used for biases)."""
    return np.zeros(shape)


def uniform(rng: np.random.Generator, shape: tuple[int, ...],
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Uniform initialization (Keras' default for embeddings)."""
    return rng.uniform(low, high, size=shape)


def glorot_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense and input kernels."""
    if len(shape) < 2:
        raise ConfigurationError(f"glorot_uniform needs a >=2-d shape, got {shape}")
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization for recurrent kernels.

    Keeps the spectral norm at 1, which stabilises tanh RNNs against
    vanishing/exploding gradients over the paper's up-to-128-step
    character sequences.
    """
    if len(shape) != 2:
        raise ConfigurationError(f"orthogonal needs a 2-d shape, got {shape}")
    rows, cols = shape
    normal = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(normal)
    q *= np.sign(np.diag(r))  # make the decomposition deterministic in sign
    if rows < cols:
        q = q.T
    return q[:rows, :cols]
