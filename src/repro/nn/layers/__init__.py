"""Layer implementations for :mod:`repro.nn`."""

from repro.nn.layers.container import Sequential
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.normalization import BatchNorm1d
from repro.nn.layers.rnn import BidirectionalRNN, RNNCell, StackedRNN

__all__ = [
    "Sequential",
    "Dense",
    "Dropout",
    "Embedding",
    "BatchNorm1d",
    "BidirectionalRNN",
    "RNNCell",
    "StackedRNN",
]
