"""Batch normalisation (Ioffe & Szegedy), used before the final softmax.

Section 4.3.1: "At the end there is a batch normalization to standardize
the input to the softmax."  Training mode normalises with batch statistics
and updates exponential running averages; eval mode uses the running
averages, so single-sample prediction is well defined.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter


class BatchNorm1d(Module):
    """Normalise features over the batch dimension.

    Parameters
    ----------
    num_features:
        Width of the feature dimension (last axis).
    momentum:
        Weight of the new batch statistics in the running averages.
    epsilon:
        Variance floor for numerical stability.
    """

    def __init__(self, num_features: int, momentum: float = 0.1,
                 epsilon: float = 1e-5):
        super().__init__()
        if num_features < 1:
            raise ConfigurationError(f"num_features must be >= 1, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma = Parameter(np.ones(num_features), name="batchnorm.gamma")
        self.beta = Parameter(np.zeros(num_features), name="batchnorm.beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise ``x`` of shape ``(batch, num_features)``."""
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ConfigurationError(
                f"BatchNorm1d expected (batch, {self.num_features}), got {x.shape}"
            )
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.buffer("running_mean")
                + self.momentum * batch_mean,
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.buffer("running_var")
                + self.momentum * batch_var,
            )
            centered = x - x.mean(axis=0, keepdims=True)
            variance = (centered * centered).mean(axis=0, keepdims=True)
            normalised = centered / (variance + self.epsilon) ** 0.5
        else:
            mean = Tensor(self.buffer("running_mean"))
            std = Tensor(np.sqrt(self.buffer("running_var") + self.epsilon))
            normalised = (x - mean) / std
        return normalised * self.gamma + self.beta
