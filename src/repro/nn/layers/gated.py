"""Gated recurrent cells: LSTM and GRU.

The paper's related-work section positions plain tanh RNNs against LSTM
(Hochreiter & Schmidhuber 1997) and GRU (Chung et al. 2014): "RNNs are
less complex and therefore do need not as much time for training."  These
cells let the ablation benchmarks quantify that trade-off on the error
detection task -- same stacked/bidirectional wrappers, different
recurrence.

Both cells expose the :class:`~repro.nn.layers.rnn.RNNCell` interface
(``step_projected`` + ``initial_state`` for the ``"graph"`` backend,
``run_level`` for the fused whole-sequence kernels) so
:class:`StackedRNN` and :class:`BidirectionalRNN` can run them unchanged
via the ``cell_type`` argument of :func:`make_cell`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, concat, sigmoid, tanh
from repro.errors import ConfigurationError
from repro.nn import kernels
from repro.nn.init import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """Long Short-Term Memory cell (input/forget/cell/output gates).

    The public hidden state is ``h``; the cell state ``c`` is carried
    internally by packing ``[h, c]`` into one state tensor so that the
    stacked/bidirectional wrappers stay state-shape agnostic.

    Parameters
    ----------
    input_dim, units:
        Input and hidden widths.
    rng:
        Random generator (Glorot input kernels, orthogonal recurrent).
    forget_bias:
        Initial forget-gate bias (1.0 helps gradient flow early on).
    """

    #: Width multiplier of the packed state ([h, c]).
    state_multiplier = 2

    #: Fused whole-level kernel (see :meth:`RNNCell.run_level`).
    level_kernel = staticmethod(kernels.lstm_level)

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator,
                 forget_bias: float = 1.0):
        super().__init__()
        if input_dim < 1 or units < 1:
            raise ConfigurationError(
                f"input_dim and units must be >= 1, got {input_dim}, {units}"
            )
        self.input_dim = input_dim
        self.units = units
        # One fused kernel for the four gates: i, f, g, o.
        self.w_x = Parameter(glorot_uniform(rng, (input_dim, 4 * units)),
                             name="lstm.w_x")
        self.w_h = Parameter(
            np.concatenate([orthogonal(rng, (units, units)) for _ in range(4)],
                           axis=1),
            name="lstm.w_h")
        bias = zeros((4 * units,))
        bias[units:2 * units] = forget_bias
        self.b_h = Parameter(bias, name="lstm.b_h")

    def initial_state(self, batch_size: int) -> Tensor:
        """Packed ``[h, c]`` zeros of width ``2 * units``."""
        return Tensor(np.zeros((batch_size, 2 * self.units)))

    def output(self, state: Tensor) -> Tensor:
        """The externally visible hidden state ``h``."""
        return state[:, :self.units]

    def step(self, x_t: Tensor, state: Tensor) -> Tensor:
        """Full step (projects the input internally)."""
        return self.step_projected(x_t @ self.w_x + self.b_h, state)

    def step_projected(self, proj_t: Tensor, state: Tensor) -> Tensor:
        """One LSTM step from a precomputed input projection."""
        units = self.units
        h_prev = state[:, :units]
        c_prev = state[:, units:]
        gates = proj_t + h_prev @ self.w_h
        i = sigmoid(gates[:, :units])
        f = sigmoid(gates[:, units:2 * units])
        g = tanh(gates[:, 2 * units:3 * units])
        o = sigmoid(gates[:, 3 * units:])
        c = f * c_prev + i * g
        h = o * tanh(c)
        return concat([h, c], axis=-1)

    def run_level(self, x: Tensor, mask: np.ndarray | None = None,
                  reverse: bool = False) -> Tensor:
        """Run the whole level as one fused autograd node (h sequence)."""
        return self.level_kernel(x, self.w_x, self.w_h, self.b_h,
                                 mask=mask, reverse=reverse)


class GRUCell(Module):
    """Gated Recurrent Unit cell (update/reset gates).

    State is just ``h`` (no separate cell state), so the packed-state
    multiplier is 1.
    """

    state_multiplier = 1

    #: Fused whole-level kernel (see :meth:`RNNCell.run_level`).
    level_kernel = staticmethod(kernels.gru_level)

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator):
        super().__init__()
        if input_dim < 1 or units < 1:
            raise ConfigurationError(
                f"input_dim and units must be >= 1, got {input_dim}, {units}"
            )
        self.input_dim = input_dim
        self.units = units
        # Fused kernels for z (update), r (reset), n (candidate).
        self.w_x = Parameter(glorot_uniform(rng, (input_dim, 3 * units)),
                             name="gru.w_x")
        self.w_h = Parameter(
            np.concatenate([orthogonal(rng, (units, units)) for _ in range(3)],
                           axis=1),
            name="gru.w_h")
        self.b_h = Parameter(zeros((3 * units,)), name="gru.b_h")

    def initial_state(self, batch_size: int) -> Tensor:
        """All-zeros hidden state."""
        return Tensor(np.zeros((batch_size, self.units)))

    def output(self, state: Tensor) -> Tensor:
        """GRU state is the output."""
        return state

    def step(self, x_t: Tensor, state: Tensor) -> Tensor:
        """Full step (projects the input internally)."""
        return self.step_projected(x_t @ self.w_x + self.b_h, state)

    def step_projected(self, proj_t: Tensor, h_prev: Tensor) -> Tensor:
        """One GRU step from a precomputed input projection."""
        units = self.units
        rec = h_prev @ self.w_h
        z = sigmoid(proj_t[:, :units] + rec[:, :units])
        r = sigmoid(proj_t[:, units:2 * units] + rec[:, units:2 * units])
        n = tanh(proj_t[:, 2 * units:] + r * rec[:, 2 * units:])
        return z * h_prev + (1.0 - z) * n

    def run_level(self, x: Tensor, mask: np.ndarray | None = None,
                  reverse: bool = False) -> Tensor:
        """Run the whole level as one fused autograd node."""
        return self.level_kernel(x, self.w_x, self.w_h, self.b_h,
                                 mask=mask, reverse=reverse)
