"""Recurrent layers: the paper's core building block.

Implements exactly the recurrences of Section 3.2:

.. math::

    z_t^{a1} &= W_x^{a1} x_t + W_h^{a1} h_{t-1}^{a1} + b_h^{a1}   \\
    h_t^{a1} &= \\tanh(z_t^{a1})                                   \\
    z_t^{a2} &= W_x^{a2} h_t^{a1} + W_h^{a2} h_{t-1}^{a2} + b_h^{a2} \\
    h_t^{a2} &= \\tanh(z_t^{a2})

:class:`StackedRNN` chains :class:`RNNCell` levels (two for the paper's
models); :class:`BidirectionalRNN` runs a forward and a backward stack and
concatenates their final hidden states, matching Figure 5.

Padded steps (index 0 from the data-preparation pipeline) are skipped via
a boolean mask: on a padded step the hidden state is carried over
unchanged, so the final state is the state after the last real character.

Each level runs on the backend selected by :mod:`repro.nn.backend`: the
default ``"fused"`` backend computes a whole level as one autograd node
(:mod:`repro.nn.kernels`), while ``"graph"`` builds the reference
step-by-step graph from primitive ops.  Both yield bit-for-bit identical
forward values.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.autograd import Tensor, concat, stack, tanh, where
from repro.errors import ConfigurationError
from repro.nn import kernels
from repro.nn.backend import get_backend
from repro.nn.init import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class RNNCell(Module):
    """A single tanh recurrence level (Eq. 1-2 of the paper).

    Parameters
    ----------
    input_dim:
        Width of the per-step input vector ``x_t``.
    units:
        Width of the hidden state ``h_t``.
    rng:
        Random generator; the input kernel is Glorot-initialised, the
        recurrent kernel orthogonal.
    """

    #: Width multiplier of the state tensor (plain RNN state is just h).
    state_multiplier = 1

    #: Fused whole-level kernel (see :meth:`run_level`).
    level_kernel = staticmethod(kernels.rnn_level)

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator):
        super().__init__()
        if input_dim < 1 or units < 1:
            raise ConfigurationError(
                f"input_dim and units must be >= 1, got {input_dim}, {units}"
            )
        self.input_dim = input_dim
        self.units = units
        self.w_x = Parameter(glorot_uniform(rng, (input_dim, units)), name="rnn.w_x")
        self.w_h = Parameter(orthogonal(rng, (units, units)), name="rnn.w_h")
        self.b_h = Parameter(zeros((units,)), name="rnn.b_h")

    def step(self, x_t: Tensor, h_prev: Tensor) -> Tensor:
        """One recurrence step: ``tanh(x_t W_x + h_prev W_h + b_h)``."""
        return tanh(x_t @ self.w_x + h_prev @ self.w_h + self.b_h)

    def step_projected(self, proj_t: Tensor, h_prev: Tensor) -> Tensor:
        """Recurrence step with the input projection precomputed.

        ``proj_t`` must equal ``x_t W_x + b_h``; batching that projection
        over all time steps at once is much cheaper than a per-step
        matmul.
        """
        return tanh(proj_t + h_prev @ self.w_h)

    def run_level(self, x: Tensor, mask: np.ndarray | None = None,
                  reverse: bool = False) -> Tensor:
        """Run the whole level as one fused autograd node.

        Returns the per-step output sequence ``(batch, time, units)``
        ordered by the original time axis (the externally visible output,
        i.e. ``h`` for every cell family).
        """
        return self.level_kernel(x, self.w_x, self.w_h, self.b_h,
                                 mask=mask, reverse=reverse)

    def initial_state(self, batch_size: int) -> Tensor:
        """The all-zeros initial hidden state."""
        return Tensor(np.zeros((batch_size, self.units)))

    def output(self, state: Tensor) -> Tensor:
        """The externally visible output (the state itself for plain RNNs)."""
        return state


#: Cell families usable in the stacked/bidirectional wrappers.
CELL_TYPES = ("rnn", "lstm", "gru")


def make_cell(cell_type: str, input_dim: int, units: int,
              rng: np.random.Generator) -> Module:
    """Instantiate a recurrence cell by family name.

    ``"rnn"`` is the paper's tanh recurrence; ``"lstm"`` and ``"gru"``
    enable the complexity comparison of the related-work section.
    """
    if cell_type == "rnn":
        return RNNCell(input_dim, units, rng)
    if cell_type == "lstm":
        from repro.nn.layers.gated import LSTMCell
        return LSTMCell(input_dim, units, rng)
    if cell_type == "gru":
        from repro.nn.layers.gated import GRUCell
        return GRUCell(input_dim, units, rng)
    raise ConfigurationError(
        f"cell_type must be one of {CELL_TYPES}, got {cell_type!r}"
    )


class StackedRNN(Module):
    """A stack of :class:`RNNCell` levels run over a time dimension.

    With ``num_layers=2`` this is the paper's "two-stacked" RNN: level a2
    receives level a1's hidden sequence as its input (Eq. 3-4).

    Parameters
    ----------
    input_dim:
        Width of each input step.
    units:
        Hidden width of every level.
    rng:
        Random generator for the cells.
    num_layers:
        Stack depth (the paper uses 2).
    reverse:
        Process the sequence from last step to first (the backward
        direction of a bidirectional RNN).
    cell_type:
        ``"rnn"`` (the paper), ``"lstm"`` or ``"gru"``.
    """

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator,
                 num_layers: int = 2, reverse: bool = False,
                 cell_type: str = "rnn"):
        super().__init__()
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        self.input_dim = input_dim
        self.units = units
        self.num_layers = num_layers
        self.reverse = reverse
        self.cell_type = cell_type
        self.cells = [
            make_cell(cell_type, input_dim if level == 0 else units, units, rng)
            for level in range(num_layers)
        ]

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Run the stack over ``x`` and return the top level's final state.

        Parameters
        ----------
        x:
            Input of shape ``(batch, time, input_dim)``.
        mask:
            Optional boolean array ``(batch, time)``; ``False`` marks
            padding, on which every level carries its state unchanged.

        Returns
        -------
        Tensor
            Final hidden state of the top level, ``(batch, units)``.
        """
        final, _ = self.run(x, mask=mask, collect_outputs=False)
        return final

    def run(self, x: Tensor, mask: np.ndarray | None = None,
            collect_outputs: bool = True) -> tuple[Tensor, list[Tensor]]:
        """Run the stack; return ``(final_state, per_step_top_states)``.

        ``per_step_top_states`` is ordered by the original time axis even
        when ``reverse`` is set, so callers can align forward and backward
        sequences step by step.  Pass ``collect_outputs=False`` when only
        the final state is needed (the common path used by
        :meth:`forward`): the per-step list is skipped and an empty list
        is returned in its place.
        """
        if x.ndim != 3:
            raise ConfigurationError(f"StackedRNN expects (batch, time, dim), got {x.shape}")
        batch_size, n_steps, input_dim = x.shape
        if input_dim != self.input_dim:
            raise ConfigurationError(
                f"StackedRNN expected input dim {self.input_dim}, got {input_dim}"
            )
        if mask is not None and mask.shape != (batch_size, n_steps):
            raise ConfigurationError(
                f"mask shape {mask.shape} does not match input {(batch_size, n_steps)}"
            )
        if get_backend() == "fused":
            return self._run_fused(x, mask, collect_outputs)
        return self._run_graph(x, mask, collect_outputs)

    def _run_fused(self, x: Tensor, mask: np.ndarray | None,
                   collect_outputs: bool) -> tuple[Tensor, list[Tensor]]:
        """One autograd node per level (see :mod:`repro.nn.kernels`)."""
        n_steps = x.shape[1]
        sequence = x
        for cell in self.cells:
            sequence = cell.run_level(sequence, mask=mask, reverse=self.reverse)
        final = sequence[:, 0 if self.reverse else n_steps - 1, :]
        outputs = ([sequence[:, t, :] for t in range(n_steps)]
                   if collect_outputs else [])
        return final, outputs

    def _run_graph(self, x: Tensor, mask: np.ndarray | None,
                   collect_outputs: bool) -> tuple[Tensor, list[Tensor]]:
        """Reference implementation: one graph node per step per level."""
        batch_size, n_steps, _ = x.shape
        # Pre-classify every step once: fully padded steps are skipped,
        # fully live steps avoid the carry-over select.  The trailing
        # block of steps that is padding for *every* row (right-padded
        # batches whose longest value is short) is trimmed off wholesale:
        # each level loops only over the effective width, and the tail
        # states are reconstructed analytically (carried final state
        # forward, untouched initial state in reverse) -- the same
        # contract as the fused kernels' effective-length handling.
        if mask is None:
            any_live = [True] * n_steps
            all_live = [True] * n_steps
            width = n_steps
        else:
            any_live = mask.any(axis=0).tolist()
            all_live = mask.all(axis=0).tolist()
            width = n_steps
            while width > 1 and not any_live[width - 1]:
                width -= 1
        time_order = (range(width - 1, -1, -1) if self.reverse
                      else range(width))

        sequence = x if width == n_steps else x[:, :width, :]
        states: list[Tensor | None] = []
        initial = None
        # Per-level forward timers behind the REPRO_TELEMETRY switch (the
        # graph backward runs through the generic engine, so its cost is
        # recorded at whole-batch granularity by the training loop's
        # train.backward_seconds timer instead).
        tele = telemetry.enabled()
        for level, cell in enumerate(self.cells):
            level_started = time.perf_counter() if tele else 0.0
            # Batch the input projection over all time steps: one big
            # matmul instead of one per step.  Width-1 sequences use a
            # flat 2-d matmul: the batched (batch, 1, in) form runs one
            # BLAS GEMV per row, whose bits can differ from the m >= 2
            # GEMM path, and the fused kernels do the same (see
            # kernels._projection) so the backends stay bit-identical.
            if width == 1:
                projected = sequence[:, 0, :] @ cell.w_x + cell.b_h
            else:
                projected = sequence @ cell.w_x + cell.b_h
            state = initial = cell.initial_state(batch_size)
            states = [None] * width
            for t in time_order:
                if not any_live[t]:
                    states[t] = state
                    continue
                proj_t = projected if width == 1 else projected[:, t, :]
                new_state = cell.step_projected(proj_t, state)
                if not all_live[t]:
                    new_state = where(mask[:, t:t + 1], new_state, state)
                state = new_state
                states[t] = state
            if level + 1 < self.num_layers:
                # The externally visible output is cell.output(state): for
                # LSTM that strips the internal cell state from the packing.
                sequence = stack([cell.output(s) for s in states], axis=1)
            if tele:
                telemetry.get_registry().timer(
                    f"graph.{self.cell_type}.level{level}.forward").observe(
                        time.perf_counter() - level_started)
        top = self.cells[-1]
        final_output = top.output(state)
        outputs: list[Tensor] = []
        if collect_outputs:
            outputs = [top.output(s) for s in states]
            if width < n_steps:
                # Dead-tail steps carry the final state (forward) or never
                # leave the initial state (reverse), exactly as the
                # full-width loop would produce.
                tail = (top.output(initial) if self.reverse else final_output)
                outputs.extend([tail] * (n_steps - width))
        return final_output, outputs


class BidirectionalRNN(Module):
    """Forward and backward :class:`StackedRNN` with concatenated outputs.

    Matches the bidirectional architecture of Figure 5: the output is
    ``concat(final_forward, final_backward)`` of width ``2 * units``.
    """

    def __init__(self, input_dim: int, units: int, rng: np.random.Generator,
                 num_layers: int = 2, cell_type: str = "rnn"):
        super().__init__()
        self.units = units
        self.forward_rnn = StackedRNN(input_dim, units, rng,
                                      num_layers=num_layers, reverse=False,
                                      cell_type=cell_type)
        self.backward_rnn = StackedRNN(input_dim, units, rng,
                                       num_layers=num_layers, reverse=True,
                                       cell_type=cell_type)

    @property
    def output_dim(self) -> int:
        """Width of the concatenated output (``2 * units``)."""
        return 2 * self.units

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Return ``(batch, 2 * units)``: forward ++ backward final states.

        With a padding mask, the forward direction's final state is the
        state after the last real character, and the backward direction's
        final state is the state after (reverse-reading) the first real
        character -- the same semantics as a masked Keras Bidirectional.
        """
        forward_final = self.forward_rnn(x, mask=mask)
        backward_final = self.backward_rnn(x, mask=mask)
        return concat([forward_final, backward_final], axis=-1)
