"""Sequential container: chains layers whose forward takes one tensor."""

from __future__ import annotations

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module


class Sequential(Module):
    """Apply child modules in order.

    Parameters
    ----------
    layers:
        Modules applied left to right; each must accept the previous
        module's output as its sole argument.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        """Feed ``x`` through every layer in order."""
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
