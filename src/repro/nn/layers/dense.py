"""Fully connected layer with optional activation."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.autograd import Tensor, relu, sigmoid, softmax, tanh
from repro.errors import ConfigurationError
from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "linear": lambda x: x,
    "relu": relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "softmax": softmax,
}


class Dense(Module):
    """``y = activation(x @ W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Input / output width.
    rng:
        Random generator for Glorot initialization.
    activation:
        One of ``linear``, ``relu``, ``tanh``, ``sigmoid``, ``softmax``.
    use_bias:
        Include the additive bias term.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, activation: str = "linear",
                 use_bias: bool = True):
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; available: {sorted(_ACTIVATIONS)}"
            )
        if in_features < 1 or out_features < 1:
            raise ConfigurationError(
                f"feature counts must be >= 1, got {in_features}, {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.activation_name = activation
        self._activation = _ACTIVATIONS[activation]
        self.kernel = Parameter(glorot_uniform(rng, (in_features, out_features)),
                                name="dense.kernel")
        self.bias = Parameter(zeros((out_features,)), name="dense.bias") if use_bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map and activation to the last dimension of x."""
        if x.shape[-1] != self.in_features:
            raise ConfigurationError(
                f"Dense expected last dim {self.in_features}, got input shape {x.shape}"
            )
        out = x @ self.kernel
        if self.bias is not None:
            out = out + self.bias
        return self._activation(out)
