"""Inverted dropout regularisation.

Not part of the paper's published architectures, but provided for the
ablation benchmarks and as a standard tool for users extending the models.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module


class Dropout(Module):
    """Randomly zero a fraction of activations during training.

    Uses inverted scaling so that eval mode is the identity.

    Parameters
    ----------
    rate:
        Fraction of activations to drop, in ``[0, 1)``.
    rng:
        Random generator for the drop masks.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        """Apply dropout in training mode; identity in eval mode."""
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
