"""Trainable embedding layer (Section 3.1 of the paper).

Index 0 is reserved by the data-preparation pipeline as the padding
end-indicator; with ``mask_zero=True`` the layer reports a padding mask the
RNN uses to ignore padded steps when producing its final state.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, embedding_lookup
from repro.errors import ConfigurationError
from repro.nn.init import uniform
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Maps integer indices to dense vectors.

    Parameters
    ----------
    vocab_size:
        Number of rows in the embedding matrix (dictionary size + 1 for
        the padding index 0).
    embed_dim:
        Dimensionality of the embedding space.
    rng:
        Random generator for initialization.
    mask_zero:
        When ``True``, :meth:`padding_mask` marks index-0 positions.
    """

    def __init__(self, vocab_size: int, embed_dim: int,
                 rng: np.random.Generator, mask_zero: bool = True):
        super().__init__()
        if vocab_size < 1 or embed_dim < 1:
            raise ConfigurationError(
                f"vocab_size and embed_dim must be >= 1, got {vocab_size}, {embed_dim}"
            )
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.mask_zero = mask_zero
        self.weights = Parameter(uniform(rng, (vocab_size, embed_dim)),
                                 name="embedding.weights")

    def forward(self, indices: np.ndarray) -> Tensor:
        """Gather embeddings; output shape ``indices.shape + (embed_dim,)``."""
        return embedding_lookup(self.weights, np.asarray(indices, dtype=np.int64))

    def padding_mask(self, indices: np.ndarray) -> np.ndarray | None:
        """Boolean mask of valid (non-padding) positions, or None."""
        if not self.mask_zero:
            return None
        return np.asarray(indices) != 0
