"""Pattern-perceptive self-attention kernels (the ``"attn"`` family).

The PAT line of work scores a cell by letting every character position
attend to every other, with the raw character embedding *enriched* by a
character-pattern class (digit / lower / upper / space / punctuation)
and a learned position embedding -- format errors are pattern-visible
even when the exact characters are plausible.

Two autograd :class:`~repro.autograd.Function` kernels implement the
encoder on the fused backend, and :func:`pattern_embed` /
:func:`attention_pool` dispatch between them and a per-group graph
composition built from the existing primitive ops.  Both paths perform
the *same* numpy expressions in the same order, so forwards are
bit-for-bit identical -- the repo-wide backend contract.

Bit-stability of the attention reduction deserves a note: softmax and
the context average reduce over the *time* axis, whose padded width
varies with chunk trimming.  The kernels therefore group rows by their
true (non-padding) length and slice each group to exactly that length
before any reduction -- a row's output depends only on its own
characters, never on how it was batched or padded, which is the
invariant the dedup inference engine's bit-for-bit guarantee rests on.
Single-row groups are duplicate-padded (and the copy discarded) for the
same BLAS reason as :func:`repro.inference.engine.pad_single_row`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, concat, embedding_lookup, softmax
from repro.autograd.function import Function
from repro.errors import ShapeError
from repro.nn.backend import get_backend
from repro.nn.kernels import _instrumented

__all__ = [
    "N_PATTERN_CLASSES",
    "pattern_table",
    "effective_lengths",
    "PatternEmbedFunction",
    "AttentionPoolFunction",
    "pattern_embed",
    "attention_pool",
]

#: Character-pattern classes: 0 is reserved for the padding index.
N_PATTERN_CLASSES = 7

_PATTERN_DIGIT = 1
_PATTERN_LOWER = 2
_PATTERN_UPPER = 3
_PATTERN_SPACE = 4
_PATTERN_PUNCT = 5
_PATTERN_OTHER = 6

_PUNCTUATION = set("!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~")


def _pattern_class(char: str) -> int:
    if char.isdigit():
        return _PATTERN_DIGIT
    if char.isalpha():
        return _PATTERN_LOWER if char.islower() else _PATTERN_UPPER
    if char.isspace():
        return _PATTERN_SPACE
    if char in _PUNCTUATION:
        return _PATTERN_PUNCT
    return _PATTERN_OTHER


def pattern_table(char_index) -> np.ndarray:
    """Per-character-index pattern class (index 0, padding, maps to 0).

    ``char_index`` is a :class:`~repro.dataprep.dictionaries.CharDictionary`;
    the table is rebuilt identically from a restored archive's character
    string, so the pattern branch round-trips with the dictionaries.
    """
    table = np.zeros(char_index.vocab_size, dtype=np.int64)
    for i in range(1, char_index.n_chars + 1):
        table[i] = _pattern_class(char_index.char_of(i))
    return table


def effective_lengths(values: np.ndarray) -> np.ndarray:
    """True per-row sequence lengths (non-padding count, at least 1).

    All-padding rows keep length 1 so they still attend over one
    (padding-embedded) position, mirroring the RNN models' all-pad mask
    fix.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ShapeError(f"values must be (batch, time), got {values.shape}")
    return np.maximum(np.count_nonzero(values, axis=1), 1).astype(np.int64)


def _length_groups(lengths: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Deterministic (ascending length, ascending row index) grouping."""
    groups = []
    for length in np.unique(lengths):
        groups.append((int(length), np.flatnonzero(lengths == length)))
    return groups


@_instrumented
class PatternEmbedFunction(Function):
    """Fused character + pattern + position embedding sum.

    ``forward(char_w, pat_w, pos_w, values, pattern_ids)`` returns
    ``char_w[values] + pat_w[pattern_ids] + pos_w[positions]`` in one
    node; backward scatters into the three tables with the same sorted
    segment-sum used by :func:`repro.autograd.embedding_lookup`.
    """

    @staticmethod
    def forward(ctx, char_w, pat_w, pos_w, values, pattern_ids):
        values = np.asarray(values, dtype=np.int64)
        pattern_ids = np.asarray(pattern_ids, dtype=np.int64)
        n_steps = values.shape[1]
        if n_steps > pos_w.shape[0]:
            raise ShapeError(
                f"sequence width {n_steps} exceeds the position table "
                f"({pos_w.shape[0]} rows)")
        positions = np.broadcast_to(np.arange(n_steps, dtype=np.int64),
                                    values.shape)
        # Same association order as the graph path's two additions.
        out = (char_w[values] + pat_w[pattern_ids]) + pos_w[positions]
        ctx.values = values
        ctx.pattern_ids = pattern_ids
        ctx.shapes = (char_w.shape, pat_w.shape, pos_w.shape)
        return out

    @staticmethod
    def backward(ctx, grad):
        char_shape, pat_shape, pos_shape = ctx.shapes
        n_rows, n_steps = ctx.values.shape
        flat = grad.reshape(-1, grad.shape[-1])
        dchar = _scatter_rows(flat, ctx.values.reshape(-1), char_shape)
        dpat = _scatter_rows(flat, ctx.pattern_ids.reshape(-1), pat_shape)
        dpos = np.zeros(pos_shape)
        dpos[:n_steps] = grad.sum(axis=0)
        return dchar, dpat, dpos


def _scatter_rows(flat_grad: np.ndarray, flat_idx: np.ndarray,
                  shape: tuple[int, ...]) -> np.ndarray:
    """Segment-sum scatter of per-row gradients into an embedding table."""
    out = np.zeros(shape)
    if not flat_idx.size:
        return out
    order = np.argsort(flat_idx, kind="stable")
    sorted_idx = flat_idx[order]
    sorted_grad = flat_grad[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_idx)) + 1))
    out[sorted_idx[starts]] += np.add.reduceat(sorted_grad, starts, axis=0)
    return out


@_instrumented
class AttentionPoolFunction(Function):
    """Fused length-grouped softmax self-attention with mean pooling.

    ``forward(x, wq, wk, wv, lengths, scale)`` takes the embedded
    sequence ``x (batch, time, dim)``, three projection matrices
    ``(dim, attn_dim)`` and the true per-row ``lengths``; every row
    attends over exactly its own positions (see the module docstring)
    and the attended context is averaged into one ``(batch, attn_dim)``
    vector per row.
    """

    @staticmethod
    def forward(ctx, x, wq, wk, wv, lengths, scale):
        if x.ndim != 3:
            raise ShapeError(f"attention expects (batch, time, dim), got {x.shape}")
        lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
        if lengths.shape[0] != x.shape[0]:
            raise ShapeError(
                f"lengths cover {lengths.shape[0]} rows, batch has {x.shape[0]}")
        if lengths.min() < 1 or lengths.max() > x.shape[1]:
            raise ShapeError(
                f"lengths must lie in [1, {x.shape[1]}], got "
                f"[{lengths.min()}, {lengths.max()}]")
        out = np.zeros((x.shape[0], wv.shape[1]))
        saved = []
        for length, idx in _length_groups(lengths):
            e = x[idx][:, :length]
            duplicated = e.shape[0] == 1
            if duplicated:
                e = np.concatenate([e, e], axis=0)
            q = (e @ wq) * scale
            k = e @ wk
            v = e @ wv
            scores = q @ np.swapaxes(k, 1, 2)
            shifted = scores - scores.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            attn = exp / exp.sum(axis=-1, keepdims=True)
            context = attn @ v
            pooled = context.sum(axis=1) / float(length)
            out[idx] = pooled[:1] if duplicated else pooled
            saved.append((length, idx, duplicated, e, q, k, v, attn))
        ctx.saved = saved
        ctx.x_shape = x.shape
        ctx.w_shapes = (wq.shape, wk.shape, wv.shape)
        ctx.wq, ctx.wk, ctx.wv = wq, wk, wv
        ctx.scale = scale
        return out

    @staticmethod
    def backward(ctx, grad):
        wq, wk, wv = ctx.wq, ctx.wk, ctx.wv
        dx = np.zeros(ctx.x_shape)
        dwq = np.zeros(ctx.w_shapes[0])
        dwk = np.zeros(ctx.w_shapes[1])
        dwv = np.zeros(ctx.w_shapes[2])
        for length, idx, duplicated, e, q, k, v, attn in ctx.saved:
            g = grad[idx]
            if duplicated:
                g = np.concatenate([g, np.zeros_like(g)], axis=0)
            # Mean pool: every position shares the pooled gradient / length.
            dcontext = np.broadcast_to(
                g[:, None, :] / float(length),
                (g.shape[0], length, g.shape[1])).copy()
            dattn = dcontext @ np.swapaxes(v, 1, 2)
            dv = np.swapaxes(attn, 1, 2) @ dcontext
            dot = (dattn * attn).sum(axis=-1, keepdims=True)
            dscores = attn * (dattn - dot)
            dq_scaled = dscores @ k
            dk = np.swapaxes(dscores, 1, 2) @ q
            dq = dq_scaled * ctx.scale
            de = dq @ wq.T + dk @ wk.T + dv @ wv.T
            dwq += np.einsum("gld,gla->da", e, dq)
            dwk += np.einsum("gld,gla->da", e, dk)
            dwv += np.einsum("gld,gla->da", e, dv)
            if duplicated:
                de = de[:1]
            dx[idx, :length] += de
        return dx, dwq, dwk, dwv


def pattern_embed(char_weights: Tensor, pattern_weights: Tensor,
                  position_weights: Tensor, values: np.ndarray,
                  pattern_ids: np.ndarray) -> Tensor:
    """Char + pattern + position embedding, dispatching on the backend."""
    if get_backend() == "fused":
        return PatternEmbedFunction.apply(char_weights, pattern_weights,
                                          position_weights, values,
                                          pattern_ids)
    values = np.asarray(values, dtype=np.int64)
    positions = np.broadcast_to(
        np.arange(values.shape[1], dtype=np.int64), values.shape)
    return (embedding_lookup(char_weights, values)
            + embedding_lookup(pattern_weights,
                               np.asarray(pattern_ids, dtype=np.int64))
            + embedding_lookup(position_weights, positions))


def attention_pool(x: Tensor, wq: Tensor, wk: Tensor, wv: Tensor,
                   lengths: np.ndarray, scale: float) -> Tensor:
    """Length-grouped attention pooling, dispatching on the backend.

    The graph path composes the identical computation from primitive
    ops, one small subgraph per length group, and reassembles rows with
    a concat + inverse-permutation gather; forwards match the fused
    kernel bit for bit.
    """
    if get_backend() == "fused":
        return AttentionPoolFunction.apply(x, wq, wk, wv, lengths, scale)
    lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
    pooled_groups = []
    group_rows = []
    for length, idx in _length_groups(lengths):
        e = x[idx][:, :length]
        duplicated = e.shape[0] == 1
        if duplicated:
            e = concat([e, e], axis=0)
        q = (e @ wq) * scale
        k = e @ wk
        v = e @ wv
        scores = q @ k.transpose(0, 2, 1)
        attn = softmax(scores, axis=-1)
        context = attn @ v
        pooled = context.mean(axis=1)
        if duplicated:
            pooled = pooled[0:1]
        pooled_groups.append(pooled)
        group_rows.append(idx)
    stacked = (pooled_groups[0] if len(pooled_groups) == 1
               else concat(pooled_groups, axis=0))
    order = np.concatenate(group_rows)
    inverse = np.argsort(order, kind="stable")
    return stacked[inverse]
