"""Module and Parameter: the building blocks of the layer library.

A :class:`Module` owns :class:`Parameter` tensors and child modules, found
automatically through attribute assignment.  ``state_dict`` /
``load_state_dict`` snapshot and restore all parameters and persistent
buffers; the training loop uses them for the paper's
restore-best-train-loss checkpointing.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data: Any, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and child :class:`Module` instances as
    attributes; discovery is automatic.
    """

    def __init__(self) -> None:
        self._training = True
        self._buffers: dict[str, np.ndarray] = {}
        self._weights_version = 0

    # -- weight versioning ----------------------------------------------------

    @property
    def weights_version(self) -> int:
        """Monotonic counter identifying the current weight values.

        Bumped on every mutation of the parameters: the training loop
        bumps it after each optimizer step, and :meth:`load_state_dict`
        (hence checkpoint restores and detector loading) bumps it
        automatically.  Prediction caches key their entries by it, so a
        stale entry can never be served after the weights move.
        """
        return getattr(self, "_weights_version", 0)

    def mark_weights_updated(self) -> None:
        """Record that the parameters changed (invalidates caches)."""
        self._weights_version = self.weights_version + 1

    # -- forward ------------------------------------------------------------

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        """Compute the layer's output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    # -- traversal -----------------------------------------------------------

    def named_children(self) -> Iterator[tuple[str, Module]]:
        """Immediate child modules as ``(attribute_name, module)``."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """All parameters of this module and its descendants."""
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{name}", value
        for child_name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters as a flat list."""
        return [p for _, p in self.named_parameters()]

    def n_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    # -- buffers (non-trainable persistent state, e.g. batch-norm stats) -------

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register persistent non-trainable state included in state dicts."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)

    def buffer(self, name: str) -> np.ndarray:
        """Fetch a registered buffer."""
        try:
            return self._buffers[name]
        except KeyError:
            raise ConfigurationError(
                f"{type(self).__name__} has no buffer {name!r}"
            ) from None

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents."""
        if name not in self._buffers:
            raise ConfigurationError(f"{type(self).__name__} has no buffer {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float64)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """All buffers of this module and its descendants."""
        for name, value in self._buffers.items():
            yield f"{prefix}{name}", value
        for child_name, child in self.named_children():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # -- train / eval mode --------------------------------------------------------

    @property
    def training(self) -> bool:
        """Whether the module is in training mode."""
        return self._training

    def train(self) -> Module:
        """Switch this module and all descendants to training mode."""
        self._training = True
        for _, child in self.named_children():
            child.train()
        return self

    def eval(self) -> Module:
        """Switch this module and all descendants to inference mode."""
        self._training = False
        for _, child in self.named_children():
            child.eval()
        return self

    # -- checkpointing --------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output.

        Raises
        ------
        ConfigurationError
            On missing/unexpected keys or shape mismatches.
        """
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        expected = set(params) | {f"buffer:{n}" for n in buffers}
        if set(state) != expected:
            missing = expected - set(state)
            unexpected = set(state) - expected
            raise ConfigurationError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        # Validate every shape before copying anything: a mismatch must
        # never leave the model with partially overwritten weights.
        for name, param in params.items():
            value = state[name]
            if value.shape != param.data.shape:
                raise ConfigurationError(
                    f"shape mismatch for {name!r}: "
                    f"{value.shape} vs {param.data.shape}"
                )
        for name, param in params.items():
            param.data = state[name].copy()
        self._load_buffers(state)
        self.mark_weights_updated()

    def _load_buffers(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        for name in list(self._buffers):
            key = f"buffer:{prefix}{name}"
            if key in state:
                self._buffers[name] = state[key].copy()
        for child_name, child in self.named_children():
            child._load_buffers(state, prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def __repr__(self) -> str:
        children = ", ".join(name for name, _ in self.named_children())
        return f"{type(self).__name__}({children})" if children else f"{type(self).__name__}()"
