"""The training loop.

Works with multi-input models: a training example is a dict of named
feature arrays (the paper's models take up to three inputs -- character
indices, attribute index and normalised length) plus integer labels.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.nn.callbacks import Callback, History
from repro.nn.module import Module
from repro.nn.optim import Optimizer, clip_gradients

Features = dict[str, np.ndarray]


@dataclass
class Batch:
    """One mini-batch of features and labels."""

    features: Features
    labels: np.ndarray

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        return int(self.labels.shape[0])


def _validate_features(features: Mapping[str, np.ndarray]) -> int:
    """Check the feature dict is non-empty and row-aligned; return the row count."""
    if not features:
        raise ConfigurationError("at least one feature array is required")
    lengths = {name: int(arr.shape[0]) for name, arr in features.items()}
    if len(set(lengths.values())) > 1:
        raise ConfigurationError(
            f"feature arrays disagree on the number of rows: {lengths}"
        )
    n = next(iter(lengths.values()))
    if n == 0:
        raise ConfigurationError("feature set is empty")
    return n


def _validate(features: Mapping[str, np.ndarray], labels: np.ndarray) -> int:
    if not features:
        raise ConfigurationError("training requires at least one feature array")
    n = labels.shape[0]
    for name, arr in features.items():
        if arr.shape[0] != n:
            raise ConfigurationError(
                f"feature {name!r} has {arr.shape[0]} rows but labels have {n}"
            )
    if n == 0:
        raise ConfigurationError("training set is empty")
    return n


def iterate_batches(features: Mapping[str, np.ndarray], labels: np.ndarray,
                    batch_size: int, rng: np.random.Generator | None = None):
    """Yield :class:`Batch` objects, optionally in shuffled order."""
    n = _validate(features, labels)
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        index = order[start:start + batch_size]
        yield Batch(
            features={name: arr[index] for name, arr in features.items()},
            labels=labels[index],
        )


@dataclass
class Trainer:
    """Gradient-descent trainer with callbacks.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.module.Module` whose ``forward(features)``
        maps a feature dict to class probabilities ``(batch, n_classes)``.
    optimizer:
        Update rule over ``model.parameters()``.
    loss_fn:
        ``loss_fn(probabilities, labels) -> scalar Tensor``.  When the
        model defines a ``training_loss(features, labels)`` method (the
        paper's architectures do), that method is used instead -- it can
        fuse the classifier head and loss into a single autograd node on
        the ``"fused"`` backend (see :mod:`repro.nn.kernels`).
    max_grad_norm:
        Global-norm gradient clipping threshold (``None`` disables).
    rng:
        Generator for batch shuffling.
    callbacks:
        Extra callbacks; a :class:`History` is always appended and exposed
        as :attr:`history`.
    """

    model: Module
    optimizer: Optimizer
    loss_fn: Callable[[Tensor, np.ndarray], Tensor]
    max_grad_norm: float | None = 5.0
    rng: np.random.Generator | None = None
    callbacks: Sequence[Callback] = field(default_factory=tuple)
    history: History = field(init=False)

    def __post_init__(self) -> None:
        self.history = History()
        self._all_callbacks: list[Callback] = list(self.callbacks) + [self.history]

    def fit(self, features: Features, labels: np.ndarray, epochs: int,
            batch_size: int) -> History:
        """Train for ``epochs`` passes over the data; returns the history."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        labels = np.asarray(labels)
        _validate(features, labels)
        # Models may fuse forward and loss into one call (e.g. the fused
        # dense+softmax+BCE head kernel); fall back to forward + loss_fn.
        model_loss = getattr(self.model, "training_loss", None)
        self.model.train()
        for callback in self._all_callbacks:
            callback.on_train_begin(self.model)
        for epoch in range(epochs):
            epoch_loss = 0.0
            examples = 0
            for batch in iterate_batches(features, labels, batch_size, rng=self.rng):
                self.optimizer.zero_grad()
                if model_loss is not None:
                    loss = model_loss(batch.features, batch.labels)
                else:
                    outputs = self.model(batch.features)
                    loss = self.loss_fn(outputs, batch.labels)
                loss.backward()
                if self.max_grad_norm is not None:
                    clip_gradients(self.model.parameters(), self.max_grad_norm)
                self.optimizer.step()
                epoch_loss += loss.item() * batch.size
                examples += batch.size
            logs = {"loss": epoch_loss / examples}
            for callback in self._all_callbacks:
                callback.on_epoch_end(self.model, epoch, logs)
            if any(cb.stop_requested() for cb in self._all_callbacks):
                break
        for callback in self._all_callbacks:
            callback.on_train_end(self.model)
        return self.history

    def predict_proba(self, features: Features, batch_size: int = 256) -> np.ndarray:
        """Class probabilities in eval mode, without recording gradients."""
        self.model.eval()
        return predict_proba(self.model, features, batch_size=batch_size)


def predict_proba(model: Module, features: Features,
                  batch_size: int = 256) -> np.ndarray:
    """Run ``model`` over ``features`` in chunks; returns ``(n, n_classes)``."""
    n = _validate_features(features)
    outputs: list[np.ndarray] = []
    with no_grad():
        for start in range(0, n, batch_size):
            chunk = {name: arr[start:start + batch_size]
                     for name, arr in features.items()}
            outputs.append(model(chunk).numpy())
    return np.concatenate(outputs, axis=0)
