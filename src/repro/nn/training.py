"""The training loop.

Works with multi-input models: a training example is a dict of named
feature arrays (the paper's models take up to three inputs -- character
indices, attribute index and normalised length) plus integer labels.

Cell values have wildly skewed lengths (a beer name vs. a tax-record
field), yet every ``values`` row is padded to the dataset-wide maximum.
:class:`BucketBatchSampler` makes the hot path proportional to real
characters instead of padding: examples are grouped into length buckets,
shuffled within and across buckets, and each batch's padded arrays are
trimmed to the batch's own maximum length.  Trimming only removes steps
that are padding for every row, so training is equivalent to the
full-padding path up to float accumulation order (and forward values are
bit-for-bit identical -- see :mod:`repro.nn.kernels`).
"""

from __future__ import annotations

import time

from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from pathlib import Path

from repro import telemetry
from repro.autograd import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.faults import inject
from repro.inference import InferenceEngine, InferenceStats, PredictionCache
from repro.inference.engine import pad_single_row
from repro.inference.index import DedupIndex
from repro.nn.callbacks import Callback, History
from repro.nn.module import Module
from repro.nn.optim import Optimizer, clip_gradients
from repro.nn.parallel import use_workers

Features = dict[str, np.ndarray]

#: Feature keys that carry a per-step (time) axis and may be trimmed.
SEQUENCE_KEYS = ("values",)


@dataclass
class Batch:
    """One mini-batch of features and labels."""

    features: Features
    labels: np.ndarray

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        return int(self.labels.shape[0])


def _validate_features(features: Mapping[str, np.ndarray]) -> int:
    """Check the feature dict is non-empty and row-aligned; return the row count."""
    if not features:
        raise ConfigurationError("at least one feature array is required")
    lengths = {name: int(arr.shape[0]) for name, arr in features.items()}
    if len(set(lengths.values())) > 1:
        raise ConfigurationError(
            f"feature arrays disagree on the number of rows: {lengths}"
        )
    n = next(iter(lengths.values()))
    if n == 0:
        raise ConfigurationError("feature set is empty")
    return n


def _validate(features: Mapping[str, np.ndarray], labels: np.ndarray) -> int:
    if not features:
        raise ConfigurationError("training requires at least one feature array")
    n = labels.shape[0]
    for name, arr in features.items():
        if arr.shape[0] != n:
            raise ConfigurationError(
                f"feature {name!r} has {arr.shape[0]} rows but labels have {n}"
            )
    if n == 0:
        raise ConfigurationError("training set is empty")
    return n


def _gather(arr: np.ndarray, index: np.ndarray, key: str,
            buffers: dict[str, np.ndarray] | None) -> np.ndarray:
    """Contiguous fancy-gather of ``arr[index]`` along axis 0.

    With ``buffers``, the result is written into a per-key reusable
    buffer (reallocated only when the batch shape changes, i.e. for the
    last partial batch), saving one allocation per feature per batch.
    """
    if buffers is None:
        return np.take(arr, index, axis=0)
    shape = (index.shape[0],) + arr.shape[1:]
    buf = buffers.get(key)
    if buf is None or buf.shape != shape or buf.dtype != arr.dtype:
        buf = np.empty(shape, dtype=arr.dtype)
        buffers[key] = buf
    return np.take(arr, index, axis=0, out=buf)


def iterate_batches(features: Mapping[str, np.ndarray], labels: np.ndarray,
                    batch_size: int, rng: np.random.Generator | None = None,
                    reuse_buffers: bool = False) -> Iterator[Batch]:
    """Yield :class:`Batch` objects, optionally in shuffled order.

    ``reuse_buffers=True`` gathers each batch into per-feature buffers
    that are reused across iterations: a yielded batch's arrays are only
    valid until the next batch is drawn.  The training loop (which fully
    consumes a batch -- forward, backward, step -- before advancing) opts
    in; leave it off when batches are collected or consumed lazily.
    """
    n = _validate(features, labels)
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    buffers: dict[str, np.ndarray] | None = {} if reuse_buffers else None
    for start in range(0, n, batch_size):
        index = order[start:start + batch_size]
        yield Batch(
            features={name: _gather(arr, index, name, buffers)
                      for name, arr in features.items()},
            labels=_gather(labels, index, "__labels__", buffers),
        )


@dataclass(frozen=True)
class BucketBatchSampler:
    """Length-bucketed batching with padded-tail trimming.

    Groups examples into buckets of similar sequence length, shuffles
    within each bucket (so bucket membership, not example order, is the
    only constraint), chunks each bucket into batches and shuffles the
    batch order across buckets.  Each batch's sequence features (the
    ``values`` array) are then trimmed to the batch's own maximum length,
    so the RNN kernels never loop over steps that are padding for every
    row.

    Parameters
    ----------
    edges:
        Explicit ascending bucket upper edges (inclusive).  Lengths above
        the last edge fall into one extra overflow bucket.  ``None``
        derives edges from quantiles of the observed lengths.
    n_buckets:
        Number of auto-quantile buckets when ``edges`` is ``None``.
    trim_keys:
        Feature keys carrying a ``(batch, time)``-like layout to trim.
    trim:
        ``False`` keeps full-width arrays (identical batch composition,
        no trimming) -- the control arm used by the equivalence tests and
        the bucketing benchmark.
    """

    edges: tuple[int, ...] | None = None
    n_buckets: int = 4
    trim_keys: tuple[str, ...] = SEQUENCE_KEYS
    trim: bool = True

    def __post_init__(self) -> None:
        if self.n_buckets < 1:
            raise ConfigurationError(
                f"n_buckets must be >= 1, got {self.n_buckets}"
            )
        if self.edges is not None:
            edges = tuple(self.edges)
            if not edges or any(e < 1 for e in edges):
                raise ConfigurationError(
                    f"bucket edges must be positive, got {edges}"
                )
            if list(edges) != sorted(set(edges)):
                raise ConfigurationError(
                    f"bucket edges must be strictly ascending, got {edges}"
                )

    def resolve_edges(self, lengths: np.ndarray) -> tuple[int, ...]:
        """The bucket upper edges used for ``lengths``.

        Explicit edges are kept as given; auto-quantile edges are the
        ``1/n .. n/n`` quantiles of the observed lengths (deduplicated,
        so datasets with few distinct lengths get fewer buckets).  The
        last auto edge always equals the maximum observed length.
        """
        if self.edges is not None:
            return self.edges
        quantiles = np.quantile(lengths, [(i + 1) / self.n_buckets
                                          for i in range(self.n_buckets)])
        edges = sorted({int(np.ceil(q)) for q in quantiles})
        edges[-1] = max(edges[-1], int(lengths.max()))
        return tuple(edges)

    def batches(self, features: Mapping[str, np.ndarray], labels: np.ndarray,
                lengths: np.ndarray, batch_size: int,
                rng: np.random.Generator | None = None) -> Iterator[Batch]:
        """Yield one epoch of bucketed (and optionally trimmed) batches.

        Every example appears in exactly one batch per epoch.  With
        ``rng=None`` the order is deterministic: buckets in edge order,
        examples in dataset order within each bucket.
        """
        n = _validate(features, labels)
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        lengths = np.asarray(lengths).reshape(-1)
        if lengths.shape[0] != n:
            raise ConfigurationError(
                f"lengths has {lengths.shape[0]} entries but features have {n} rows"
            )
        edges = self.resolve_edges(lengths)
        # First bucket whose edge covers the length; lengths beyond the
        # last explicit edge land in an overflow bucket.
        bucket_of = np.searchsorted(np.asarray(edges), lengths, side="left")
        order = np.arange(n)
        if rng is not None:
            rng.shuffle(order)  # within-bucket order (stable partition below)
        batches: list[np.ndarray] = []
        for bucket in range(len(edges) + 1):
            members = order[bucket_of[order] == bucket]
            for start in range(0, members.shape[0], batch_size):
                batches.append(members[start:start + batch_size])
        if rng is not None:
            rng.shuffle(batches)  # across buckets
        for index in batches:
            width = max(int(lengths[index].max()), 1)
            feats: Features = {}
            for name, arr in features.items():
                part = np.take(arr, index, axis=0)
                if (self.trim and name in self.trim_keys and part.ndim >= 2
                        and width < part.shape[1]):
                    part = part[:, :width]
                feats[name] = part
            yield Batch(features=feats, labels=np.take(labels, index, axis=0))


@dataclass
class Trainer:
    """Gradient-descent trainer with callbacks.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.module.Module` whose ``forward(features)``
        maps a feature dict to class probabilities ``(batch, n_classes)``.
    optimizer:
        Update rule over ``model.parameters()``.
    loss_fn:
        ``loss_fn(probabilities, labels) -> scalar Tensor``.  When the
        model defines a ``training_loss(features, labels)`` method (the
        paper's architectures do), that method is used instead -- it can
        fuse the classifier head and loss into a single autograd node on
        the ``"fused"`` backend (see :mod:`repro.nn.kernels`).
    max_grad_norm:
        Global-norm gradient clipping threshold (``None`` disables).
    rng:
        Generator for batch shuffling.
    callbacks:
        Extra callbacks; a :class:`History` is always appended and exposed
        as :attr:`history`.
    batch_sampler:
        Optional :class:`BucketBatchSampler`; used by :meth:`fit` when
        per-example ``lengths`` are supplied, making each training step's
        cost proportional to real characters instead of padding.
    prediction_cache:
        Optional cross-call :class:`~repro.inference.PredictionCache`
        used by :meth:`predict_proba`'s dedup fast path.  Entries are
        invalidated automatically whenever the weights move: the trainer
        bumps the model's ``weights_version`` after every optimizer step,
        and checkpoint restores bump it through ``load_state_dict``.
    """

    model: Module
    optimizer: Optimizer
    loss_fn: Callable[[Tensor, np.ndarray], Tensor]
    max_grad_norm: float | None = 5.0
    rng: np.random.Generator | None = None
    callbacks: Sequence[Callback] = field(default_factory=tuple)
    batch_sampler: BucketBatchSampler | None = None
    prediction_cache: PredictionCache | None = None
    history: History = field(init=False)

    def __post_init__(self) -> None:
        self.history = History()
        self._all_callbacks: list[Callback] = list(self.callbacks) + [self.history]
        self._engine = InferenceEngine(self.model, cache=self.prediction_cache)

    def fit(self, features: Features, labels: np.ndarray, epochs: int,
            batch_size: int, lengths: np.ndarray | None = None,
            checkpoint_path: str | Path | None = None,
            checkpoint_every: int = 1,
            resume_from: str | Path | None = None) -> History:
        """Train for ``epochs`` passes over the data; returns the history.

        With both a :attr:`batch_sampler` and per-example ``lengths``,
        batches are length-bucketed and trimmed; otherwise the plain
        shuffled iteration is used (``lengths`` is then ignored).

        Crash safety: with ``checkpoint_path``, the full training state
        (weights, optimizer slots, shuffling RNG, callback state, epoch
        counter) is atomically written every ``checkpoint_every`` epochs.
        With ``resume_from`` pointing at such a file, training continues
        after the checkpoint's epoch and the final weights are
        bit-identical to an uninterrupted run; a missing ``resume_from``
        file simply starts fresh (so a first run and a re-run after a
        crash are the same invocation).
        """
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        labels = np.asarray(labels)
        _validate(features, labels)
        # Models may fuse forward and loss into one call (e.g. the fused
        # dense+softmax+BCE head kernel); fall back to forward + loss_fn.
        model_loss = getattr(self.model, "training_loss", None)
        self.model.train()
        for callback in self._all_callbacks:
            callback.on_train_begin(self.model)
        # Restore AFTER on_train_begin so begin-hooks (e.g. a schedule
        # resetting the learning rate for epoch 0) cannot clobber the
        # checkpointed state; the checkpoint already reflects them.
        start_epoch = 0
        if resume_from is not None:
            start_epoch = self._restore_checkpoint(resume_from)
        if any(cb.stop_requested() for cb in self._all_callbacks):
            start_epoch = epochs  # resumed into an already-stopped run
        # Telemetry is a single cached boolean test per epoch when off; the
        # per-batch accounting below only runs when it is on.
        tele = telemetry.enabled()
        registry = telemetry.get_registry() if tele else None
        full_width = None
        if tele and SEQUENCE_KEYS[0] in features \
                and features[SEQUENCE_KEYS[0]].ndim >= 2:
            full_width = int(features[SEQUENCE_KEYS[0]].shape[1])
        with telemetry.span("train.fit", epochs=epochs, batch_size=batch_size):
            for epoch in range(start_epoch, epochs):
                epoch_started = time.perf_counter() if tele else 0.0
                epoch_loss = 0.0
                examples = 0
                n_batches = 0
                norm_sum = 0.0
                width_sum = 0
                backward_seconds = 0.0
                if self.batch_sampler is not None and lengths is not None:
                    batch_iter = self.batch_sampler.batches(
                        features, labels, lengths, batch_size, rng=self.rng)
                else:
                    batch_iter = iterate_batches(features, labels, batch_size,
                                                 rng=self.rng,
                                                 reuse_buffers=True)
                for batch_index, batch in enumerate(batch_iter):
                    inject("trainer.batch_step", epoch=epoch,
                           batch=batch_index)
                    self.optimizer.zero_grad()
                    if model_loss is not None:
                        loss = model_loss(batch.features, batch.labels)
                    else:
                        outputs = self.model(batch.features)
                        loss = self.loss_fn(outputs, batch.labels)
                    if tele:
                        backward_started = time.perf_counter()
                        loss.backward()
                        backward_seconds += (time.perf_counter()
                                             - backward_started)
                    else:
                        loss.backward()
                    grad_norm = None
                    if self.max_grad_norm is not None:
                        grad_norm = clip_gradients(self.model.parameters(),
                                                   self.max_grad_norm)
                    self.optimizer.step()
                    # The weights moved: bump the version so any prediction
                    # cache keyed on it drops its now-stale entries.
                    self.model.mark_weights_updated()
                    epoch_loss += loss.item() * batch.size
                    examples += batch.size
                    if tele:
                        n_batches += 1
                        if grad_norm is not None:
                            norm_sum += grad_norm
                        if full_width is not None:
                            width_sum += int(
                                batch.features[SEQUENCE_KEYS[0]].shape[1])
                logs = {"loss": epoch_loss / examples}
                if tele:
                    wall = time.perf_counter() - epoch_started
                    registry.counter("train.epochs").inc()
                    registry.counter("train.batches").inc(n_batches)
                    registry.counter("train.examples").inc(examples)
                    registry.timer("train.epoch_seconds").observe(wall)
                    registry.timer("train.backward_seconds").observe(
                        backward_seconds)
                    registry.gauge("train.loss").set(logs["loss"])
                    registry.emit({
                        "type": "epoch",
                        "epoch": epoch,
                        "loss": logs["loss"],
                        "grad_norm": (norm_sum / n_batches
                                      if self.max_grad_norm is not None
                                      and n_batches else None),
                        "n_batches": n_batches,
                        "examples": examples,
                        # Mean examples per batch over the nominal batch
                        # size, and mean trimmed sequence width over the
                        # full padded width: how much real work each batch
                        # carried (bucketed epochs trim, so < 1.0).
                        "batch_fill": (examples / (n_batches * batch_size)
                                       if n_batches else None),
                        "width_ratio": (width_sum / (n_batches * full_width)
                                        if full_width and n_batches else None),
                        "backward_s": backward_seconds,
                        "wall_s": wall,
                    })
                for callback in self._all_callbacks:
                    callback.on_epoch_end(self.model, epoch, logs)
                # Fired before the checkpoint write: a kill here loses the
                # whole epoch, the harshest recovery window the chaos
                # tests exercise.
                inject("trainer.epoch_end", epoch=epoch)
                stop = any(cb.stop_requested()
                           for cb in self._all_callbacks)
                if checkpoint_path is not None and (
                        (epoch + 1) % checkpoint_every == 0
                        or epoch == epochs - 1 or stop):
                    self._save_checkpoint(checkpoint_path, epoch)
                if stop:
                    break
        for callback in self._all_callbacks:
            callback.on_train_end(self.model)
        return self.history

    def _save_checkpoint(self, path: str | Path, epoch: int) -> None:
        # Imported lazily: repro.models.serialization imports the model
        # zoo, which imports repro.nn.
        from repro.models.serialization import save_training_checkpoint

        save_training_checkpoint(path, self.model, self.optimizer,
                                 epoch=epoch, rng=self.rng,
                                 callbacks=self._all_callbacks)

    def _restore_checkpoint(self, path: str | Path) -> int:
        """Restore a training checkpoint; returns the epoch to resume at.

        A missing file is not an error -- it means "no prior progress",
        so the caller starts from epoch 0 and the same command line works
        for both the first run and every re-run after a crash.
        """
        from repro.models.serialization import load_training_checkpoint

        path = Path(path)
        if not path.exists():
            return 0
        ckpt = load_training_checkpoint(path)
        self.model.load_state_dict(ckpt.model_state)
        self.model.mark_weights_updated()
        self.optimizer.load_state_dict(ckpt.optimizer_state)
        if ckpt.rng_state is not None:
            if self.rng is None:
                raise ConfigurationError(
                    "checkpoint carries a shuffling RNG state but this "
                    "trainer has rng=None"
                )
            self.rng.bit_generator.state = ckpt.rng_state
        if ckpt.callback_types:
            names = [type(cb).__name__ for cb in self._all_callbacks]
            if list(ckpt.callback_types) != names:
                raise ConfigurationError(
                    f"checkpoint callbacks {list(ckpt.callback_types)} do "
                    f"not match this trainer's callbacks {names}"
                )
            for callback, state in zip(self._all_callbacks,
                                       ckpt.callback_states):
                if state:
                    callback.load_state_dict(state)
        return ckpt.epoch + 1

    def predict_proba(self, features: Features, batch_size: int = 256,
                      lengths: np.ndarray | None = None,
                      dedup: DedupIndex | None = None,
                      deduplicate: bool = True,
                      workers: int | None = None,
                      precision: str | None = None) -> np.ndarray:
        """Class probabilities in eval mode, without recording gradients.

        With ``deduplicate=True`` (the default) the dedup-memoized fast
        path runs: the network only sees one representative per group of
        byte-identical feature rows (and, with a :attr:`prediction_cache`,
        only representatives it has never scored under the current
        weights), and probabilities are scattered back with ``np.take``.
        The result is bit-for-bit identical to the naive chunked forward.
        ``dedup`` supplies a precomputed unique-cell index (e.g.
        :attr:`~repro.dataprep.encoding.EncodedCells.dedup`).

        ``workers`` and ``precision`` pass through to
        :meth:`~repro.inference.engine.InferenceEngine.predict_proba`
        (``None`` keeps the engine defaults).  The naive path supports
        ``workers`` (the kernel work plane is chunking-agnostic) but only
        float64 -- reduced precision lives behind the dedup engine's
        tolerance-gated, precision-tagged cache.
        """
        self.model.eval()
        if deduplicate:
            self._engine.batch_size = batch_size
            return self._engine.predict_proba(features, lengths=lengths,
                                              dedup=dedup, workers=workers,
                                              precision=precision)
        if precision not in (None, "float64"):
            raise ConfigurationError(
                f"precision={precision!r} requires the dedup engine; "
                "naive (deduplicate=False) prediction is float64 only")
        if workers:
            with use_workers(workers):
                return predict_proba(self.model, features,
                                     batch_size=batch_size,
                                     lengths=lengths, deduplicate=False)
        return predict_proba(self.model, features, batch_size=batch_size,
                             lengths=lengths, deduplicate=False)

    @property
    def inference_stats(self) -> InferenceStats:
        """Counters of the most recent dedup prediction call."""
        return self._engine.last_stats

    @property
    def total_inference_stats(self) -> InferenceStats:
        """Accumulated counters over every dedup prediction call."""
        return self._engine.total_stats


def predict_proba(model: Module, features: Features,
                  batch_size: int = 256,
                  lengths: np.ndarray | None = None,
                  dedup: DedupIndex | None = None,
                  deduplicate: bool = False) -> np.ndarray:
    """Run ``model`` over ``features`` in chunks; returns ``(n, n_classes)``.

    The output array is preallocated once and filled chunk by chunk, so
    peak memory is one output array plus one chunk (not a full second
    copy from concatenation).  With per-example ``lengths``, examples are
    processed in sorted-by-length chunks whose ``values`` arrays are
    trimmed to the chunk maximum (padding steps carry state unchanged, so
    per-example outputs are bit-for-bit identical), and results are
    un-permuted back to input order.

    ``deduplicate=True`` switches to the dedup-memoized fast path: the
    model runs once per group of byte-identical feature rows (``dedup``
    optionally supplies the precomputed unique-cell index) and outputs
    are scattered back, bit-for-bit identical to the naive path.  The
    default stays ``False`` here -- this function is the naive reference;
    :meth:`Trainer.predict_proba` (the serving path) defaults to the
    fast path and adds cross-call caching.
    """
    if deduplicate:
        engine = InferenceEngine(model, cache=None, batch_size=batch_size)
        return engine.predict_proba(features, lengths=lengths, dedup=dedup)
    n = _validate_features(features)
    out: np.ndarray | None = None
    if lengths is None:
        with no_grad():
            for start in range(0, n, batch_size):
                chunk = {name: arr[start:start + batch_size]
                         for name, arr in features.items()}
                probs = _forward_chunk(model, chunk)
                if out is None:
                    out = np.empty((n, probs.shape[1]), dtype=probs.dtype)
                out[start:start + batch_size] = probs
        return out

    lengths = np.asarray(lengths).reshape(-1)
    if lengths.shape[0] != n:
        raise ConfigurationError(
            f"lengths has {lengths.shape[0]} entries but features have {n} rows"
        )
    order = np.argsort(lengths, kind="stable")
    with no_grad():
        for start in range(0, n, batch_size):
            index = order[start:start + batch_size]
            width = max(int(lengths[index].max()), 1)
            chunk = {}
            for name, arr in features.items():
                part = np.take(arr, index, axis=0)
                if (name in SEQUENCE_KEYS and part.ndim >= 2
                        and width < part.shape[1]):
                    part = part[:, :width]
                chunk[name] = part
            probs = _forward_chunk(model, chunk)
            if out is None:
                out = np.empty((n, probs.shape[1]), dtype=probs.dtype)
            out[index] = probs
    return out


def _forward_chunk(model: Module, chunk: Features) -> np.ndarray:
    """One inference forward whose per-row bits don't depend on batching.

    Single-row chunks are duplicate-padded to two rows (see
    :func:`repro.inference.engine.pad_single_row`): BLAS rounds the
    one-row matmul differently from every ``m >= 2`` case, which would
    break the bit-for-bit contract between this naive reference path and
    the dedup-memoized engine whenever their chunkings leave a
    different-sized remainder.
    """
    n = next(iter(chunk.values())).shape[0]
    if n == 1:
        return model(pad_single_row(chunk)).numpy()[:1]
    return model(chunk).numpy()
