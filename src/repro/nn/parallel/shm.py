"""Zero-copy weight broadcast over ``multiprocessing.shared_memory``.

:class:`SharedWeights` publishes a module's full ``state_dict`` -- every
parameter and buffer, in the module's deterministic traversal order --
into one shared-memory segment described by a small picklable manifest
(name, offset, shape, dtype per entry).  Worker processes
:func:`attach_segment` and read the weights in place: the only per-task
payload is the manifest, not the weight bytes, which replaces per-task
weight pickling in process pools.

The segment is versioned by ``Module.weights_version``: republishing is a
no-op while the version is unchanged, and a bumped version atomically
replaces the segment (publish new, unlink old).  Segments are always
unlinked -- on :meth:`SharedWeights.close`, on interpreter exit (a module
registry backs an ``atexit`` sweep), and on abnormal exit out of a
publish (the ``parallel.broadcast`` fault-injection point sits inside the
publish's cleanup scope, so the chaos suite can prove kills don't leak).
"""

from __future__ import annotations

import atexit
import mmap
import os
import threading
from multiprocessing import shared_memory

import _posixshmem

import numpy as np

from repro import telemetry
from repro.faults import inject

__all__ = ["SharedWeights", "attach_segment", "live_segment_names"]

_live_segments: dict[str, shared_memory.SharedMemory] = {}
_live_lock = threading.Lock()


def _track(segment: shared_memory.SharedMemory) -> None:
    with _live_lock:
        _live_segments[segment.name] = segment


def _untrack(segment: shared_memory.SharedMemory) -> None:
    with _live_lock:
        _live_segments.pop(segment.name, None)


def live_segment_names() -> tuple[str, ...]:
    """Names of segments this process currently owns (for leak tests)."""
    with _live_lock:
        return tuple(_live_segments)


def _cleanup_all() -> None:
    with _live_lock:
        segments = list(_live_segments.values())
        _live_segments.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


atexit.register(_cleanup_all)


class SharedWeights:
    """Versioned shared-memory mirror of one module's weights.

    Parameters
    ----------
    module:
        The :class:`~repro.nn.module.Module` whose ``state_dict`` is
        broadcast.  ``weights_version`` decides when the mirror is stale.
    """

    def __init__(self, module) -> None:
        self._module = module
        self._segment: shared_memory.SharedMemory | None = None
        self._manifest: dict | None = None
        self._version: int | None = None

    @property
    def segment_name(self) -> str | None:
        """Name of the currently published segment (``None`` when closed)."""
        return None if self._segment is None else self._segment.name

    def publish(self) -> dict:
        """Return the manifest, (re)publishing only on a version bump.

        The manifest is a plain picklable dict::

            {"name": <segment name>, "version": <weights_version>,
             "n_bytes": <payload size>,
             "entries": [(state_key, offset, shape, dtype_str), ...]}
        """
        version = self._module.weights_version
        if self._segment is not None and version == self._version:
            return self._manifest

        arrays: list[tuple[str, np.ndarray]] = []
        for name, param in self._module.named_parameters():
            arrays.append((name, np.ascontiguousarray(param.data)))
        for name, buf in self._module.named_buffers():
            arrays.append((f"buffer:{name}", np.ascontiguousarray(buf)))
        entries = []
        offset = 0
        for name, array in arrays:
            entries.append((name, offset, array.shape, str(array.dtype)))
            offset += array.nbytes

        segment = shared_memory.SharedMemory(create=True,
                                             size=max(offset, 1))
        _track(segment)
        try:
            inject("parallel.broadcast", version=version, n_bytes=offset)
            for (name, start, shape, dtype), (_, array) in zip(entries,
                                                               arrays):
                view = np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                                  offset=start)
                view[...] = array
        except BaseException:
            # Covers WorkerKilled from the chaos suite: an aborted publish
            # must not leak its half-written segment.
            _untrack(segment)
            segment.close()
            segment.unlink()
            raise

        self.close()  # unlink the previous version, if any
        self._segment = segment
        self._version = version
        self._manifest = {"name": segment.name, "version": version,
                          "n_bytes": offset, "entries": entries}
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("parallel.shm_broadcasts").inc()
            registry.counter("parallel.shm_broadcast_bytes").inc(offset)
        return self._manifest

    def close(self) -> None:
        """Unlink the published segment (idempotent)."""
        segment, self._segment = self._segment, None
        self._manifest = self._version = None
        if segment is not None:
            _untrack(segment)
            segment.close()
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass

    def __enter__(self) -> "SharedWeights":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _AttachedSegment:
    """A reader's mapping of a published segment.

    Deliberately bypasses :class:`multiprocessing.shared_memory` for the
    attach: its constructor registers every opened segment with the
    resource tracker as if the opener owned it, which either tears down
    the publisher's segment at reader exit or (after ``unregister``, with
    a fork-shared tracker) corrupts the publisher's own registration.
    Mapping the segment directly keeps readers invisible to the tracker;
    only the publisher owns the name.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        fd = _posixshmem.shm_open(f"/{name}", os.O_RDWR, mode=0o600)
        try:
            size = os.fstat(fd).st_size
            self.buf = mmap.mmap(fd, size)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Drop the mapping (idempotent); never unlinks the name."""
        if self.buf is not None:
            self.buf.close()
            self.buf = None


def attach_segment(manifest: dict) -> tuple[_AttachedSegment,
                                            dict[str, np.ndarray]]:
    """Attach a published segment; returns ``(segment, state views)``.

    The views are zero-copy ndarrays over the shared buffer, keyed like
    ``state_dict`` output, so ``module.load_state_dict(views)`` restores
    the broadcast weights directly.  The caller must ``close()`` the
    segment after use (never unlink -- the publisher owns the name).
    """
    segment = _AttachedSegment(manifest["name"])
    views = {
        name: np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                         offset=offset)
        for name, offset, shape, dtype in manifest["entries"]
    }
    return segment, views
