"""Process pool scoring chunks against shared-memory weights.

:class:`SharedModelPool` fans feature chunks out to forked worker
processes.  The model object itself is never pickled per task: workers
inherit the model skeleton through ``fork`` when the pool starts, and a
task carries only the :class:`~repro.nn.parallel.shm.SharedWeights`
manifest plus its chunk of features.  A worker reloads weights from the
shared segment only when the manifest version differs from the one it
last applied, so steady-state serving moves zero weight bytes per task.

Chunk results are reassembled by submission index, so the output is
independent of worker scheduling -- and each chunk is evaluated with the
same numpy code on the same values as the serial loop, so the assembled
probabilities are byte-identical to serial evaluation of the same chunks.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.autograd import no_grad
from repro.errors import ConfigurationError
from repro.faults import inject
from repro.nn.parallel.shm import SharedWeights, attach_segment

__all__ = ["SharedModelPool"]

# Inherited by forked workers; set immediately before the pool's workers
# are spawned.  One active pool per process (the serving engine's case).
_fork_model = None
_worker_version: int | None = None


def _score_chunk(manifest: dict, chunk: dict[str, np.ndarray],
                 chunk_index: int) -> np.ndarray:
    """Worker-side task: refresh weights if stale, then run the forward."""
    global _worker_version
    inject("parallel.task", chunk_index=chunk_index)
    if manifest["version"] != _worker_version:
        segment, views = attach_segment(manifest)
        try:
            _fork_model.load_state_dict(views)
        finally:
            segment.close()
        _worker_version = manifest["version"]
    with no_grad():
        return _fork_model(chunk).numpy()


class SharedModelPool:
    """Persistent fork-based pool bound to one model.

    Parameters
    ----------
    model:
        The :class:`~repro.nn.module.Module` to score with.  Workers get
        a forked copy of its skeleton; weight updates flow through the
        shared segment, not through task pickles.
    workers:
        Number of worker processes (>= 1).
    """

    def __init__(self, model, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"SharedModelPool needs at least 1 worker, got {workers}")
        self.model = model
        self.workers = workers
        self._weights = SharedWeights(model)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        global _fork_model
        if self._pool is None:
            _fork_model = self.model
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context)
        return self._pool

    def map_chunks(self, chunks: list[dict[str, np.ndarray]]
                   ) -> list[np.ndarray]:
        """Score feature chunks; results keep the submission order."""
        manifest = self._weights.publish()
        pool = self._ensure_pool()
        futures = [pool.submit(_score_chunk, manifest, chunk, index)
                   for index, chunk in enumerate(chunks)]
        return [future.result() for future in futures]

    @property
    def segment_name(self) -> str | None:
        """Name of the live weight segment (``None`` before first use)."""
        return self._weights.segment_name

    def shutdown(self) -> None:
        """Stop the workers and unlink the weight segment (idempotent)."""
        global _fork_model
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            if _fork_model is self.model:
                _fork_model = None
        self._weights.close()

    def __enter__(self) -> "SharedModelPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
