"""The kernel work plane: length-grouped intra-batch parallelism.

A recurrence level's cost is ``batch x effective_width``: the fused
kernels already trim the time loop to the last step where *any* row is
live, but one long row pins the whole batch at full width.  The plane
splits the batch into length-sorted row groups and runs the level kernel
per group -- concurrently on a persistent thread pool -- so short groups
stop their loops early regardless of the long tail.  On multi-core hosts
the groups overlap in the BLAS/numpy regions that release the GIL; on any
host the per-group width trimming alone pays for the split on skewed
batches.

Determinism contract
--------------------
The group plan is a pure function of the batch mask (never of the worker
count), groups are at least :data:`MIN_GROUP_ROWS` rows so BLAS row
results match the full-batch call bit for bit, and the backward reduction
is *not* a per-group gradient sum: workers compute only the row-local
BPTT loops (``_local_grads``), the main thread scatters their
pre-activation gradients into one full-batch buffer and runs the serial
kernel's own GEMM tail (``_finish``) on it.  Forward states and all
gradients are therefore byte-identical across worker counts, and
numerically identical to the plane-off serial path (the serial path may
differ only in the sign of zero padding entries).

``REPRO_NN_WORKERS`` (or :func:`set_workers` / :func:`use_workers`)
selects the worker count; ``0`` -- the default -- disables the plane.
Every count >= 1 uses the identical grouped code path (``1`` runs the
groups on the calling thread), which is what makes the byte-identity
across counts trivial to audit.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from repro import telemetry
from repro.autograd.function import Function, FunctionCtx
from repro.errors import ConfigurationError

__all__ = [
    "WORKERS_ENV_VAR",
    "MIN_PARALLEL_ROWS",
    "MIN_GROUP_ROWS",
    "MAX_GROUPS",
    "get_workers",
    "set_workers",
    "reset_workers",
    "use_workers",
    "shutdown_pool",
    "plan_groups",
    "parallel_level_active",
    "parallel_level",
]

WORKERS_ENV_VAR = "REPRO_NN_WORKERS"

#: Batches smaller than this run inline: dispatch overhead would dominate.
MIN_PARALLEL_ROWS = 8
#: BLAS kernels pick a different microkernel for single-row operands
#: (see ``pad_single_row``), so groups keep at least two rows to stay
#: bit-identical with the full-batch call.
MIN_GROUP_ROWS = 2
#: Split granularity cap.  Deliberately *not* the worker count: the plan
#: must be identical at every count for reproducibility.
MAX_GROUPS = 4
#: Cost model for the split decision: one time step costs roughly this
#: many row-units of fixed interpreter/dispatch overhead on top of its
#: per-row arithmetic.  A split must reduce
#: ``width * (OVERHEAD_ROWS + n_rows)`` summed over groups to happen at
#: all, so uniform-length batches stay unsplit instead of paying pure
#: overhead.
OVERHEAD_ROWS = 16.0

_workers: int | None = None
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
_pool_lock = threading.Lock()


def _validate(value: int) -> int:
    if value < 0:
        raise ConfigurationError(
            f"worker count must be a non-negative integer, got {value!r}")
    return value


def get_workers() -> int:
    """Active worker count; ``0`` means the plane is off."""
    global _workers
    if _workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip() or "0"
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
        _workers = _validate(value)
    return _workers


def set_workers(value: int) -> None:
    """Override the worker count for this process."""
    global _workers
    _workers = _validate(int(value))


def reset_workers() -> None:
    """Forget any override; the next query re-reads the environment."""
    global _workers
    _workers = None


@contextlib.contextmanager
def use_workers(value: int) -> Iterator[None]:
    """Scoped worker-count override (mirrors ``backend.use_backend``)."""
    global _workers
    previous = _workers
    set_workers(value)
    try:
        yield
    finally:
        _workers = previous


def _get_pool(n_workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size != n_workers:
            if _pool is not None:
                _pool.shutdown(wait=True)
            _pool = ThreadPoolExecutor(max_workers=n_workers,
                                       thread_name_prefix="repro-plane")
            _pool_size = n_workers
        return _pool


def shutdown_pool() -> None:
    """Tear down the persistent thread pool (tests, interpreter exit)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None
            _pool_size = 0


atexit.register(shutdown_pool)


def plan_groups(mask: np.ndarray) -> list[np.ndarray]:
    """Length-sorted row groups for one batch.

    Rows are ordered by live length (stable sort, so equal lengths keep
    their batch order) and greedily segmented where a split reduces the
    modelled level cost ``width * (OVERHEAD_ROWS + n_rows)`` the most --
    i.e. where short rows would otherwise be dragged through a long
    tail's time steps.  At most :data:`MAX_GROUPS` groups of at least
    :data:`MIN_GROUP_ROWS` rows; a batch with no profitable split stays
    one group.  A pure function of the mask: the same batch always yields
    the same plan, whatever the worker count.
    """
    batch, n_steps = mask.shape
    lengths = np.where(mask.any(axis=1),
                       n_steps - np.argmax(mask[:, ::-1], axis=1), 0)
    order = np.argsort(lengths, kind="stable")
    sorted_lengths = np.maximum(lengths[order], 1)

    segments = [(0, batch)]
    for _ in range(MAX_GROUPS - 1):
        best: tuple[float, int, int] | None = None
        for index, (lo, hi) in enumerate(segments):
            if hi - lo < 2 * MIN_GROUP_ROWS:
                continue
            splits = np.arange(lo + MIN_GROUP_ROWS,
                               hi - MIN_GROUP_ROWS + 1)
            left_width = sorted_lengths[splits - 1]
            right_width = int(sorted_lengths[hi - 1])
            split_cost = (left_width * (OVERHEAD_ROWS + (splits - lo))
                          + right_width * (OVERHEAD_ROWS + (hi - splits)))
            at = int(np.argmin(split_cost))
            saving = (right_width * (OVERHEAD_ROWS + (hi - lo))
                      - float(split_cost[at]))
            if saving > 0.0 and (best is None or saving > best[0]):
                best = (saving, index, int(splits[at]))
        if best is None:
            break
        _, index, at = best
        lo, hi = segments[index]
        segments[index:index + 1] = [(lo, at), (at, hi)]
    return [order[lo:hi] for lo, hi in segments]


def parallel_level_active(mask: np.ndarray | None) -> bool:
    """Cheap guard the functional kernel wrappers consult per call."""
    return (mask is not None and mask.shape[0] >= MIN_PARALLEL_ROWS
            and get_workers() > 0)


def _run_tasks(tasks: Sequence[Callable[[], Any]]) -> list[Any]:
    """Execute task thunks, on the pool when more than one worker is set.

    Results are returned in task order.  Tasks write only to disjoint row
    slices and thread-local scratch, so scheduling order cannot affect
    the numbers they produce.
    """
    if telemetry.enabled():
        registry = telemetry.get_registry()
        registry.counter("parallel.tasks_dispatched").inc(len(tasks))
        wall = registry.timer("parallel.worker_wall_seconds")
        cpu = registry.timer("parallel.worker_cpu_seconds")

        def timed(task: Callable[[], Any]) -> Callable[[], Any]:
            def run() -> Any:
                wall_start = time.perf_counter()
                cpu_start = time.thread_time()
                out = task()
                wall.observe(time.perf_counter() - wall_start)
                cpu.observe(time.thread_time() - cpu_start)
                return out

            return run

        tasks = [timed(task) for task in tasks]
    n_workers = get_workers()
    if n_workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    pool = _get_pool(n_workers)
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _full_width(mask: np.ndarray) -> int:
    """``_effective_width`` of the whole batch, recomputed from the mask."""
    any_live = mask.any(axis=0)
    if not any_live.any():
        return 1
    return int(mask.shape[1] - np.argmax(any_live[::-1]))


_parallel_classes: dict[type[Function], type[Function]] = {}


def _make_parallel_class(kernel_cls: type[Function]) -> type[Function]:
    class ParallelLevel(Function):
        """One autograd node running ``kernel`` per length group.

        Forward: each group runs the unmodified kernel on its row slice
        (the kernel trims its time loop to the group's own width -- the
        source of the speedup) and the states are scattered back into
        the full ``(batch, time, units)`` sequence.

        Backward: workers run only the kernel's row-local BPTT half
        (``_local_grads``); the main thread assembles the groups'
        pre-activation gradients into one full-batch buffer and hands it
        to the kernel's serial GEMM tail (``_finish``).  The reduction
        order is therefore fixed by the serial kernel itself, not by
        worker scheduling.
        """

        kernel = kernel_cls

        @classmethod
        def forward(cls, ctx: FunctionCtx, x: np.ndarray, w_x: np.ndarray,
                    w_h: np.ndarray, b_h: np.ndarray,
                    mask: np.ndarray | None, reverse: bool,
                    groups: list[np.ndarray]) -> np.ndarray:
            kernel = cls.kernel
            batch, n_steps, _ = x.shape
            units = w_h.shape[0]

            def forward_task(rows: np.ndarray) -> tuple[FunctionCtx,
                                                        np.ndarray]:
                group_ctx = FunctionCtx(ctx.needs_input_grad)
                states = kernel.forward(group_ctx, x[rows], w_x, w_h, b_h,
                                        mask[rows], reverse)
                return group_ctx, states

            results = _run_tasks([
                (lambda rows=rows: forward_task(rows)) for rows in groups])
            out = np.empty((batch, n_steps, units))
            group_ctxs = []
            for rows, (group_ctx, states) in zip(groups, results):
                out[rows] = states
                group_ctxs.append(group_ctx)

            ctx.groups, ctx.group_ctxs = groups, group_ctxs
            ctx.x_full, ctx.w_x_full = x, w_x
            ctx.mask_full, ctx.reverse_full, ctx.out = mask, reverse, out
            return out

        @classmethod
        def backward(cls, ctx: FunctionCtx, grad: np.ndarray
                     ) -> tuple[np.ndarray | None, ...]:
            kernel = cls.kernel
            groups, group_ctxs = ctx.groups, ctx.group_ctxs
            mask, reverse = ctx.mask_full, ctx.reverse_full
            batch, n_steps = mask.shape
            width = _full_width(mask)

            def backward_task(group_ctx: FunctionCtx, rows: np.ndarray
                              ) -> tuple[np.ndarray | None, ...]:
                outs = kernel._local_grads(group_ctx, grad[rows])
                # The kernel stages results in thread-local scratch; copy
                # them out before this worker thread reuses the buffers
                # for its next group.
                return tuple(None if o is None else o.copy() for o in outs)

            locals_ = _run_tasks([
                (lambda gc=gc, rows=rows: backward_task(gc, rows))
                for gc, rows in zip(group_ctxs, groups)])

            # Assemble full-batch buffers.  Steps beyond a group's own
            # width are padding for all its rows: their serial gradient is
            # exactly zero, so the zero fill reproduces the serial values.
            n_parts = len(locals_[0])
            assembled: list[np.ndarray | None] = []
            for part in range(n_parts):
                if locals_[0][part] is None:
                    assembled.append(None)
                    continue
                gate_dim = locals_[0][part].shape[-1]
                full = np.zeros((batch, width, gate_dim))
                for rows, outs in zip(groups, locals_):
                    group_part = outs[part]
                    full[rows, :group_part.shape[1]] = group_part
                assembled.append(full)

            finish_ctx = FunctionCtx(ctx.needs_input_grad)
            x = ctx.x_full
            finish_ctx.x = x[:, :width] if width < n_steps else x
            finish_ctx.x_shape = x.shape
            finish_ctx.w_x = ctx.w_x_full
            # The serial kernels stash the output sequence under
            # class-specific names; provide both.
            finish_ctx.states = finish_ctx.h_seq = ctx.out
            finish_ctx.order = (list(range(width - 1, -1, -1)) if reverse
                                else list(range(width)))
            finish_ctx.width = width
            return kernel._finish(finish_ctx, *assembled)

    ParallelLevel.__name__ = f"Parallel{kernel_cls.__name__}"
    ParallelLevel.__qualname__ = ParallelLevel.__name__
    return ParallelLevel


def parallel_level(kernel_cls: type[Function], x: Any, w_x: Any, w_h: Any,
                   b_h: Any, mask: np.ndarray, reverse: bool) -> Any:
    """Run one recurrence level through the work plane.

    ``kernel_cls`` is passed in by :mod:`repro.nn.kernels` (this module
    deliberately never imports the kernels, which import it).  When the
    planner finds no profitable split the level runs inline, exactly as
    with the plane off.
    """
    groups = plan_groups(mask)
    if len(groups) < 2:
        return kernel_cls.apply(x, w_x, w_h, b_h, mask, reverse)
    cls = _parallel_classes.get(kernel_cls)
    if cls is None:
        cls = _make_parallel_class(kernel_cls)
        _parallel_classes[kernel_cls] = cls
    return cls.apply(x, w_x, w_h, b_h, mask, reverse, groups)
