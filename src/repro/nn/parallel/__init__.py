"""Multi-threaded work plane for the fused sequence kernels.

:mod:`plane`
    Splits a batch's length groups across a persistent worker pool inside
    one forward/backward, with a deterministic reduction that keeps
    gradients bit-for-bit reproducible at any worker count.
:mod:`shm`
    Zero-copy weight broadcast over ``multiprocessing.shared_memory``,
    versioned by ``Module.weights_version``.
:mod:`procpool`
    A persistent process pool whose workers attach the shared weight
    segment instead of unpickling weights per task.
"""

from repro.nn.parallel.plane import (
    MAX_GROUPS,
    MIN_GROUP_ROWS,
    MIN_PARALLEL_ROWS,
    WORKERS_ENV_VAR,
    get_workers,
    parallel_level,
    parallel_level_active,
    plan_groups,
    reset_workers,
    set_workers,
    shutdown_pool,
    use_workers,
)
from repro.nn.parallel.shm import (
    SharedWeights,
    attach_segment,
    live_segment_names,
)
from repro.nn.parallel.procpool import SharedModelPool

__all__ = [
    "MAX_GROUPS",
    "MIN_GROUP_ROWS",
    "MIN_PARALLEL_ROWS",
    "WORKERS_ENV_VAR",
    "SharedWeights",
    "SharedModelPool",
    "attach_segment",
    "get_workers",
    "live_segment_names",
    "parallel_level",
    "parallel_level_active",
    "plan_groups",
    "reset_workers",
    "set_workers",
    "shutdown_pool",
    "use_workers",
]
