"""Loss functions.

The paper (Section 5.2) trains with binary cross-entropy on a two-way
softmax output.  We provide that exact combination plus the general
categorical form and a fused logits variant for numerical stability.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, log_softmax
from repro.errors import ShapeError


def binary_cross_entropy(probabilities: Tensor, targets: np.ndarray,
                         epsilon: float = 1e-12) -> Tensor:
    """Mean binary cross-entropy of predicted error probabilities.

    Parameters
    ----------
    probabilities:
        Predicted probability of the positive class, shape ``(batch,)``
        or ``(batch, 1)``.
    targets:
        Binary labels of matching shape (0 = correct cell, 1 = error).
    epsilon:
        Clamp to avoid ``log(0)``.
    """
    targets = np.asarray(targets, dtype=np.float64).reshape(probabilities.shape)
    clipped = probabilities.clip(epsilon, 1.0 - epsilon)
    losses = -(Tensor(targets) * clipped.log()
               + Tensor(1.0 - targets) * (1.0 - clipped).log())
    return losses.mean()


def categorical_cross_entropy(probabilities: Tensor, targets_onehot: np.ndarray,
                              epsilon: float = 1e-12) -> Tensor:
    """Mean categorical cross-entropy of a probability distribution.

    Parameters
    ----------
    probabilities:
        Softmax output, shape ``(batch, n_classes)``.
    targets_onehot:
        One-hot labels of the same shape.
    """
    targets_onehot = np.asarray(targets_onehot, dtype=np.float64)
    if targets_onehot.shape != probabilities.shape:
        raise ShapeError(
            f"targets shape {targets_onehot.shape} does not match "
            f"probabilities shape {probabilities.shape}"
        )
    clipped = probabilities.clip(epsilon, 1.0)
    per_sample = -(Tensor(targets_onehot) * clipped.log()).sum(axis=-1)
    return per_sample.mean()


def softmax_cross_entropy_with_logits(logits: Tensor,
                                      targets: np.ndarray) -> Tensor:
    """Fused, numerically stable softmax + cross-entropy.

    Parameters
    ----------
    logits:
        Pre-softmax scores, shape ``(batch, n_classes)``.
    targets:
        Integer class labels, shape ``(batch,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n_classes = logits.shape[-1]
    if targets.size and (targets.min() < 0 or targets.max() >= n_classes):
        raise ShapeError(f"target labels must lie in [0, {n_classes})")
    log_probs = log_softmax(logits, axis=-1)
    onehot = np.zeros(logits.shape)
    onehot[np.arange(targets.shape[0]), targets] = 1.0
    return -(log_probs * Tensor(onehot)).sum(axis=-1).mean()


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels into ``(len(labels), n_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ShapeError(f"labels must lie in [0, {n_classes})")
    encoded = np.zeros((labels.shape[0], n_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
