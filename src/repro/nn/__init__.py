"""Neural-network layers, losses, optimizers and a training loop.

Built on :mod:`repro.autograd`, this subpackage provides everything the
paper's two architectures (Figure 5) are made of:

* layers: :class:`Embedding`, :class:`Dense`, :class:`RNNCell`,
  :class:`StackedRNN`, :class:`BidirectionalRNN`, :class:`BatchNorm1d`,
  :class:`Dropout`, :class:`Sequential`;
* losses: binary / categorical cross-entropy (Section 5.2 uses binary
  cross-entropy on a two-way softmax);
* optimizers: :class:`SGD`, :class:`RMSprop` (the paper's choice),
  :class:`Adam`;
* a :class:`Trainer` with Keras-style callbacks, including
  :class:`BestWeightsCheckpoint`, which restores the weights from the
  epoch with the lowest training loss exactly as Section 5.2 describes,
  plus :class:`BucketBatchSampler` for length-bucketed batching that
  trims padded tails so step cost tracks real characters;
* compute backends (:mod:`repro.nn.backend`): the default ``"fused"``
  backend runs each recurrence level as one autograd node
  (:mod:`repro.nn.kernels`), the ``"graph"`` backend is the per-step
  reference implementation.
"""

from repro.nn.backend import (
    BACKENDS,
    get_backend,
    reset_backend,
    set_backend,
    use_backend,
)
from repro.nn.callbacks import (
    BestWeightsCheckpoint,
    Callback,
    EarlyStopping,
    EpochEvaluator,
    History,
)
from repro.nn.init import glorot_uniform, orthogonal, uniform, zeros
from repro.nn.layers.container import Sequential
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.normalization import BatchNorm1d
from repro.nn.layers.gated import GRUCell, LSTMCell
from repro.nn.layers.rnn import (
    CELL_TYPES,
    BidirectionalRNN,
    RNNCell,
    StackedRNN,
    make_cell,
)
from repro.nn.losses import (
    binary_cross_entropy,
    categorical_cross_entropy,
    softmax_cross_entropy_with_logits,
)
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop, clip_gradients
from repro.nn.training import (
    Batch,
    BucketBatchSampler,
    Trainer,
    iterate_batches,
    predict_proba,
)

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "reset_backend",
    "use_backend",
    "Module",
    "Parameter",
    "Embedding",
    "Dense",
    "RNNCell",
    "LSTMCell",
    "GRUCell",
    "StackedRNN",
    "BidirectionalRNN",
    "CELL_TYPES",
    "make_cell",
    "BatchNorm1d",
    "Dropout",
    "Sequential",
    "binary_cross_entropy",
    "categorical_cross_entropy",
    "softmax_cross_entropy_with_logits",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "clip_gradients",
    "Callback",
    "History",
    "BestWeightsCheckpoint",
    "EarlyStopping",
    "EpochEvaluator",
    "Trainer",
    "Batch",
    "BucketBatchSampler",
    "iterate_batches",
    "predict_proba",
    "glorot_uniform",
    "orthogonal",
    "uniform",
    "zeros",
]
