"""Fused forward+backward sequence kernels.

Each kernel runs a whole recurrence level -- the full time loop of
Eq. 1-4 -- in numpy inside a *single* autograd node (a
:class:`~repro.autograd.function.Function`), replacing the thousands of
per-step graph nodes the reference ``"graph"`` backend records.  The
backward passes are hand-derived backpropagation-through-time sweeps,
validated against finite differences and against the reference backend by
the test suite.

Numerical contract: every kernel evaluates exactly the same numpy
expressions, in the same order, as the per-step graph implementation in
:mod:`repro.nn.layers.rnn` / :mod:`repro.nn.layers.gated`, so forward
values are bit-for-bit identical across backends.

Masking follows the repository-wide convention: ``mask`` is a boolean
``(batch, time)`` array where ``False`` marks padding; on a padded step a
row's state is carried over unchanged (and gradients flow straight
through to the previous step).

Effective lengths: the data-preparation pipeline right-pads, so a batch
whose longest value is far shorter than the array width ends in a block
of steps that are padding for *every* row.  Each kernel detects that
block (:func:`_effective_width`), stops its time loop at the last step
any row is live, and fills the tail analytically -- the carried state for
the forward direction, the untouched zero initial state for the reverse
direction.  The backward pass mirrors the trim: tail gradients are folded
into the carried-state gradient in the same accumulation order the
full-width loop would have used, so forward values stay bit-for-bit
identical and gradients agree to float-accumulation order.

Kernels
-------
:func:`rnn_level`
    Whole-sequence tanh recurrence (the paper's Eq. 1-2).
:func:`lstm_level` / :func:`gru_level`
    Gated counterparts for the cell-type ablation.
:func:`dense_softmax_bce`
    The classifier head fused with its loss: dense + softmax + binary
    (two-way categorical) cross-entropy in one node.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import telemetry
from repro.autograd.function import Function, FunctionCtx
from repro.errors import ShapeError
from repro.nn.parallel.plane import parallel_level_active, parallel_level

__all__ = [
    "RNNLevelFunction",
    "LSTMLevelFunction",
    "GRULevelFunction",
    "DenseSoftmaxBCEFunction",
    "rnn_level",
    "lstm_level",
    "gru_level",
    "dense_softmax_bce",
]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Mirrors repro.autograd.ops.sigmoid bit for bit (incl. the clamp).
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _instrumented(cls: type[Function]) -> type[Function]:
    """Per-kernel forward/backward wall-time timers.

    Behind the ``REPRO_TELEMETRY`` switch: with telemetry off each call
    pays a single cached boolean test before dispatching to the original
    static method, so the default path's speedup gates are unaffected.
    Timers are named ``kernel.<ClassName>.forward`` / ``.backward`` in
    the process registry.
    """
    inner_forward = cls.forward
    inner_backward = cls.backward
    forward_name = f"kernel.{cls.__name__}.forward"
    backward_name = f"kernel.{cls.__name__}.backward"

    def forward(ctx, *args, **kwargs):
        if not telemetry.enabled():
            return inner_forward(ctx, *args, **kwargs)
        started = time.perf_counter()
        out = inner_forward(ctx, *args, **kwargs)
        telemetry.get_registry().timer(forward_name).observe(
            time.perf_counter() - started)
        return out

    def backward(ctx, grad):
        if not telemetry.enabled():
            return inner_backward(ctx, grad)
        started = time.perf_counter()
        out = inner_backward(ctx, grad)
        telemetry.get_registry().timer(backward_name).observe(
            time.perf_counter() - started)
        return out

    forward.__doc__ = inner_forward.__doc__
    backward.__doc__ = inner_backward.__doc__
    cls.forward = staticmethod(forward)
    cls.backward = staticmethod(backward)
    return cls


def _classify_steps(mask: np.ndarray | None, n_steps: int
                    ) -> tuple[list[bool], list[bool]]:
    """Per-step liveness: (any row live, all rows live)."""
    if mask is None:
        live = [True] * n_steps
        return live, live
    return mask.any(axis=0).tolist(), mask.all(axis=0).tolist()


def _check_sequence(x: np.ndarray, mask: np.ndarray | None) -> None:
    if x.ndim != 3:
        raise ShapeError(f"sequence kernels expect (batch, time, dim), got {x.shape}")
    if mask is not None and mask.shape != x.shape[:2]:
        raise ShapeError(
            f"mask shape {mask.shape} does not match sequence {x.shape[:2]}"
        )


def _time_order(n_steps: int, reverse: bool) -> list[int]:
    return list(range(n_steps - 1, -1, -1)) if reverse else list(range(n_steps))


def _effective_width(any_live: list[bool], n_steps: int) -> int:
    """Steps up to (and including) the last one where any row is live.

    Steps beyond the width are padding for every row: the forward pass
    carries state straight through them and the backward pass passes
    gradients through unchanged, so the kernels handle the whole tail in
    closed form instead of looping over it.  A fully padded batch keeps a
    width of 1 so the (dead) loop still establishes the initial state.
    """
    for t in range(n_steps - 1, -1, -1):
        if any_live[t]:
            return t + 1
    return 1


def _fill_tail(states: np.ndarray, width: int, reverse: bool,
               h: np.ndarray) -> None:
    """Write the analytic tail states for steps beyond ``width``.

    Forward order carries the final live state through the dead tail;
    reverse order visits the tail first and never leaves the zero initial
    state.  Matches the full-width loop bit for bit.
    """
    if width >= states.shape[1]:
        return
    if reverse:
        states[:, width:] = 0.0
    else:
        states[:, width:] = h[:, None, :]


def _tail_grad(dh: np.ndarray, grad: np.ndarray, width: int,
               reverse: bool) -> None:
    """Fold the dead tail's incoming gradients into the carried ``dh``.

    For the forward direction the full-width backward loop would visit
    the tail first (descending t) and accumulate ``grad[:, t]`` into the
    pass-through state gradient; replicate that order exactly.  For the
    reverse direction the tail states are the constant initial state, so
    their gradients are discarded -- as the full loop does.
    """
    if reverse:
        return
    for t in range(grad.shape[1] - 1, width - 1, -1):
        dh += grad[:, t]


class _ScratchPool(threading.local):
    """Per-thread, per-key scratch arrays reused across kernel calls.

    Fresh large allocations are page-fault bound on this workload, so the
    kernels stage their *call-local* intermediates (input projection, BPTT
    derivative tables, pre-activation gradients) in warm buffers instead.
    An array from the pool is only valid until the next ``get`` with the
    same key *on the same thread*; nothing handed to the autograd graph
    (outputs, returned gradients, ``ctx`` state) may ever live here.
    Kernel calls never nest on a thread, so sequential reuse is safe, and
    each worker of the parallel plane gets its own buffers -- concurrent
    kernel calls never alias.
    """

    def __init__(self) -> None:
        self._arrays: dict[tuple[str, tuple[int, ...]], np.ndarray] = {}

    def get(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        slot = (key, shape)
        array = self._arrays.get(slot)
        if array is None:
            array = np.empty(shape)
            self._arrays[slot] = array
        return array


_scratch = _ScratchPool()


def _shift_prev(sequence: np.ndarray, order: list[int], key: str) -> np.ndarray:
    """``prev[:, t]`` = the state one *iteration* before step ``t``.

    The earliest step in iteration order gets the all-zeros initial state.
    Dead (fully padded) steps may hold stale values; their ``dproj`` rows
    are zero, so they never contribute to the weight gradient.
    """
    prev = _scratch.get(key, sequence.shape)
    if order[0] == 0:  # forward iteration order
        prev[:, 0] = 0.0
        prev[:, 1:] = sequence[:, :-1]
    else:  # reverse iteration order
        prev[:, -1] = 0.0
        prev[:, :-1] = sequence[:, 1:]
    return prev


def _dproj_scratch(key: str, shape: tuple[int, ...],
                   any_live: list[bool]) -> np.ndarray:
    """Pre-activation grad buffer: live steps are fully overwritten by the
    backward loops, so only dead (fully padded) steps need explicit zeros."""
    dproj = _scratch.get(key, shape)
    for t, live in enumerate(any_live):
        if not live:
            dproj[:, t] = 0.0
    return dproj


def _projection(x: np.ndarray, w_x: np.ndarray, b_h: np.ndarray,
                key: str) -> np.ndarray:
    """``x @ w_x + b`` for the whole sequence, staged in scratch."""
    batch, n_steps, _ = x.shape
    proj = _scratch.get(key, (batch, n_steps, w_x.shape[-1]))
    if n_steps == 1:
        # The batched (batch, 1, in) @ (in, out) matmul runs one GEMV per
        # row, whose accumulation can differ from the m >= 2 GEMM path by
        # an ulp.  One flat (batch, in) GEMM keeps a row's projection
        # bits identical to its value inside any wider chunk, so results
        # cannot depend on how rows were grouped into batches.
        np.matmul(x[:, 0], w_x, out=proj[:, 0])
    else:
        np.matmul(x, w_x, out=proj)
    proj += b_h
    return proj


def _recurrent_weight_grad(prev: np.ndarray, dproj: np.ndarray) -> np.ndarray:
    """``sum_t prev_t^T dproj_t`` as one GEMM instead of a matmul per step.

    The result lives in scratch: ``accumulate_grad`` copies (or adds) it
    into the parameter's grad buffer before the pool is touched again.
    """
    units, width = prev.shape[-1], dproj.shape[-1]
    return np.matmul(prev.reshape(-1, units).T, dproj.reshape(-1, width),
                     out=_scratch.get("level.dw_h", (units, width)))


def _input_grads(dproj: np.ndarray, x: np.ndarray, w_x: np.ndarray,
                 ctx: FunctionCtx, full_shape: tuple[int, ...]
                 ) -> tuple[np.ndarray | None, ...]:
    """Shared tail of every level backward: grads through ``x @ w_x + b``.

    ``x`` is the (possibly width-trimmed) live window of the input;
    ``dx`` is expanded back to ``full_shape`` with a zero tail -- trimmed
    steps are padding for every row, so their input gradient is exactly
    zero.  Like :func:`_recurrent_weight_grad`, the returned arrays are
    scratch: they are consumed synchronously by gradient accumulation.
    """
    in_dim, proj_width = x.shape[-1], dproj.shape[-1]
    if ctx.needs_input_grad[0]:
        dx = _scratch.get("level.dx", full_shape)
        np.matmul(dproj, w_x.T, out=dx[:, :x.shape[1]])
        if x.shape[1] < full_shape[1]:
            dx[:, x.shape[1]:] = 0.0
    else:
        dx = None
    if ctx.needs_input_grad[1]:
        dw_x = np.matmul(x.reshape(-1, in_dim).T, dproj.reshape(-1, proj_width),
                         out=_scratch.get("level.dw_x", (in_dim, proj_width)))
    else:
        dw_x = None
    db = dproj.sum(axis=(0, 1)) if ctx.needs_input_grad[3] else None
    return dx, dw_x, db


@_instrumented
class RNNLevelFunction(Function):
    """One stacked-RNN level: ``h_t = tanh(x_t W_x + h_{t-1} W_h + b)``.

    Forward input ``x`` is ``(batch, time, input_dim)``; output is the
    full state sequence ``(batch, time, units)`` ordered by the original
    time axis regardless of ``reverse``.
    """

    @staticmethod
    def forward(ctx: FunctionCtx, x: np.ndarray, w_x: np.ndarray,
                w_h: np.ndarray, b_h: np.ndarray,
                mask: np.ndarray | None = None,
                reverse: bool = False) -> np.ndarray:
        _check_sequence(x, mask)
        batch, n_steps, _ = x.shape
        units = w_h.shape[0]
        any_live, all_live = _classify_steps(mask, n_steps)
        width = _effective_width(any_live, n_steps)
        x_w = x[:, :width] if width < n_steps else x
        proj = _projection(x_w, w_x, b_h, "rnn.proj")
        order = _time_order(width, reverse)

        # ``rec`` is preallocated scratch for the recurrent projection; the
        # activation writes straight into the ``states[:, t]`` slice and the
        # carried ``h`` is a view into it, so the fully-live fast path
        # allocates nothing per step.
        states = np.empty((batch, n_steps, units))
        rec = _scratch.get("rnn.rec", (batch, units))
        h = np.zeros((batch, units))
        for t in order:
            if not any_live[t]:
                states[:, t] = h
                continue
            np.matmul(h, w_h, out=rec)
            rec += proj[:, t]
            if all_live[t]:
                h = np.tanh(rec, out=states[:, t])
            else:
                h = np.where(mask[:, t:t + 1], np.tanh(rec), h)
                states[:, t] = h
        _fill_tail(states, width, reverse, h)

        ctx.x, ctx.x_shape, ctx.w_x, ctx.w_h = x_w, x.shape, w_x, w_h
        ctx.states, ctx.mask, ctx.order = states, mask, order
        ctx.any_live, ctx.all_live = any_live[:width], all_live[:width]
        ctx.width, ctx.reverse = width, reverse
        return states

    @staticmethod
    def backward(ctx: FunctionCtx, grad: np.ndarray
                 ) -> tuple[np.ndarray | None, ...]:
        (dproj,) = RNNLevelFunction._local_grads(ctx, grad)
        return RNNLevelFunction._finish(ctx, dproj)

    @staticmethod
    def _local_grads(ctx: FunctionCtx, grad: np.ndarray
                     ) -> tuple[np.ndarray, ...]:
        """Row-local half of the backward: the BPTT time loop.

        Produces the pre-activation gradient ``dproj`` (scratch) over the
        live window.  Every operation here is row-wise, so the parallel
        plane can run it per length group and assemble the groups' results
        into the full-batch ``dproj`` the serial path would have built.
        """
        states, mask, order = ctx.states, ctx.mask, ctx.order
        w_h, width = ctx.w_h, ctx.width
        batch, _, units = states.shape
        states_w = states[:, :width]

        # tanh' over the live window at once, staged in scratch.
        deriv = np.multiply(states_w, states_w,
                            out=_scratch.get("rnn.deriv", states_w.shape))
        np.subtract(1.0, deriv, out=deriv)
        w_h_t = np.ascontiguousarray(w_h.T)
        # ``dpre`` lands directly in its ``dproj[:, t]`` slice; the carried
        # ``dh`` lives in a single scratch buffer (never an input of the
        # GEMM that overwrites it, so no ping-pong is needed).
        dproj = _dproj_scratch("rnn.dproj", states_w.shape, ctx.any_live)
        buf = _scratch.get("rnn.dh", (batch, units))
        dh = np.zeros((batch, units))
        _tail_grad(dh, grad, width, ctx.reverse)
        for idx in range(len(order) - 1, -1, -1):
            t = order[idx]
            dh += grad[:, t]
            if not ctx.any_live[t]:
                continue  # state carried over: gradient passes through
            dpre = np.multiply(dh, deriv[:, t], out=dproj[:, t])
            if ctx.all_live[t]:
                dh = np.matmul(dpre, w_h_t, out=buf)
            else:
                live = mask[:, t:t + 1]
                dpre *= live
                dh = dpre @ w_h_t + dh * ~live
        return (dproj,)

    @staticmethod
    def _finish(ctx: FunctionCtx, dproj: np.ndarray
                ) -> tuple[np.ndarray | None, ...]:
        """Batch-level tail: weight and input gradients from ``dproj``.

        The exact GEMM expressions of the serial backward, so calling this
        on an assembled full-batch ``dproj`` (parallel plane) reproduces
        the serial gradients.
        """
        states_w = ctx.states[:, :ctx.width]
        if ctx.needs_input_grad[2]:
            dw_h = _recurrent_weight_grad(
                _shift_prev(states_w, ctx.order, "rnn.prev"), dproj)
        else:
            dw_h = None
        dx, dw_x, db = _input_grads(dproj, ctx.x, ctx.w_x, ctx, ctx.x_shape)
        return dx, dw_x, dw_h, db


@_instrumented
class LSTMLevelFunction(Function):
    """One LSTM level; outputs the hidden-state sequence ``h`` only.

    The cell state ``c`` stays internal to the kernel (mirroring
    ``LSTMCell.output``, which exposes just ``h``); its chain rule is
    handled inside the fused backward.
    """

    @staticmethod
    def forward(ctx: FunctionCtx, x: np.ndarray, w_x: np.ndarray,
                w_h: np.ndarray, b_h: np.ndarray,
                mask: np.ndarray | None = None,
                reverse: bool = False) -> np.ndarray:
        _check_sequence(x, mask)
        batch, n_steps, _ = x.shape
        units = w_h.shape[0]
        any_live, all_live = _classify_steps(mask, n_steps)
        width = _effective_width(any_live, n_steps)
        x_w = x[:, :width] if width < n_steps else x
        proj = _projection(x_w, w_x, b_h, "lstm.proj")
        order = _time_order(width, reverse)

        # Only ``h_seq`` is externally visible; the backward-pass tables
        # cover just the live window.
        h_seq = np.empty((batch, n_steps, units))
        c_seq = np.empty((batch, width, units))
        acts = np.zeros((batch, width, 4 * units))   # i, f, g, o
        tanh_c = np.zeros((batch, width, units))
        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        for t in order:
            if not any_live[t]:
                h_seq[:, t], c_seq[:, t] = h, c
                continue
            gates = proj[:, t] + h @ w_h
            i = _sigmoid(gates[:, :units])
            f = _sigmoid(gates[:, units:2 * units])
            g = np.tanh(gates[:, 2 * units:3 * units])
            o = _sigmoid(gates[:, 3 * units:])
            c_raw = f * c + i * g
            tc = np.tanh(c_raw)
            h_raw = o * tc
            if all_live[t]:
                h, c = h_raw, c_raw
            else:
                live = mask[:, t:t + 1]
                h = np.where(live, h_raw, h)
                c = np.where(live, c_raw, c)
            h_seq[:, t], c_seq[:, t] = h, c
            acts[:, t, :units] = i
            acts[:, t, units:2 * units] = f
            acts[:, t, 2 * units:3 * units] = g
            acts[:, t, 3 * units:] = o
            tanh_c[:, t] = tc
        _fill_tail(h_seq, width, reverse, h)

        ctx.x, ctx.x_shape, ctx.w_x, ctx.w_h = x_w, x.shape, w_x, w_h
        ctx.h_seq, ctx.c_seq, ctx.acts, ctx.tanh_c = h_seq, c_seq, acts, tanh_c
        ctx.mask, ctx.order = mask, order
        ctx.any_live, ctx.all_live = any_live[:width], all_live[:width]
        ctx.width, ctx.reverse = width, reverse
        return h_seq

    @staticmethod
    def backward(ctx: FunctionCtx, grad: np.ndarray
                 ) -> tuple[np.ndarray | None, ...]:
        (dproj,) = LSTMLevelFunction._local_grads(ctx, grad)
        return LSTMLevelFunction._finish(ctx, dproj)

    @staticmethod
    def _local_grads(ctx: FunctionCtx, grad: np.ndarray
                     ) -> tuple[np.ndarray, ...]:
        """Row-local half of the backward (see ``RNNLevelFunction``)."""
        h_seq, c_seq, acts, tanh_c = ctx.h_seq, ctx.c_seq, ctx.acts, ctx.tanh_c
        mask, order, w_h, width = ctx.mask, ctx.order, ctx.w_h, ctx.width
        batch, _, units = h_seq.shape

        # Whole-sequence precomputation: sigmoid'/tanh' factors and the
        # previous-state sequences (big vectorized ops beat per-step ones),
        # all staged in warm scratch buffers.
        sig_deriv = _scratch.get("lstm.sigd", acts.shape)
        np.subtract(1.0, acts, out=sig_deriv)
        np.multiply(acts, sig_deriv, out=sig_deriv)  # i, f, o slices valid
        g_all = acts[:, :, 2 * units:3 * units]
        g_deriv = _scratch.get("lstm.gd", g_all.shape)
        np.multiply(g_all, g_all, out=g_deriv)
        np.subtract(1.0, g_deriv, out=g_deriv)
        tc_deriv = _scratch.get("lstm.tcd", tanh_c.shape)
        np.multiply(tanh_c, tanh_c, out=tc_deriv)
        np.subtract(1.0, tc_deriv, out=tc_deriv)
        c_prev_seq = _shift_prev(c_seq, order, "lstm.cprev")
        w_h_t = np.ascontiguousarray(w_h.T)

        dproj = _dproj_scratch("lstm.dproj", (batch, width, 4 * units),
                               ctx.any_live)
        dh = np.zeros((batch, units))
        dc = np.zeros((batch, units))
        _tail_grad(dh, grad, width, ctx.reverse)
        for idx in range(len(order) - 1, -1, -1):
            t = order[idx]
            dh += grad[:, t]
            if not ctx.any_live[t]:
                continue
            i = acts[:, t, :units]
            f = acts[:, t, units:2 * units]
            o = acts[:, t, 3 * units:]
            if ctx.all_live[t]:
                dh_live, dc_live = dh, dc
                dh_dead = dc_dead = 0.0
            else:
                live = mask[:, t:t + 1]
                dh_live, dc_live = dh * live, dc * live
                dh_dead, dc_dead = dh * ~live, dc * ~live
            do = dh_live * tanh_c[:, t]
            dc_raw = dc_live + dh_live * o * tc_deriv[:, t]
            dgates = dproj[:, t]
            dgates[:, :units] = dc_raw * g_all[:, t] * sig_deriv[:, t, :units]
            dgates[:, units:2 * units] = (dc_raw * c_prev_seq[:, t]
                                          * sig_deriv[:, t, units:2 * units])
            dgates[:, 2 * units:3 * units] = dc_raw * i * g_deriv[:, t]
            dgates[:, 3 * units:] = do * sig_deriv[:, t, 3 * units:]
            dh = dgates @ w_h_t + dh_dead
            dc = dc_raw * f + dc_dead
        return (dproj,)

    @staticmethod
    def _finish(ctx: FunctionCtx, dproj: np.ndarray
                ) -> tuple[np.ndarray | None, ...]:
        """Batch-level tail (see ``RNNLevelFunction._finish``)."""
        h_seq_w = ctx.h_seq[:, :ctx.width]
        if ctx.needs_input_grad[2]:
            dw_h = _recurrent_weight_grad(
                _shift_prev(h_seq_w, ctx.order, "lstm.hprev"), dproj)
        else:
            dw_h = None
        dx, dw_x, db = _input_grads(dproj, ctx.x, ctx.w_x, ctx, ctx.x_shape)
        return dx, dw_x, dw_h, db


@_instrumented
class GRULevelFunction(Function):
    """One GRU level: update gate z, reset gate r, candidate n."""

    @staticmethod
    def forward(ctx: FunctionCtx, x: np.ndarray, w_x: np.ndarray,
                w_h: np.ndarray, b_h: np.ndarray,
                mask: np.ndarray | None = None,
                reverse: bool = False) -> np.ndarray:
        _check_sequence(x, mask)
        batch, n_steps, _ = x.shape
        units = w_h.shape[0]
        any_live, all_live = _classify_steps(mask, n_steps)
        width = _effective_width(any_live, n_steps)
        x_w = x[:, :width] if width < n_steps else x
        proj = _projection(x_w, w_x, b_h, "gru.proj")
        order = _time_order(width, reverse)

        states = np.empty((batch, n_steps, units))
        gates = np.zeros((batch, width, 3 * units))  # z, r, n
        rec_n = np.zeros((batch, width, units))      # h_prev W_h candidate slice
        h = np.zeros((batch, units))
        for t in order:
            if not any_live[t]:
                states[:, t] = h
                continue
            rec = h @ w_h
            z = _sigmoid(proj[:, t, :units] + rec[:, :units])
            r = _sigmoid(proj[:, t, units:2 * units] + rec[:, units:2 * units])
            n = np.tanh(proj[:, t, 2 * units:] + r * rec[:, 2 * units:])
            h_raw = z * h + (1.0 - z) * n
            h = h_raw if all_live[t] else np.where(mask[:, t:t + 1], h_raw, h)
            states[:, t] = h
            gates[:, t, :units] = z
            gates[:, t, units:2 * units] = r
            gates[:, t, 2 * units:] = n
            rec_n[:, t] = rec[:, 2 * units:]
        _fill_tail(states, width, reverse, h)

        ctx.x, ctx.x_shape, ctx.w_x, ctx.w_h = x_w, x.shape, w_x, w_h
        ctx.states, ctx.gates, ctx.rec_n = states, gates, rec_n
        ctx.mask, ctx.order = mask, order
        ctx.any_live, ctx.all_live = any_live[:width], all_live[:width]
        ctx.width, ctx.reverse = width, reverse
        return states

    @staticmethod
    def backward(ctx: FunctionCtx, grad: np.ndarray
                 ) -> tuple[np.ndarray | None, ...]:
        dproj, drec_seq = GRULevelFunction._local_grads(ctx, grad)
        return GRULevelFunction._finish(ctx, dproj, drec_seq)

    @staticmethod
    def _local_grads(ctx: FunctionCtx, grad: np.ndarray
                     ) -> tuple[np.ndarray, ...]:
        """Row-local half of the backward (see ``RNNLevelFunction``).

        Also builds the recurrent-projection gradient ``drec_seq`` (the
        candidate slice of ``dproj`` re-scaled by the reset gate), which
        depends on the row-local gate activations and so belongs to the
        group-local half; ``None`` when the recurrent weight needs no
        gradient.
        """
        states, gates, rec_n = ctx.states, ctx.gates, ctx.rec_n
        mask, order, w_h, width = ctx.mask, ctx.order, ctx.w_h, ctx.width
        batch, _, units = states.shape
        states_w = states[:, :width]

        # Live-window precomputation, as in the other level backwards.
        z_all = gates[:, :, :units]
        r_all = gates[:, :, units:2 * units]
        n_all = gates[:, :, 2 * units:]
        zr_all = gates[:, :, :2 * units]
        zr_deriv = _scratch.get("gru.zrd", zr_all.shape)
        np.subtract(1.0, zr_all, out=zr_deriv)
        np.multiply(zr_all, zr_deriv, out=zr_deriv)
        z_deriv = zr_deriv[:, :, :units]
        r_deriv = zr_deriv[:, :, units:]
        n_deriv = _scratch.get("gru.nd", n_all.shape)
        np.multiply(n_all, n_all, out=n_deriv)
        np.subtract(1.0, n_deriv, out=n_deriv)
        h_prev_seq = _shift_prev(states_w, order, "gru.prev")
        w_h_t = np.ascontiguousarray(w_h.T)

        dproj = _dproj_scratch("gru.dproj", (batch, width, 3 * units),
                               ctx.any_live)
        drec = _scratch.get("gru.drec", (batch, 3 * units))
        dh = np.zeros((batch, units))
        _tail_grad(dh, grad, width, ctx.reverse)
        for idx in range(len(order) - 1, -1, -1):
            t = order[idx]
            dh += grad[:, t]
            if not ctx.any_live[t]:
                continue
            h_prev = h_prev_seq[:, t]
            z = z_all[:, t]
            r = r_all[:, t]
            n = n_all[:, t]
            if ctx.all_live[t]:
                dlive = dh
                ddead = 0.0
            else:
                live = mask[:, t:t + 1]
                dlive = dh * live
                ddead = dh * ~live
            dz = dlive * (h_prev - n)
            dn_pre = dlive * (1.0 - z) * n_deriv[:, t]
            dr = dn_pre * rec_n[:, t]
            drec[:, :units] = dz * z_deriv[:, t]
            drec[:, units:2 * units] = dr * r_deriv[:, t]
            drec[:, 2 * units:] = dn_pre * r
            dproj[:, t, :2 * units] = drec[:, :2 * units]
            dproj[:, t, 2 * units:] = dn_pre
            dh = dlive * z + drec @ w_h_t + ddead

        if ctx.needs_input_grad[2]:
            # The candidate slice of ``drec`` differs from ``dproj`` (the
            # reset gate multiplies only the recurrent term), so rebuild it.
            drec_seq = _scratch.get("gru.drecseq", dproj.shape)
            np.copyto(drec_seq, dproj)
            np.multiply(dproj[:, :, 2 * units:], gates[:, :, units:2 * units],
                        out=drec_seq[:, :, 2 * units:])
        else:
            drec_seq = None
        return dproj, drec_seq

    @staticmethod
    def _finish(ctx: FunctionCtx, dproj: np.ndarray,
                drec_seq: np.ndarray | None
                ) -> tuple[np.ndarray | None, ...]:
        """Batch-level tail (see ``RNNLevelFunction._finish``)."""
        if ctx.needs_input_grad[2]:
            dw_h = _recurrent_weight_grad(
                _shift_prev(ctx.states[:, :ctx.width], ctx.order, "gru.prev"),
                drec_seq)
        else:
            dw_h = None
        dx, dw_x, db = _input_grads(dproj, ctx.x, ctx.w_x, ctx, ctx.x_shape)
        return dx, dw_x, dw_h, db


@_instrumented
class DenseSoftmaxBCEFunction(Function):
    """Classifier head fused with its loss: dense -> softmax -> BCE.

    Computes exactly ``categorical_cross_entropy(softmax(x @ w + b),
    targets)`` (the paper's two-way-softmax binary cross-entropy,
    Section 5.2) as one node, including the clamp-to-``epsilon`` and its
    zero-gradient-outside-the-clip-range semantics.
    """

    @staticmethod
    def forward(ctx: FunctionCtx, x: np.ndarray, w: np.ndarray,
                b: np.ndarray, targets_onehot: np.ndarray,
                epsilon: float = 1e-12) -> np.ndarray:
        targets_onehot = np.asarray(targets_onehot, dtype=np.float64)
        logits = x @ w + b
        if targets_onehot.shape != logits.shape:
            raise ShapeError(
                f"targets shape {targets_onehot.shape} does not match "
                f"logits shape {logits.shape}"
            )
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        clipped = np.clip(probs, epsilon, 1.0)
        per_sample = -(targets_onehot * np.log(clipped)).sum(axis=-1)
        loss = per_sample.sum() / float(per_sample.shape[0])

        ctx.x, ctx.w = x, w
        ctx.probs, ctx.clipped = probs, clipped
        ctx.targets, ctx.epsilon = targets_onehot, epsilon
        return np.asarray(loss)

    @staticmethod
    def backward(ctx: FunctionCtx, grad: np.ndarray
                 ) -> tuple[np.ndarray | None, ...]:
        probs, clipped, targets = ctx.probs, ctx.clipped, ctx.targets
        batch = probs.shape[0]
        dper_sample = float(grad) / batch
        dclipped = -dper_sample * targets / clipped
        inside = (probs >= ctx.epsilon) & (probs <= 1.0)
        dprobs = dclipped * inside
        dot = (dprobs * probs).sum(axis=-1, keepdims=True)
        dlogits = probs * (dprobs - dot)
        dx = dlogits @ ctx.w.T if ctx.needs_input_grad[0] else None
        dw = ctx.x.T @ dlogits if ctx.needs_input_grad[1] else None
        db = dlogits.sum(axis=0) if ctx.needs_input_grad[2] else None
        return dx, dw, db


# -- functional wrappers --------------------------------------------------------
#
# Each wrapper dispatches to the parallel work plane when it is enabled
# (``repro.nn.parallel``) and the batch is worth splitting; otherwise the
# kernel runs inline as a single autograd node.

def rnn_level(x, w_x, w_h, b_h, mask=None, reverse=False):
    """Fused tanh-RNN level; returns the state sequence ``(B, T, units)``."""
    if parallel_level_active(mask):
        return parallel_level(RNNLevelFunction, x, w_x, w_h, b_h, mask, reverse)
    return RNNLevelFunction.apply(x, w_x, w_h, b_h, mask, reverse)


def lstm_level(x, w_x, w_h, b_h, mask=None, reverse=False):
    """Fused LSTM level; returns the hidden sequence ``(B, T, units)``."""
    if parallel_level_active(mask):
        return parallel_level(LSTMLevelFunction, x, w_x, w_h, b_h, mask,
                              reverse)
    return LSTMLevelFunction.apply(x, w_x, w_h, b_h, mask, reverse)


def gru_level(x, w_x, w_h, b_h, mask=None, reverse=False):
    """Fused GRU level; returns the state sequence ``(B, T, units)``."""
    if parallel_level_active(mask):
        return parallel_level(GRULevelFunction, x, w_x, w_h, b_h, mask, reverse)
    return GRULevelFunction.apply(x, w_x, w_h, b_h, mask, reverse)


def dense_softmax_bce(x, w, b, targets_onehot, epsilon=1e-12):
    """Fused classifier-head loss; returns a scalar loss tensor."""
    return DenseSoftmaxBCEFunction.apply(x, w, b, targets_onehot, epsilon)
