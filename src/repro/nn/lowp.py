"""Reduced-precision inference: a float32 (optionally int8-weight)
re-implementation of the detector forwards.

The autograd :class:`~repro.autograd.tensor.Tensor` deliberately coerces
everything to float64 (training reproducibility rests on it), so the fast
inference mode lives outside the graph: a straight-line numpy evaluator
that replicates the TSB-RNN / ETSB-RNN eval-mode forward in float32 --
same layer equations, same masking and effective-width trimming, no
autograd bookkeeping.  ``"int8"`` additionally quantises the weight
matrices (symmetric per-tensor, dequantised back to float32 for the
arithmetic), halving again what the caches have to hold warm.

Weights are cast once per ``weights_version`` and reused across calls.
Float64 remains the default and the only training path; this module is
selected per call via ``InferenceEngine.predict_proba(precision=...)``
and is gated by tolerance tests against the float64 reference.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError

__all__ = ["PRECISION_MODES", "LOWP_MODES", "LowPrecisionEvaluator"]

#: Every precision the inference engine accepts.
PRECISION_MODES = ("float64", "float32", "int8")
#: The subset this module evaluates (float64 runs the normal graph).
LOWP_MODES = ("float32", "int8")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Same clamp as the float64 kernels, computed in float32.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _quantize_int8(weight: np.ndarray) -> np.ndarray:
    """Symmetric per-tensor int8 round trip, returned as float32."""
    scale = np.float32(max(float(np.abs(weight).max()) / 127.0, 1e-12))
    q = np.clip(np.rint(weight / scale), -127, 127).astype(np.int8)
    return (q.astype(np.float32) * scale)


def _run_level(kind: str, x: np.ndarray, w_x: np.ndarray, w_h: np.ndarray,
               b_h: np.ndarray, units: int, mask: np.ndarray | None,
               reverse: bool) -> np.ndarray:
    """One recurrence level in float32; mirrors the fused kernels' math."""
    batch, n_steps, _ = x.shape
    if mask is None:
        width = n_steps
        any_live = all_live = [True] * n_steps
    else:
        any_live = mask.any(axis=0).tolist()
        all_live = mask.all(axis=0).tolist()
        width = 1
        for t in range(n_steps - 1, -1, -1):
            if any_live[t]:
                width = t + 1
                break
    proj = x[:, :width] @ w_x + b_h
    order = range(width - 1, -1, -1) if reverse else range(width)
    states = np.empty((batch, n_steps, units), dtype=np.float32)
    h = np.zeros((batch, units), dtype=np.float32)
    c = np.zeros((batch, units), dtype=np.float32) if kind == "lstm" else None
    for t in order:
        if not any_live[t]:
            states[:, t] = h
            continue
        if kind == "rnn":
            h_raw = np.tanh(proj[:, t] + h @ w_h)
        elif kind == "lstm":
            gates = proj[:, t] + h @ w_h
            i = _sigmoid(gates[:, :units])
            f = _sigmoid(gates[:, units:2 * units])
            g = np.tanh(gates[:, 2 * units:3 * units])
            o = _sigmoid(gates[:, 3 * units:])
            c_raw = f * c + i * g
            h_raw = o * np.tanh(c_raw)
        else:  # gru
            rec = h @ w_h
            z = _sigmoid(proj[:, t, :units] + rec[:, :units])
            r = _sigmoid(proj[:, t, units:2 * units]
                         + rec[:, units:2 * units])
            n = np.tanh(proj[:, t, 2 * units:] + r * rec[:, 2 * units:])
            h_raw = z * h + (1.0 - z) * n
        if all_live[t]:
            h = h_raw
            if kind == "lstm":
                c = c_raw
        else:
            live = mask[:, t:t + 1]
            h = np.where(live, h_raw, h)
            if kind == "lstm":
                c = np.where(live, c_raw, c)
        states[:, t] = h
    if width < n_steps:
        states[:, width:] = 0.0 if reverse else h[:, None, :]
    return states


class LowPrecisionEvaluator:
    """Float32 forward evaluator bound to one detector model.

    Parameters
    ----------
    model:
        A :class:`~repro.models.tsb_rnn.TSBRNN` or
        :class:`~repro.models.etsb_rnn.ETSBRNN` instance (duck-typed on
        the branch attributes).
    mode:
        ``"float32"`` or ``"int8"`` (weight-only quantisation).
    """

    def __init__(self, model, mode: str = "float32") -> None:
        if mode not in LOWP_MODES:
            raise ConfigurationError(
                f"precision mode must be one of {LOWP_MODES}, got {mode!r}")
        for attr in ("embedding", "birnn", "head", "norm", "classifier"):
            if not hasattr(model, attr):
                raise ConfigurationError(
                    f"{type(model).__name__} is not a supported detector "
                    f"model for reduced-precision inference (missing "
                    f"{attr!r})")
        self.model = model
        self.mode = mode
        self._enriched = hasattr(model, "attr_birnn")
        self._weights: dict | None = None
        self._version: int | None = None

    # -- weight cache --------------------------------------------------------

    def _cast_matrix(self, array: np.ndarray) -> np.ndarray:
        value = np.asarray(array, dtype=np.float32)
        if self.mode == "int8":
            value = _quantize_int8(value)
        return value

    @staticmethod
    def _cast_vector(array: np.ndarray) -> np.ndarray:
        # Biases and normalisation terms stay float32 even in int8 mode
        # (quantising them buys nothing and costs accuracy).
        return np.asarray(array, dtype=np.float32)

    def _cast_stack(self, stacked) -> list[tuple]:
        cells = []
        for cell in stacked.cells:
            kind = {1: "rnn", 4: "lstm", 3: "gru"}[
                cell.w_x.data.shape[1] // cell.units]
            cells.append((kind, self._cast_matrix(cell.w_x.data),
                          self._cast_matrix(cell.w_h.data),
                          self._cast_vector(cell.b_h.data), cell.units))
        return cells

    def _cast_birnn(self, birnn) -> dict:
        return {"forward": self._cast_stack(birnn.forward_rnn),
                "backward": self._cast_stack(birnn.backward_rnn)}

    def _cast_dense(self, dense) -> tuple[np.ndarray, np.ndarray | None]:
        bias = (None if dense.bias is None
                else self._cast_vector(dense.bias.data))
        return self._cast_matrix(dense.kernel.data), bias

    def _refresh_weights(self) -> dict:
        model = self.model
        version = model.weights_version
        if self._weights is not None and version == self._version:
            return self._weights
        norm = model.norm
        weights = {
            "embedding": self._cast_matrix(model.embedding.weights.data),
            "birnn": self._cast_birnn(model.birnn),
            "head": self._cast_dense(model.head),
            "classifier": self._cast_dense(model.classifier),
            "norm_mean": self._cast_vector(norm.buffer("running_mean")),
            "norm_std": self._cast_vector(
                np.sqrt(norm.buffer("running_var") + norm.epsilon)),
            "norm_gamma": self._cast_vector(norm.gamma.data),
            "norm_beta": self._cast_vector(norm.beta.data),
        }
        if self._enriched:
            weights["attr_embedding"] = self._cast_matrix(
                model.attr_embedding.weights.data)
            weights["attr_birnn"] = self._cast_birnn(model.attr_birnn)
            weights["length_dense"] = self._cast_dense(model.length_dense)
        self._weights = weights
        self._version = version
        if telemetry.enabled():
            telemetry.get_registry().counter(
                "inference.precision.weight_casts").inc()
        return weights

    # -- forward -------------------------------------------------------------

    @staticmethod
    def _run_birnn(cells: dict, x: np.ndarray,
                   mask: np.ndarray | None) -> np.ndarray:
        n_steps = x.shape[1]
        finals = []
        for direction, stack in (("forward", cells["forward"]),
                                 ("backward", cells["backward"])):
            reverse = direction == "backward"
            sequence = x
            for kind, w_x, w_h, b_h, units in stack:
                sequence = _run_level(kind, sequence, w_x, w_h, b_h, units,
                                      mask, reverse)
            finals.append(sequence[:, 0 if reverse else n_steps - 1])
        return np.concatenate(finals, axis=-1)

    @staticmethod
    def _dense(x: np.ndarray, kernel_bias: tuple, activation: str
               ) -> np.ndarray:
        kernel, bias = kernel_bias
        out = x @ kernel
        if bias is not None:
            out = out + bias
        if activation == "relu":
            return np.maximum(out, 0.0)
        if activation == "softmax":
            return _softmax(out)
        return out

    def predict_proba(self, features: dict[str, np.ndarray]) -> np.ndarray:
        """Float32 ``(batch, 2)`` probabilities for encoded features."""
        weights = self._refresh_weights()
        model = self.model

        indices = np.asarray(features["values"], dtype=np.int64)
        mask = model.embedding.padding_mask(indices)
        if mask is not None and not mask.any(axis=1).all():
            mask = mask.copy()
            mask[~mask.any(axis=1), 0] = True
        embedded = weights["embedding"][indices]
        encoded = self._run_birnn(weights["birnn"], embedded, mask)

        if self._enriched:
            attr_indices = np.asarray(features["attributes"],
                                      dtype=np.int64).reshape(-1, 1)
            attr_embedded = weights["attr_embedding"][attr_indices]
            attr_encoded = self._run_birnn(weights["attr_birnn"],
                                           attr_embedded, None)
            length = np.asarray(features["length_norm"], dtype=np.float32)
            length_encoded = self._dense(length, weights["length_dense"],
                                         "relu")
            encoded = np.concatenate(
                [encoded, attr_encoded, length_encoded], axis=-1)

        hidden = self._dense(encoded, weights["head"], "relu")
        normalised = ((hidden - weights["norm_mean"]) / weights["norm_std"]
                      * weights["norm_gamma"] + weights["norm_beta"])
        return self._dense(normalised, weights["classifier"], "softmax")
