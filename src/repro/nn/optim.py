"""Gradient-descent optimizers.

The paper trains with RMSprop (Section 5.2); SGD-with-momentum and Adam
are provided for the ablation benchmarks and general use.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter


def clip_gradients(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped.  Clipping keeps long tanh-RNN sequences from blowing up on
    rare pathological batches.
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base class: holds the parameter list and the update entry point."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        params = list(parameters)
        if not params:
            raise ConfigurationError("optimizer received no parameters")
        self.parameters = params
        self.learning_rate = learning_rate

    def step(self) -> None:
        """Apply one update using the parameters' current gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    # -- checkpointing --------------------------------------------------------

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        """Per-parameter state arrays, keyed by slot name (subclass hook)."""
        return {}

    def _extra_state(self) -> dict:
        """Scalar state and hyperparameters (subclass hook)."""
        return {}

    def _load_extra(self, extra: dict) -> None:
        """Restore :meth:`_extra_state` output (subclass hook)."""

    def state_dict(self) -> dict:
        """Snapshot of the optimizer's full update state.

        Together with the model's ``state_dict`` and the shuffling RNG
        state this makes training resumable: re-applying the snapshot
        and continuing yields the identical weight trajectory.
        """
        return {
            "type": type(self).__name__,
            "learning_rate": float(self.learning_rate),
            "slots": {name: [array.copy() for array in arrays]
                      for name, arrays in self._slot_arrays().items()},
            "extra": dict(self._extra_state()),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Raises
        ------
        ConfigurationError
            When the snapshot came from a different optimizer type or
            its slot shapes do not match this optimizer's parameters.
        """
        if state.get("type") != type(self).__name__:
            raise ConfigurationError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {type(self).__name__!r}"
            )
        own = self._slot_arrays()
        slots = state.get("slots", {})
        if set(slots) != set(own):
            raise ConfigurationError(
                f"optimizer slot mismatch: saved {sorted(slots)}, "
                f"expected {sorted(own)}"
            )
        for name, arrays in own.items():
            saved = slots[name]
            if len(saved) != len(arrays):
                raise ConfigurationError(
                    f"slot {name!r} has {len(saved)} saved arrays "
                    f"for {len(arrays)} parameters"
                )
            for target, value in zip(arrays, saved):
                value = np.asarray(value)
                if target.shape != value.shape:
                    raise ConfigurationError(
                        f"slot {name!r} shape mismatch: "
                        f"{value.shape} vs {target.shape}"
                    )
                target[...] = value
        self.learning_rate = float(state["learning_rate"])
        self._load_extra(state.get("extra", {}))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def _extra_state(self) -> dict:
        return {"momentum": self.momentum}

    def _load_extra(self, extra: dict) -> None:
        self.momentum = float(extra.get("momentum", self.momentum))

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.data += velocity


class RMSprop(Optimizer):
    """RMSprop (the paper's optimizer).

    Keeps an exponential moving average of squared gradients and divides
    the step by its root, with Keras-default hyperparameters.
    """

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.001,
                 rho: float = 0.9, epsilon: float = 1e-7):
        super().__init__(parameters, learning_rate)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError(f"rho must be in (0, 1), got {rho}")
        self.rho = rho
        self.epsilon = epsilon
        self._mean_square = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"mean_square": self._mean_square}

    def _extra_state(self) -> dict:
        return {"rho": self.rho, "epsilon": self.epsilon}

    def _load_extra(self, extra: dict) -> None:
        self.rho = float(extra.get("rho", self.rho))
        self.epsilon = float(extra.get("epsilon", self.epsilon))

    def step(self) -> None:
        for param, mean_square in zip(self.parameters, self._mean_square):
            if param.grad is None:
                continue
            mean_square *= self.rho
            mean_square += (1.0 - self.rho) * param.grad ** 2
            param.data -= (self.learning_rate * param.grad
                           / (np.sqrt(mean_square) + self.epsilon))


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8):
        super().__init__(parameters, learning_rate)
        for name, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {beta}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"moment1": self._moment1, "moment2": self._moment2}

    def _extra_state(self) -> dict:
        return {"beta1": self.beta1, "beta2": self.beta2,
                "epsilon": self.epsilon, "step_count": self._step_count}

    def _load_extra(self, extra: dict) -> None:
        self.beta1 = float(extra.get("beta1", self.beta1))
        self.beta2 = float(extra.get("beta2", self.beta2))
        self.epsilon = float(extra.get("epsilon", self.epsilon))
        self._step_count = int(extra.get("step_count", self._step_count))

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            if param.grad is None:
                continue
            m1 *= self.beta1
            m1 += (1.0 - self.beta1) * param.grad
            m2 *= self.beta2
            m2 += (1.0 - self.beta2) * param.grad ** 2
            m1_hat = m1 / correction1
            m2_hat = m2 / correction2
            param.data -= self.learning_rate * m1_hat / (np.sqrt(m2_hat) + self.epsilon)
