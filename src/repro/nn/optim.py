"""Gradient-descent optimizers.

The paper trains with RMSprop (Section 5.2); SGD-with-momentum and Adam
are provided for the ablation benchmarks and general use.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter


def clip_gradients(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped.  Clipping keeps long tanh-RNN sequences from blowing up on
    rare pathological batches.
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base class: holds the parameter list and the update entry point."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        params = list(parameters)
        if not params:
            raise ConfigurationError("optimizer received no parameters")
        self.parameters = params
        self.learning_rate = learning_rate

    def step(self) -> None:
        """Apply one update using the parameters' current gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.data += velocity


class RMSprop(Optimizer):
    """RMSprop (the paper's optimizer).

    Keeps an exponential moving average of squared gradients and divides
    the step by its root, with Keras-default hyperparameters.
    """

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.001,
                 rho: float = 0.9, epsilon: float = 1e-7):
        super().__init__(parameters, learning_rate)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError(f"rho must be in (0, 1), got {rho}")
        self.rho = rho
        self.epsilon = epsilon
        self._mean_square = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, mean_square in zip(self.parameters, self._mean_square):
            if param.grad is None:
                continue
            mean_square *= self.rho
            mean_square += (1.0 - self.rho) * param.grad ** 2
            param.data -= (self.learning_rate * param.grad
                           / (np.sqrt(mean_square) + self.epsilon))


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8):
        super().__init__(parameters, learning_rate)
        for name, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {beta}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            if param.grad is None:
                continue
            m1 *= self.beta1
            m1 += (1.0 - self.beta1) * param.grad
            m2 *= self.beta2
            m2 += (1.0 - self.beta2) * param.grad ** 2
            m1_hat = m1 / correction1
            m2_hat = m2 / correction2
            param.data -= self.learning_rate * m1_hat / (np.sqrt(m2_hat) + self.epsilon)
