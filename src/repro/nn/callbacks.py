"""Keras-style training callbacks.

:class:`BestWeightsCheckpoint` implements the paper's model-selection rule
(Section 5.2): "After every epoch we saved the training weights if the
computed loss of the trainset was less than in the previous epochs", and
the best weights are restored for final evaluation.
"""

from __future__ import annotations

from collections.abc import Callable


import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module


class Callback:
    """Base class; hooks are no-ops unless overridden."""

    def on_train_begin(self, model: Module) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, model: Module, epoch: int, logs: dict[str, float]) -> None:
        """Called after every epoch with the epoch's metric logs."""

    def on_train_end(self, model: Module) -> None:
        """Called once after the last epoch."""

    def stop_requested(self) -> bool:
        """Whether training should halt after the current epoch."""
        return False

    def state_dict(self) -> dict:
        """Resumable snapshot of the callback's accumulated state.

        Values may be JSON-able scalars/lists, ``np.ndarray``, or one
        level of ``dict[str, np.ndarray]`` (the training-checkpoint
        format flattens exactly that much).  Stateless callbacks return
        the default empty dict and are skipped on resume.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (no-op by default)."""


class History(Callback):
    """Records every epoch's logs; drives the Figure 6/7 curves."""

    def __init__(self) -> None:
        self.epochs: list[int] = []
        self.logs: dict[str, list[float]] = {}

    def on_epoch_end(self, model: Module, epoch: int, logs: dict[str, float]) -> None:
        self.epochs.append(epoch)
        for key, value in logs.items():
            self.logs.setdefault(key, []).append(value)

    def series(self, key: str) -> list[float]:
        """The per-epoch series for one metric."""
        if key not in self.logs:
            raise ConfigurationError(
                f"no recorded metric {key!r}; available: {sorted(self.logs)}"
            )
        return list(self.logs[key])

    def state_dict(self) -> dict:
        return {"epochs": list(self.epochs),
                "logs": {key: list(values) for key, values in self.logs.items()}}

    def load_state_dict(self, state: dict) -> None:
        self.epochs = [int(e) for e in state.get("epochs", [])]
        self.logs = {key: list(values)
                     for key, values in state.get("logs", {}).items()}


class BestWeightsCheckpoint(Callback):
    """Keep the weights from the epoch with the best monitored metric.

    Parameters
    ----------
    monitor:
        Metric key from the epoch logs (default: training loss).
    mode:
        ``"min"`` (lower is better) or ``"max"``.
    restore_on_end:
        Restore the best snapshot when training finishes (the paper's
        behaviour).
    """

    def __init__(self, monitor: str = "loss", mode: str = "min",
                 restore_on_end: bool = True):
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.mode = mode
        self.restore_on_end = restore_on_end
        self.best_value: float | None = None
        self.best_epoch: int | None = None
        self._best_state: dict[str, np.ndarray] | None = None

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "min":
            return value < self.best_value
        return value > self.best_value

    def on_epoch_end(self, model: Module, epoch: int, logs: dict[str, float]) -> None:
        if self.monitor not in logs:
            raise ConfigurationError(
                f"monitored metric {self.monitor!r} absent from logs {sorted(logs)}"
            )
        value = logs[self.monitor]
        if self._improved(value):
            self.best_value = value
            self.best_epoch = epoch
            self._best_state = model.state_dict()

    def on_train_end(self, model: Module) -> None:
        if self.restore_on_end and self._best_state is not None:
            self._restore_state(model)

    def restore(self, model: Module) -> None:
        """Explicitly restore the best snapshot into ``model``."""
        if self._best_state is None:
            raise ConfigurationError("no snapshot recorded yet")
        self._restore_state(model)

    def state_dict(self) -> dict:
        state: dict = {"best_value": self.best_value,
                       "best_epoch": self.best_epoch}
        if self._best_state is not None:
            state["best_state"] = {name: array.copy()
                                   for name, array in self._best_state.items()}
        return state

    def load_state_dict(self, state: dict) -> None:
        self.best_value = state.get("best_value")
        best_epoch = state.get("best_epoch")
        self.best_epoch = None if best_epoch is None else int(best_epoch)
        best_state = state.get("best_state")
        self._best_state = (None if best_state is None else
                            {name: np.array(array, copy=True)
                             for name, array in best_state.items()})

    def _restore_state(self, model: Module) -> None:
        """Swap in the snapshot and bump the model's weights version.

        ``load_state_dict`` already bumps, but the restore path bumps
        explicitly as well: a checkpoint restore must never be able to
        serve stale :class:`~repro.inference.cache.PredictionCache`
        entries, even if the state-dict plumbing changes.
        """
        model.load_state_dict(self._best_state)
        model.mark_weights_updated()


class EarlyStopping(Callback):
    """Stop training when the monitored metric stops improving."""

    def __init__(self, monitor: str = "loss", mode: str = "min",
                 patience: int = 10, min_delta: float = 0.0):
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.mode = mode
        self.patience = patience
        self.min_delta = min_delta
        self.best_value: float | None = None
        self._stale_epochs = 0
        self._stop = False

    def on_epoch_end(self, model: Module, epoch: int, logs: dict[str, float]) -> None:
        value = logs.get(self.monitor)
        if value is None:
            return
        if self.best_value is None:
            improved = True
        elif self.mode == "min":
            improved = value < self.best_value - self.min_delta
        else:
            improved = value > self.best_value + self.min_delta
        if improved:
            self.best_value = value
            self._stale_epochs = 0
        else:
            self._stale_epochs += 1
            if self._stale_epochs >= self.patience:
                self._stop = True

    def stop_requested(self) -> bool:
        return self._stop

    def state_dict(self) -> dict:
        return {"best_value": self.best_value,
                "stale_epochs": self._stale_epochs,
                "stop": self._stop}

    def load_state_dict(self, state: dict) -> None:
        self.best_value = state.get("best_value")
        self._stale_epochs = int(state.get("stale_epochs", 0))
        self._stop = bool(state.get("stop", False))


class EpochEvaluator(Callback):
    """Injects extra metrics into each epoch's logs.

    Used by the experiment harness to record test accuracy per epoch for
    the Figure 6 and Figure 7 learning curves.

    Parameters
    ----------
    evaluate:
        Zero-argument callable returning ``{metric_name: value}``; invoked
        after every epoch with the model in its current state.
    """

    def __init__(self, evaluate: Callable[[], dict[str, float]]):
        self._evaluate = evaluate

    def on_epoch_end(self, model: Module, epoch: int, logs: dict[str, float]) -> None:
        was_training = model.training
        model.eval()
        try:
            logs.update(self._evaluate())
        finally:
            if was_training:
                model.train()
