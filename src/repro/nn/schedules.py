"""Learning-rate schedules.

The paper trains with a fixed RMSprop rate; these schedules support the
extension experiments (longer runs on the bigger synthetic datasets
benefit from decay) and round out the optimizer toolkit.  A schedule is
attached to an optimizer and stepped once per epoch, mutating
``optimizer.learning_rate`` in place.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.nn.callbacks import Callback
from repro.nn.module import Module
from repro.nn.optim import Optimizer


class Schedule:
    """Base class: maps an epoch index to a learning rate."""

    def __init__(self, base_rate: float):
        if base_rate <= 0:
            raise ConfigurationError(f"base_rate must be positive, got {base_rate}")
        self.base_rate = base_rate

    def rate_at(self, epoch: int) -> float:
        """Learning rate for the given (0-based) epoch."""
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """The paper's behaviour: a fixed rate."""

    def rate_at(self, epoch: int) -> float:
        return self.base_rate


class StepDecay(Schedule):
    """Multiply the rate by ``factor`` every ``step_epochs`` epochs."""

    def __init__(self, base_rate: float, factor: float = 0.5,
                 step_epochs: int = 30):
        super().__init__(base_rate)
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(f"factor must be in (0, 1], got {factor}")
        if step_epochs < 1:
            raise ConfigurationError(f"step_epochs must be >= 1, got {step_epochs}")
        self.factor = factor
        self.step_epochs = step_epochs

    def rate_at(self, epoch: int) -> float:
        return self.base_rate * self.factor ** (epoch // self.step_epochs)


class ExponentialDecay(Schedule):
    """``rate = base * exp(-decay * epoch)``."""

    def __init__(self, base_rate: float, decay: float = 0.01):
        super().__init__(base_rate)
        if decay < 0:
            raise ConfigurationError(f"decay must be >= 0, got {decay}")
        self.decay = decay

    def rate_at(self, epoch: int) -> float:
        return self.base_rate * math.exp(-self.decay * epoch)


class CosineAnnealing(Schedule):
    """Cosine decay from ``base_rate`` to ``min_rate`` over ``total_epochs``."""

    def __init__(self, base_rate: float, total_epochs: int,
                 min_rate: float = 0.0):
        super().__init__(base_rate)
        if total_epochs < 1:
            raise ConfigurationError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_rate < 0 or min_rate > base_rate:
            raise ConfigurationError(
                f"min_rate must be in [0, base_rate], got {min_rate}"
            )
        self.total_epochs = total_epochs
        self.min_rate = min_rate

    def rate_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_rate + (self.base_rate - self.min_rate) * cosine


class LearningRateScheduler(Callback):
    """Training callback applying a schedule to an optimizer per epoch.

    The rate for epoch ``e`` is applied *before* epoch ``e`` runs (via
    ``on_train_begin`` for epoch 0 and ``on_epoch_end`` of ``e - 1``).
    """

    def __init__(self, optimizer: Optimizer, schedule: Schedule):
        self.optimizer = optimizer
        self.schedule = schedule
        self.history: list[float] = []

    def on_train_begin(self, model: Module) -> None:
        self.optimizer.learning_rate = self.schedule.rate_at(0)
        self.history = [self.optimizer.learning_rate]

    def on_epoch_end(self, model: Module, epoch: int,
                     logs: dict[str, float]) -> None:
        logs["learning_rate"] = self.optimizer.learning_rate
        next_rate = self.schedule.rate_at(epoch + 1)
        self.optimizer.learning_rate = next_rate
        self.history.append(next_rate)

    def state_dict(self) -> dict:
        # The applied rate itself lives in the optimizer state; the
        # history is the per-epoch record needed to resume seamlessly.
        return {"history": list(self.history)}

    def load_state_dict(self, state: dict) -> None:
        self.history = [float(rate) for rate in state.get("history", [])]
