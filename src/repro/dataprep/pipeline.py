"""Steps 1-3 of the data-preparation pipeline (Figure 3).

Builds the long-format cell table ``df`` with the columns the paper
describes: ``id_``, ``attribute``, ``value_x`` (dirty), ``value_y``
(clean), ``label``, ``empty``, ``concat`` and ``length_norm``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataprep.dictionaries import AttributeDictionary, CharDictionary
from repro.errors import DataError
from repro.table import Table

#: Values longer than this are cut off (Section 4.1, step 3: needed for
#: hospital, movies and rayyan).
MAX_VALUE_LENGTH = 128


@dataclass(frozen=True)
class PreparedData:
    """Output of :func:`prepare`.

    Attributes
    ----------
    df:
        Long-format table with one row per cell and columns ``id_``,
        ``attribute``, ``value_x``, ``value_y``, ``label``, ``empty``,
        ``concat``, ``length_norm``.
    attributes:
        Attribute names in original column order.
    char_index:
        Character dictionary built over all ``value_x`` texts.
    attribute_index:
        Attribute dictionary for the metadata input.
    max_length:
        Longest (truncated) ``value_x`` in characters; the padded
        sequence length used by the models.
    """

    df: Table
    attributes: tuple[str, ...]
    char_index: CharDictionary
    attribute_index: AttributeDictionary
    max_length: int

    @property
    def n_tuples(self) -> int:
        """Number of distinct tuples (``id_`` values)."""
        return len(self.df.column("id_").unique())

    def tuple_ids(self) -> list[int]:
        """Distinct tuple ids in first-occurrence order."""
        return self.df.column("id_").unique()


def _normalise_cell(value: object) -> str:
    """Missing cells become the empty string; others are left-stripped text.

    The paper removes *preceding* white spaces during structure
    transformation (Figure 3, step 2).
    """
    if value is None:
        return ""
    return str(value).lstrip()


def structure_transformation(dirty: Table, clean: Table) -> tuple[Table, Table]:
    """Step 2: strip leading whitespace, add ``id_``, align column names.

    The dirty table's columns are renamed positionally to the clean
    table's names, exactly as the paper does to enable the merge.
    """
    if dirty.shape != clean.shape:
        raise DataError(
            f"dirty and clean tables must have the same shape, "
            f"got {dirty.shape} vs {clean.shape}"
        )
    if "id_" in clean.column_names:
        raise DataError("input tables must not already contain an 'id_' column")
    rename = dict(zip(dirty.column_names, clean.column_names))
    dirty = dirty.rename(rename)

    def clean_up(table: Table) -> Table:
        for name in table.column_names:
            table = table.map_column(name, _normalise_cell)
        return table.with_column("id_", range(table.n_rows))

    return clean_up(dirty), clean_up(clean)


def merge_to_long(dirty: Table, clean: Table,
                  max_value_length: int = MAX_VALUE_LENGTH) -> Table:
    """Step 3: reshape to long format, join, and derive the helper columns."""
    attributes = [name for name in clean.column_names if name != "id_"]
    dirty_long = dirty.melt(["id_"], attributes, var_name="attribute",
                            value_name="value")
    clean_long = clean.melt(["id_"], attributes, var_name="attribute",
                            value_name="value")
    df = dirty_long.merge(clean_long, on=["id_", "attribute"], how="inner")
    if df.n_rows != dirty_long.n_rows:
        raise DataError(
            "merge produced a different number of cells than the dirty table; "
            "duplicate (id_, attribute) pairs are not possible here"
        )
    df = df.map_column("value_x", lambda v: v[:max_value_length])
    df = df.map_column("value_y", lambda v: v[:max_value_length])
    df = df.with_computed(
        "label", lambda row: 0 if row["value_x"] == row["value_y"] else 1)
    df = df.with_computed("empty", lambda row: 1 if row["value_x"] == "" else 0)
    df = df.with_computed(
        "concat", lambda row: f"{row['attribute']}__{row['value_x']}")

    # length_norm: length of value_x relative to the longest value of the
    # same attribute (Figure 3, step 3).
    max_by_attr: dict[str, int] = {}
    for row in df.iter_rows():
        attr = row["attribute"]
        max_by_attr[attr] = max(max_by_attr.get(attr, 0), len(row["value_x"]))
    df = df.with_computed(
        "length_norm",
        lambda row: (len(row["value_x"]) / max_by_attr[row["attribute"]]
                     if max_by_attr[row["attribute"]] else 0.0),
    )
    return df


def prepare(dirty: Table, clean: Table,
            max_value_length: int = MAX_VALUE_LENGTH) -> PreparedData:
    """Run the full preparation pipeline on a (dirty, clean) table pair.

    Parameters
    ----------
    dirty, clean:
        Wide tables of equal shape; the dirty table's columns are aligned
        to the clean table's positionally.
    max_value_length:
        Truncation limit for cell values (the paper uses 128).

    Returns
    -------
    PreparedData
        The long-format cell table plus dictionaries and sequence length.
    """
    if max_value_length < 1:
        raise DataError(f"max_value_length must be >= 1, got {max_value_length}")
    dirty_t, clean_t = structure_transformation(dirty, clean)
    df = merge_to_long(dirty_t, clean_t, max_value_length=max_value_length)
    attributes = tuple(name for name in clean.column_names)
    values = df.column("value_x").values
    char_index = CharDictionary(values)
    attribute_index = AttributeDictionary(attributes)
    max_length = max((len(v) for v in values), default=1)
    return PreparedData(
        df=df,
        attributes=attributes,
        char_index=char_index,
        attribute_index=attribute_index,
        max_length=max(max_length, 1),
    )
