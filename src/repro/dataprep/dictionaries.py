"""Character and attribute dictionaries (Figure 3, step 4).

The character dictionary assigns each distinct character of the dirty
values an index from 1 upward; index 0 is the padding end-indicator used
to right-pad short sequences.  The attribute dictionary indexes attribute
names for the metadata input of ETSB-RNN.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import EncodingError

PAD_INDEX = 0


class CharDictionary:
    """Bidirectional character-to-index mapping with a reserved pad index.

    Parameters
    ----------
    texts:
        The corpus of cell values; every distinct character is indexed in
        first-occurrence order, starting at 1 (0 is padding).
    """

    def __init__(self, texts: Iterable[str]):
        index: dict[str, int] = {}
        for text in texts:
            for char in text:
                if char not in index:
                    index[char] = len(index) + 1
        self._char_to_index = index
        self._index_to_char = {i: c for c, i in index.items()}

    @property
    def n_chars(self) -> int:
        """Number of distinct characters (excluding padding)."""
        return len(self._char_to_index)

    @property
    def vocab_size(self) -> int:
        """Embedding-table size: distinct characters + the pad slot."""
        return len(self._char_to_index) + 1

    def __contains__(self, char: str) -> bool:
        return char in self._char_to_index

    def index_of(self, char: str) -> int:
        """Index of ``char``.

        Raises
        ------
        EncodingError
            For characters absent from the corpus the dictionary was
            built on.
        """
        try:
            return self._char_to_index[char]
        except KeyError:
            raise EncodingError(f"character {char!r} not in dictionary") from None

    def char_of(self, index: int) -> str:
        """Inverse lookup (pad index has no character)."""
        try:
            return self._index_to_char[index]
        except KeyError:
            raise EncodingError(f"index {index} not in dictionary") from None

    def encode(self, text: str, length: int,
               unknown: str = "error") -> np.ndarray:
        """Encode ``text`` as a zero-padded index array of ``length``.

        Parameters
        ----------
        text:
            Value to encode; must be at most ``length`` characters.
        length:
            Output length; the tail is padded with :data:`PAD_INDEX`.
        unknown:
            ``"error"`` raises on out-of-dictionary characters;
            ``"skip"`` drops them (used when scoring unseen data).
        """
        if unknown not in ("error", "skip"):
            raise EncodingError(f"unknown must be 'error' or 'skip', got {unknown!r}")
        if len(text) > length:
            raise EncodingError(
                f"value of length {len(text)} exceeds maximum {length}; "
                "truncate during preparation first"
            )
        indices = []
        for char in text:
            if char in self._char_to_index:
                indices.append(self._char_to_index[char])
            elif unknown == "error":
                raise EncodingError(f"character {char!r} not in dictionary")
        out = np.zeros(length, dtype=np.int64)
        out[:len(indices)] = indices
        return out

    def decode(self, indices: Iterable[int]) -> str:
        """Map indices back to text, stopping at the first pad index."""
        chars = []
        for index in indices:
            if index == PAD_INDEX:
                break
            chars.append(self.char_of(int(index)))
        return "".join(chars)


class AttributeDictionary:
    """Attribute-name-to-index mapping for the ETSB-RNN metadata input.

    Indices start at 1 so that index 0 can stay a neutral padding slot in
    the attribute embedding, mirroring the character dictionary.
    """

    def __init__(self, attributes: Iterable[str]):
        index: dict[str, int] = {}
        for attribute in attributes:
            if attribute not in index:
                index[attribute] = len(index) + 1
        if not index:
            raise EncodingError("attribute dictionary requires at least one attribute")
        self._attr_to_index = index
        self._index_to_attr = {i: a for a, i in index.items()}

    @property
    def n_attributes(self) -> int:
        """Number of attributes."""
        return len(self._attr_to_index)

    @property
    def vocab_size(self) -> int:
        """Embedding-table size: attributes + the pad slot."""
        return len(self._attr_to_index) + 1

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attr_to_index

    def index_of(self, attribute: str) -> int:
        """Index of ``attribute`` (raises for unknown names)."""
        try:
            return self._attr_to_index[attribute]
        except KeyError:
            raise EncodingError(f"attribute {attribute!r} not in dictionary") from None

    def attribute_of(self, index: int) -> str:
        """Inverse lookup."""
        try:
            return self._index_to_attr[index]
        except KeyError:
            raise EncodingError(f"index {index} not in dictionary") from None

    def names(self) -> list[str]:
        """Attribute names in index order."""
        return [self._index_to_attr[i] for i in range(1, len(self._index_to_attr) + 1)]
