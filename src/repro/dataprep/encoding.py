"""Step 4 of the pipeline: numeric encoding of the long-format cell table.

Produces the arrays the models consume: padded character-index sequences
(``values``), attribute indices (``attributes``) and normalised lengths
(``length_norm``), plus labels and bookkeeping columns for mapping
predictions back to cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataprep.pipeline import PreparedData
from repro.errors import DataError
from repro.inference.index import DedupIndex, build_dedup_index
from repro.table import Table

_REQUIRED_COLUMNS = ("id_", "attribute", "value_x", "label", "length_norm")


@dataclass(frozen=True)
class EncodedCells:
    """Model-ready arrays for a set of cells.

    Attributes
    ----------
    features:
        ``values`` -- ``(n, max_length)`` int64 padded index sequences;
        ``attributes`` -- ``(n,)`` int64 attribute indices;
        ``length_norm`` -- ``(n, 1)`` float ratios.
    labels:
        ``(n,)`` int64 cell labels (0 correct, 1 error).
    tuple_ids:
        ``(n,)`` int64 tuple id of each cell.
    attribute_names:
        Attribute name of each cell (parallel to rows).
    lengths:
        ``(n,)`` int64 true (unpadded) sequence length of each ``values``
        row, stored at encoding time so downstream consumers (bucketed
        batching, sorted inference chunking) never re-derive it from the
        padding.  ``None`` only for hand-built instances.
    dedup:
        Unique-cell index over the feature rows (first-occurrence
        representatives + inverse scatter map), computed at encoding time
        so the dedup-memoized inference engine never re-hashes the
        table.  ``None`` only for hand-built instances.
    """

    features: dict[str, np.ndarray]
    labels: np.ndarray
    tuple_ids: np.ndarray
    attribute_names: tuple[str, ...]
    lengths: np.ndarray | None = None
    dedup: DedupIndex | None = None

    @property
    def n_cells(self) -> int:
        """Number of encoded cells."""
        return int(self.labels.shape[0])

    def _attribute_name_array(self) -> np.ndarray:
        """The attribute names as an object ndarray (built once, memoised)."""
        cached = self.__dict__.get("_names_arr")
        if cached is None:
            cached = np.empty(len(self.attribute_names), dtype=object)
            cached[:] = self.attribute_names
            object.__setattr__(self, "_names_arr", cached)
        return cached

    def subset(self, indices: np.ndarray) -> EncodedCells:
        """Select a row subset (used for train/test splits).

        Every field is gathered with vectorised numpy indexing -- the
        attribute names through a memoised object-array gather -- so the
        hot arrays are copied without any per-row Python loop, and the
        unique-cell index is re-numbered to the subset (not rebuilt).
        """
        indices = np.asarray(indices)
        names = self._attribute_name_array()[indices]
        return EncodedCells(
            features={k: np.take(v, indices, axis=0)
                      for k, v in self.features.items()},
            labels=np.take(self.labels, indices, axis=0),
            tuple_ids=np.take(self.tuple_ids, indices, axis=0),
            attribute_names=tuple(names.tolist()),
            lengths=(None if self.lengths is None
                     else np.take(self.lengths, indices, axis=0)),
            dedup=None if self.dedup is None else self.dedup.subset(indices),
        )


def encode_cells(prepared: PreparedData, df: Table | None = None,
                 unknown: str = "error") -> EncodedCells:
    """Encode (a subset of) the prepared cell table into model arrays.

    Parameters
    ----------
    prepared:
        Pipeline output carrying the dictionaries and sequence length.
    df:
        Long-format table to encode; defaults to ``prepared.df``.  Must
        contain the pipeline's columns.
    unknown:
        Passed to the character dictionary: ``"error"`` (default) or
        ``"skip"`` for out-of-dictionary characters.
    """
    table = prepared.df if df is None else df
    for name in _REQUIRED_COLUMNS:
        if name not in table:
            raise DataError(f"encode_cells requires column {name!r}")
    n = table.n_rows
    values = np.zeros((n, prepared.max_length), dtype=np.int64)
    attributes = np.zeros(n, dtype=np.int64)
    length_norm = np.zeros((n, 1), dtype=np.float64)
    labels = np.zeros(n, dtype=np.int64)
    tuple_ids = np.zeros(n, dtype=np.int64)

    value_col = table.column("value_x").values
    attr_col = table.column("attribute").values
    label_col = table.column("label").values
    id_col = table.column("id_").values
    ratio_col = table.column("length_norm").values
    for i in range(n):
        values[i] = prepared.char_index.encode(
            value_col[i], prepared.max_length, unknown=unknown)
        attributes[i] = prepared.attribute_index.index_of(attr_col[i])
        length_norm[i, 0] = float(ratio_col[i])
        labels[i] = int(label_col[i])
        tuple_ids[i] = int(id_col[i])

    features = {
        "values": values,
        "attributes": attributes,
        "length_norm": length_norm,
    }
    return EncodedCells(
        features=features,
        labels=labels,
        tuple_ids=tuple_ids,
        attribute_names=tuple(attr_col),
        # Encoded characters are contiguous from position 0 and never map
        # to the pad index, so the true length is the non-pad count.
        lengths=np.count_nonzero(values, axis=1).astype(np.int64),
        # Unique-cell index over (attribute, value) pairs: the encoded
        # features determine -- and are determined by -- the pair, so
        # byte-identical rows are exactly the duplicate cells.
        dedup=build_dedup_index(features),
    )
