"""Train/test splitting by tuple id.

The paper labels 20 whole tuples: every cell of a selected tuple goes to
the trainset (20 tuples x n_attributes cells) and all remaining cells form
the testset (Section 5.2).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dataprep.encoding import EncodedCells, encode_cells
from repro.dataprep.pipeline import PreparedData
from repro.errors import DataError


@dataclass(frozen=True)
class TrainTestSplit:
    """Encoded train and test cell sets for one experiment run."""

    train: EncodedCells
    test: EncodedCells
    train_tuple_ids: tuple[int, ...]

    @property
    def train_size(self) -> int:
        """Number of training cells (tuples x attributes)."""
        return self.train.n_cells

    @property
    def test_size(self) -> int:
        """Number of test cells."""
        return self.test.n_cells


def split_by_tuple_ids(prepared: PreparedData,
                       train_ids: Sequence[int]) -> TrainTestSplit:
    """Split the prepared cells into train (selected tuples) and test (rest).

    Parameters
    ----------
    prepared:
        Pipeline output.
    train_ids:
        Tuple ids chosen by a trainset-selection algorithm; must be
        distinct and present in the data.
    """
    ids = list(train_ids)
    if not ids:
        raise DataError("train_ids must not be empty")
    if len(set(ids)) != len(ids):
        raise DataError("train_ids contains duplicates")
    known = set(prepared.tuple_ids())
    unknown = [i for i in ids if i not in known]
    if unknown:
        raise DataError(f"train_ids not present in data: {unknown}")

    encoded = encode_cells(prepared)
    train_set = set(ids)
    in_train = np.array([tid in train_set for tid in encoded.tuple_ids])
    train = encoded.subset(np.where(in_train)[0])
    test = encoded.subset(np.where(~in_train)[0])
    if test.n_cells == 0:
        raise DataError("test set is empty; choose fewer training tuples")
    return TrainTestSplit(train=train, test=test, train_tuple_ids=tuple(ids))
