"""The paper's data-preparation pipeline (Section 4.1, Figure 3).

Transforms a (dirty, clean) pair of wide tables into the long-format cell
table with labels, then encodes values and attribute metadata as padded
integer sequences for the neural networks:

1. **Structure transformation** -- strip leading whitespace, add the
   ``id_`` row number, align the dirty table's column names to the clean
   table's.
2. **Merge** -- reshape both tables to long format (one row per cell) and
   join on ``(id_, attribute)``, producing ``value_x`` (dirty),
   ``value_y`` (clean), the binary ``label``, the ``empty`` flag, the
   ``concat`` key used by DiverSet, and ``length_norm``.
3. **Dictionary generation** -- build the character dictionary
   (index 0 reserved for padding) and the attribute dictionary.
4. **Encoding** -- convert each cell to a zero-padded index sequence plus
   the attribute index and normalised length.
"""

from repro.dataprep.dictionaries import AttributeDictionary, CharDictionary
from repro.dataprep.encoding import EncodedCells, encode_cells
from repro.dataprep.pipeline import PreparedData, prepare
from repro.dataprep.splits import TrainTestSplit, split_by_tuple_ids

__all__ = [
    "CharDictionary",
    "AttributeDictionary",
    "PreparedData",
    "prepare",
    "EncodedCells",
    "encode_cells",
    "TrainTestSplit",
    "split_by_tuple_ids",
]
