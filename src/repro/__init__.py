"""repro: a reproduction of "Detecting Errors in Databases with
Bidirectional Recurrent Neural Networks" (Holzer & Stockinger, EDBT 2022).

Quickstart
----------
>>> from repro import ErrorDetector, load_dataset
>>> pair = load_dataset("hospital", n_rows=200)
>>> detector = ErrorDetector(architecture="etsb", n_label_tuples=20)
>>> detector.fit(pair)                          # doctest: +SKIP
>>> detector.evaluate().report                  # doctest: +SKIP

Subpackages
-----------
- :mod:`repro.models` -- TSB-RNN / ETSB-RNN and the ErrorDetector API
- :mod:`repro.inference` -- dedup-memoized inference engine and prediction cache
- :mod:`repro.sampling` -- RandomSet / RahaSet / DiverSet trainset selection
- :mod:`repro.dataprep` -- the Figure 3 preparation pipeline
- :mod:`repro.datasets` -- the six benchmark dataset generators
- :mod:`repro.baselines` -- from-scratch Raha-style and augmentation baselines
- :mod:`repro.experiments` -- harness reproducing every table and figure
- :mod:`repro.nn`, :mod:`repro.autograd` -- the neural-network substrate
- :mod:`repro.table` -- the relational table substrate
- :mod:`repro.metrics` -- classification metrics and run statistics
"""

from repro.datasets import load as load_dataset
from repro.inference import (
    DedupIndex,
    InferenceEngine,
    InferenceStats,
    PredictionCache,
)
from repro.models import (
    DetectionResult,
    ErrorDetector,
    ETSBRNN,
    ModelConfig,
    TrainingConfig,
    TSBRNN,
)
from repro.sampling import DiverSet, RahaSet, RandomSet
from repro.table import Table, read_csv, write_csv

__version__ = "1.0.0"

__all__ = [
    "ErrorDetector",
    "DetectionResult",
    "DedupIndex",
    "InferenceEngine",
    "InferenceStats",
    "PredictionCache",
    "TSBRNN",
    "ETSBRNN",
    "ModelConfig",
    "TrainingConfig",
    "DiverSet",
    "RahaSet",
    "RandomSet",
    "Table",
    "read_csv",
    "write_csv",
    "load_dataset",
    "__version__",
]
