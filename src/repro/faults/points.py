"""The registry of named injection points.

An injection point is a place in a hot path where
:func:`repro.faults.inject` is called with a point name and a small
context dict (epoch number, task index, ...).  The registry below is the
single source of truth: plans referencing an unknown point are rejected
at construction time, and ``repro faults list`` renders this table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InjectionPoint:
    """One instrumented site of the library.

    Attributes
    ----------
    name:
        Dotted identifier used by :class:`~repro.faults.plan.FaultSpec`.
    description:
        Where the site lives and what a fault there simulates.
    context:
        Context keys passed to ``inject`` at this site (usable in a
        spec's ``match`` filter).
    """

    name: str
    description: str
    context: tuple[str, ...] = ()


INJECTION_POINTS: dict[str, InjectionPoint] = {
    point.name: point
    for point in (
        InjectionPoint(
            "trainer.batch_step",
            "Trainer.fit, before each mini-batch's forward/backward/step "
            "(a fault here leaves the epoch half-applied).",
            ("epoch", "batch"),
        ),
        InjectionPoint(
            "trainer.epoch_end",
            "Trainer.fit, after an epoch's callbacks but before the "
            "epoch checkpoint is written (the harshest crash window: "
            "resume replays the whole epoch).",
            ("epoch",),
        ),
        InjectionPoint(
            "runner.task_start",
            "Experiment runner, before a (dataset, seed) task trains "
            "(simulates a worker dying on pickup).",
            ("task_index", "dataset", "seed", "attempt"),
        ),
        InjectionPoint(
            "runner.task_end",
            "Experiment runner, after a task trained but before its "
            "result is recorded (simulates losing a finished run).",
            ("task_index", "dataset", "seed", "attempt"),
        ),
        InjectionPoint(
            "cache.lookup",
            "PredictionCache.get, before the LRU lookup (simulates a "
            "flaky cache tier).",
            (),
        ),
        InjectionPoint(
            "dataset.generate",
            "Dataset registry load(), before generation (simulates "
            "unreadable source data).",
            ("dataset",),
        ),
        InjectionPoint(
            "parallel.broadcast",
            "SharedWeights.publish, after the shared-memory segment is "
            "created but before the weights are written (a kill here "
            "must not leak the segment).",
            ("version", "n_bytes"),
        ),
        InjectionPoint(
            "parallel.task",
            "SharedModelPool worker, before a scoring chunk runs "
            "(simulates a pool worker dying mid-batch).",
            ("chunk_index",),
        ),
    )
}


def describe_points() -> str:
    """Human-readable table of every injection point (CLI ``faults list``)."""
    lines = []
    for point in INJECTION_POINTS.values():
        ctx = f" [context: {', '.join(point.context)}]" if point.context else ""
        lines.append(f"{point.name}\n    {point.description}{ctx}")
    return "\n".join(lines)
