"""Deterministic fault injection for chaos testing.

The production-scale goal of this repository is a system whose long
sweeps (the paper's 10-run x 6-dataset x 2-architecture grid) survive
worker crashes and interruptions.  This package provides the proof
machinery: seeded :class:`FaultPlan`\\ s that raise, kill or delay at
named injection points across the training loop, the experiment runner,
the prediction cache and dataset generation, so the recovery layers
(epoch checkpointing, task retry, the completed-task journal) can be
exercised deterministically instead of hoped about.

Activation::

    from repro import faults

    plan = faults.FaultPlan([
        faults.FaultSpec("runner.task_start", "raise", at_hit=2),
    ])
    with faults.use_plan(plan):
        ...  # the second task pickup fails once, retry recovers

or, for process-pool workers and the CLI, ``REPRO_FAULTS=plan.json``
in the environment.  With no plan installed every ``inject`` site costs
one global load and one identity test.
"""

from repro.faults.plan import (
    ACTIONS,
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    WorkerKilled,
    active_plan,
    clear_plan,
    inject,
    install_plan,
    use_plan,
)
from repro.faults.points import INJECTION_POINTS, InjectionPoint, describe_points

__all__ = [
    "ACTIONS",
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_POINTS",
    "InjectionPoint",
    "WorkerKilled",
    "active_plan",
    "clear_plan",
    "describe_points",
    "inject",
    "install_plan",
    "use_plan",
]
