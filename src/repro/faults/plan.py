"""Deterministic fault plans and the ``inject`` hot-path hook.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` triggers over
the named injection points of :mod:`repro.faults.points`.  Hot paths call
:func:`inject("point", **context)`; with no plan installed that is one
global load and one ``is None`` test, so production code pays nothing.

Faults come in three actions:

* ``"raise"`` -- raise :class:`FaultInjected` (an ordinary ``Exception``):
  the recoverable failure the retry machinery is allowed to absorb;
* ``"kill"`` -- raise :class:`WorkerKilled` (a ``BaseException``): a
  simulated hard crash that no ``except Exception`` recovery path may
  swallow, exactly like a SIGKILL would end the process mid-step;
* ``"delay"`` -- sleep ``delay_seconds`` and continue (exercises
  timeouts and backoff without failing).

Plans activate programmatically (:func:`install_plan` / :func:`use_plan`)
or through the ``REPRO_FAULTS`` environment variable naming a JSON plan
file -- the environment route is how process-pool workers, which never
share the parent's interpreter state, pick the plan up.

Determinism: triggers depend only on the plan (its seed drives the
probabilistic specs) and the per-process sequence of ``inject`` calls,
never on wall clock or process ids, so a chaos run replays exactly.
"""

from __future__ import annotations

import json
import os
import time

from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.faults.points import INJECTION_POINTS

#: Environment variable naming a JSON plan file to activate in-process.
FAULTS_ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("raise", "kill", "delay")


class FaultInjected(Exception):
    """A recoverable injected failure (the ``"raise"`` action)."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` with the
        # formatted message; rebuild from (point, hit) instead so the
        # exception survives the process-pool result channel.
        return (type(self), (self.point, self.hit))


class WorkerKilled(BaseException):
    """A simulated hard crash (the ``"kill"`` action).

    Derives from ``BaseException`` on purpose: retry/except-Exception
    recovery must never absorb a kill, mirroring a real SIGKILL.
    """

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected kill at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit

    def __reduce__(self):
        return (type(self), (self.point, self.hit))


@dataclass(frozen=True)
class FaultSpec:
    """One trigger rule of a plan.

    Attributes
    ----------
    point:
        Injection point name (must exist in
        :data:`repro.faults.points.INJECTION_POINTS`).
    action:
        ``"raise"``, ``"kill"`` or ``"delay"``.
    at_hit:
        Fire exactly when the point's per-process hit counter equals this
        1-based value (``None``: no hit constraint).  Because the counter
        keeps advancing across retries, ``at_hit=1`` naturally means
        "fail the first attempt, succeed afterwards".
    probability:
        Fire with this probability per matching hit, drawn from the
        plan's seeded generator (``None``: deterministic).
    delay_seconds:
        Sleep duration for the ``"delay"`` action.
    match:
        Context equality filter, e.g. ``{"epoch": 3}`` or
        ``{"task_index": 2}``; only hits whose context matches every
        entry are eligible.
    max_triggers:
        Stop firing after this many triggers (``None``: unlimited).
    """

    point: str
    action: str
    at_hit: int | None = None
    probability: float | None = None
    delay_seconds: float = 0.0
    match: Mapping[str, Any] | None = None
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ConfigurationError(
                f"unknown injection point {self.point!r}; "
                f"available: {sorted(INJECTION_POINTS)}"
            )
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"action must be one of {ACTIONS}, got {self.action!r}"
            )
        if self.at_hit is not None and self.at_hit < 1:
            raise ConfigurationError(
                f"at_hit must be >= 1, got {self.at_hit}"
            )
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ConfigurationError(
                f"max_triggers must be >= 1, got {self.max_triggers}"
            )

    def matches(self, context: Mapping[str, Any]) -> bool:
        """Whether the hit's context passes this spec's ``match`` filter."""
        if not self.match:
            return True
        return all(context.get(key) == value
                   for key, value in self.match.items())


class FaultPlan:
    """A seeded, replayable set of fault triggers.

    Parameters
    ----------
    specs:
        The trigger rules.
    seed:
        Drives the probabilistic specs; two plans with equal specs and
        seed fire identically given the same ``inject`` call sequence.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.reset()

    def reset(self) -> None:
        """Clear hit counters and re-seed (a fresh replay of the plan)."""
        self._hits: dict[str, int] = {}
        self._triggers: list[int] = [0] * len(self.specs)
        self._rng = np.random.default_rng(self.seed)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached in this process."""
        return self._hits.get(point, 0)

    def triggers(self) -> tuple[int, ...]:
        """Per-spec trigger counts."""
        return tuple(self._triggers)

    def fire(self, point: str, context: Mapping[str, Any]) -> None:
        """Account one hit of ``point`` and apply any triggered faults."""
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        for index, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if (spec.max_triggers is not None
                    and self._triggers[index] >= spec.max_triggers):
                continue
            if spec.at_hit is not None and hit != spec.at_hit:
                continue
            if not spec.matches(context):
                continue
            if (spec.probability is not None
                    and self._rng.random() >= spec.probability):
                continue
            self._triggers[index] += 1
            _record_trigger(point, spec.action, hit)
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.action == "raise":
                raise FaultInjected(point, hit)
            else:
                raise WorkerKilled(point, hit)

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-able plan description (the ``REPRO_FAULTS`` file format)."""
        return {
            "seed": self.seed,
            "specs": [
                {key: value for key, value in asdict(spec).items()
                 if value is not None}
                for spec in self.specs
            ],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Reconstruct a plan from :meth:`to_json` output."""
        if not isinstance(payload, Mapping) or "specs" not in payload:
            raise ConfigurationError(
                "a fault plan needs a 'specs' list (and optional 'seed')"
            )
        specs = []
        for entry in payload["specs"]:
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise ConfigurationError(f"bad fault spec {entry}: {exc}") from None
        return cls(specs, seed=int(payload.get("seed", 0)))

    def save(self, path: str | Path) -> None:
        """Write the plan as a JSON file usable via ``REPRO_FAULTS``."""
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan written by :meth:`save`."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from None
        return cls.from_json(payload)

    def __repr__(self) -> str:
        return f"FaultPlan(n_specs={len(self.specs)}, seed={self.seed})"


def _record_trigger(point: str, action: str, hit: int) -> None:
    """Telemetry accounting of one fired fault."""
    if not telemetry.enabled():
        return
    registry = telemetry.get_registry()
    registry.counter("faults.injected").inc()
    registry.counter(f"faults.{action}").inc()
    registry.emit({"type": "fault", "point": point, "action": action,
                   "hit": hit})


# -- plan activation ----------------------------------------------------------

class _Unresolved:
    """Sentinel: the environment has not been consulted yet."""


_UNRESOLVED = _Unresolved()
_plan: FaultPlan | None | _Unresolved = _UNRESOLVED


def _resolve_env() -> FaultPlan | None:
    """Load the plan named by ``REPRO_FAULTS`` (once per process)."""
    global _plan
    path = os.environ.get(FAULTS_ENV_VAR)
    _plan = FaultPlan.load(path) if path else None
    return _plan


def install_plan(plan: FaultPlan | None) -> None:
    """Activate ``plan`` process-wide (``None`` deactivates)."""
    global _plan
    _plan = plan


def clear_plan(reset_env: bool = False) -> None:
    """Deactivate any plan; with ``reset_env`` the variable is re-read
    on the next :func:`inject` call (used by tests)."""
    global _plan
    _plan = _UNRESOLVED if reset_env else None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, resolving the environment if needed."""
    plan = _plan
    if isinstance(plan, _Unresolved):
        plan = _resolve_env()
    return plan


@contextmanager
def use_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    global _plan
    previous = _plan
    install_plan(plan)
    try:
        yield plan
    finally:
        _plan = previous


def inject(point: str, **context: Any) -> None:
    """Hot-path hook: apply any active fault for ``point``.

    With no plan installed (the production default) this is one global
    load and one identity test.
    """
    plan = _plan
    if plan is None:
        return
    if isinstance(plan, _Unresolved):
        plan = _resolve_env()
        if plan is None:
            return
    plan.fire(point, context)
