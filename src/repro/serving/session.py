"""Long-lived table sessions with incremental re-scoring.

A :class:`TableSession` holds one loaded table's encoded feature rows
and their current probabilities.  The initial ``load_table`` pays one
full scoring pass (micro-batched, dedup-memoized); afterwards an
``update`` of cell *(row, column)* recomputes **only the feature rows
whose encoder inputs include the edited cell** and serves every other
row from the scores already held -- the changed-cell fast path that the
warm :class:`~repro.inference.PredictionCache` makes nearly free when
the new value was seen before.

With the paper's encoders a cell's feature row depends only on the
cell's own value, attribute and length, so
:meth:`TableSession.affected_feature_rows` returns exactly one row; an
encoder with tuple- or column-context windows would widen that set, and
this method is the single place such a context map plugs in.  The <5%
re-scoring bound gated by ``BENCH_serve.json`` is asserted against the
``inference.*`` telemetry counters, not this method's return value, so
a future context-window encoder cannot silently break the contract.

Correctness: unchanged rows' inputs and the weights are unchanged, so
their held scores are byte-identical to what a full re-score would
produce, and the engine's batch-composition independence makes the
re-scored rows byte-identical too.  If the tenant's model was hot-
swapped since the last scoring pass the held scores are stale as a
whole; :meth:`update` detects the version change and transparently
falls back to a full re-score, keeping the "session scores == one-shot
scores under current weights" invariant at every version.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.table import Table


def _encode(detector, values: list[str], attributes: list[str]):
    from repro.models.serialization import encode_values_for
    features = encode_values_for(detector, values, attributes)
    # True (clipped) character counts; enables the engine's
    # sorted-by-length trimmed chunking, which is value-preserving.
    lengths = (features["values"] != 0).sum(axis=1).astype(np.int64)
    return features, np.maximum(lengths, 1)


class TableSession:
    """One scored table held resident for cheap cell updates.

    Parameters
    ----------
    name:
        Session key (daemon-level namespace).
    entry:
        The owning tenant's
        :class:`~repro.serving.registry.TenantModel`.
    table:
        The dirty table to score.
    batcher:
        The daemon's :class:`~repro.serving.batcher.MicroBatcher`; all
        scoring (initial and incremental) funnels through it.
    """

    def __init__(self, name: str, entry, table: Table, batcher):
        self.name = name
        self.entry = entry
        self.batcher = batcher
        detector = entry.detector
        known = set(detector.prepared.attributes)
        self.columns = [c for c in table.column_names if c in known]
        self.skipped = [c for c in table.column_names if c not in known]
        if not self.columns:
            raise ConfigurationError(
                "no column of this table matches the model's attributes; "
                f"model knows {sorted(known)}")
        self.n_table_rows = table.n_rows
        self._col_pos = {c: j for j, c in enumerate(self.columns)}
        self.values: list[str] = []
        self._attrs: list[str] = []
        for column in self.columns:
            for value in table.column(column).values:
                self.values.append("" if value is None else str(value))
                self._attrs.append(column)
        self.feedback: list[dict] = []
        self._lock = threading.RLock()
        self._full_rescore()

    # -- geometry -----------------------------------------------------------

    @property
    def n_feature_rows(self) -> int:
        """Total feature rows held (``n_table_rows * len(columns)``)."""
        return len(self.values)

    def feature_row(self, row: int, column: str) -> int:
        """The feature-row index of table cell ``(row, column)``."""
        if column not in self._col_pos:
            raise ConfigurationError(
                f"column {column!r} is not served by this session "
                f"(columns: {self.columns})")
        if not 0 <= row < self.n_table_rows:
            raise ConfigurationError(
                f"row {row} out of range [0, {self.n_table_rows})")
        return self._col_pos[column] * self.n_table_rows + row

    def affected_feature_rows(self, row: int, column: str) -> np.ndarray:
        """Feature rows whose encoder inputs include cell ``(row, column)``.

        The per-cell encoders condition only on the cell itself, so the
        context window of an edit is exactly its own feature row.  A
        context-aware encoder (tuple neighbours, column statistics)
        would override this to return the full window.
        """
        return np.asarray([self.feature_row(row, column)], dtype=np.int64)

    # -- scoring ------------------------------------------------------------

    def predictions(self) -> np.ndarray:
        """Current binary predictions (argmax of the held probabilities)."""
        with self._lock:
            return self.probabilities.argmax(axis=1).astype(np.int64)

    def flagged(self) -> list[tuple[int, str, str]]:
        """``(row, attribute, value)`` of every cell currently flagged."""
        with self._lock:
            predictions = self.probabilities.argmax(axis=1)
            return [(i % self.n_table_rows, self._attrs[i], self.values[i])
                    for i in np.flatnonzero(predictions == 1)]

    def _full_rescore(self) -> None:
        """Re-encode and re-score the whole table (lock held).

        Rebuilds the feature arrays wholesale from the current detector
        rather than writing into the held ones: a replace swap may have
        changed the encoder's ``max_length`` or attribute set, so the
        old arrays' shapes mean nothing under the new encoding.
        """
        detector = self.entry.detector
        known = set(detector.prepared.attributes)
        missing = [c for c in self.columns if c not in known]
        if missing:
            raise ConfigurationError(
                f"the model now serving tenant {self.entry.tenant!r} does "
                f"not know column(s) {missing} held by session "
                f"{self.name!r}; reload the session")
        self.features, self.lengths = _encode(detector, self.values,
                                              self._attrs)
        result = self.batcher.predict(self.entry.tenant, self.features,
                                      self.lengths)
        self.probabilities = np.array(result.probabilities, copy=True)
        self.scored_version = result.weights_version

    def _rescore(self, rows: np.ndarray) -> bool:
        """Re-encode and re-score ``rows`` in place (lock held).

        Returns ``False`` without touching any state when the current
        detector's encoding no longer matches the held arrays (a
        replace swap changed the row width under us); the caller must
        fall back to :meth:`_full_rescore`.
        """
        detector = self.entry.detector
        features, lengths = _encode(detector,
                                    [self.values[i] for i in rows],
                                    [self._attrs[i] for i in rows])
        if (features.keys() != self.features.keys()
                or any(features[name].shape[1:]
                       != self.features[name].shape[1:]
                       for name in features)):
            return False
        for name, part in features.items():
            self.features[name][rows] = part
        self.lengths[rows] = lengths
        result = self.batcher.predict(self.entry.tenant, features, lengths)
        self.probabilities[rows] = result.probabilities
        self.scored_version = result.weights_version
        return True

    def update(self, row: int, column: str, value: str | None) -> dict:
        """Apply one cell edit and re-score only its context window.

        Returns a record with the re-scored row count (the incremental
        contract: tiny next to :attr:`n_feature_rows`), the cell's new
        flag and probabilities, and whether a model swap forced a full
        re-score instead.
        """
        value = "" if value is None else str(value)
        with self._lock:
            index = self.feature_row(row, column)
            was_flagged = bool(self.probabilities[index].argmax() == 1)
            self.values[index] = value
            expected = self.scored_version
            full = self.entry.version != expected
            n_rescored = 0
            if not full:
                rows = self.affected_feature_rows(row, column)
                if self._rescore(rows):
                    n_rescored = int(rows.shape[0])
                    if self.scored_version != expected:
                        # A hot swap landed between the version check
                        # and the batch execution: the untouched rows
                        # are stale under the new weights, so pay the
                        # full pass after all.
                        full = True
                else:
                    # A replace swap changed the encoding width between
                    # the version check and the re-encode.
                    full = True
            if full:
                self._full_rescore()
                n_rescored += self.n_feature_rows
            now_flagged = bool(self.probabilities[index].argmax() == 1)
            record = {
                "row": int(row),
                "column": column,
                "flagged": now_flagged,
                "was_flagged": was_flagged,
                "probabilities": self.probabilities[index].tolist(),
                "n_rescored": n_rescored,
                "n_feature_rows": self.n_feature_rows,
                "full_rescore": full,
                "weights_version": self.scored_version,
            }
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("serve.updates").inc()
            registry.counter("serve.rescored_rows").inc(record["n_rescored"])
            if full:
                registry.counter("serve.full_rescores").inc()
        return record

    def add_feedback(self, row: int, column: str, label: int) -> int:
        """Record one user label for later retraining; returns the count."""
        if label not in (0, 1):
            raise ConfigurationError(f"label must be 0 or 1, got {label!r}")
        index = self.feature_row(row, column)
        with self._lock:
            self.feedback.append({
                "row": int(row), "column": column, "label": int(label),
                "value": self.values[index],
                "predicted": int(self.probabilities[index].argmax()),
            })
            count = len(self.feedback)
        if telemetry.enabled():
            telemetry.get_registry().counter("serve.feedback").inc()
        return count

    def stats(self) -> dict:
        with self._lock:
            return {
                "n_table_rows": self.n_table_rows,
                "columns": list(self.columns),
                "n_feature_rows": self.n_feature_rows,
                "n_flagged": int((self.probabilities.argmax(axis=1) == 1).sum()),
                "n_feedback": len(self.feedback),
                "weights_version": self.scored_version,
            }
