"""Online scoring service: the long-lived serving daemon.

The batch library scores tables one shot at a time; this package turns
it into a *service*.  :class:`ServingDaemon` listens on a local TCP
socket for JSON-lines requests (score / update / feedback / swap /
stats), coalesces concurrent score requests into one micro-batched
:class:`~repro.inference.InferenceEngine` forward via
:class:`MicroBatcher`, serves repeated cells from the warm
:class:`~repro.inference.PredictionCache`, re-scores *only* the feature
rows an edit touches (:class:`TableSession` incremental re-scoring),
and hot-swaps per-tenant models through :class:`ModelRegistry` with
zero downtime.  Admission control is a bounded queue: past it, requests
are shed with a 429-style rejection instead of queueing unboundedly.

Quick start::

    from repro.serving import ServingDaemon, ServingClient

    daemon = ServingDaemon(model_path="model.npz", port=0)
    daemon.start()
    with ServingClient("127.0.0.1", daemon.port) as client:
        reply = client.request({"op": "score", "cells": [
            {"attribute": "city", "value": "Bostom"}]})
    daemon.shutdown()

Everything is stdlib + numpy; the daemon is threaded (socketserver
front, one batcher thread per process) and all scoring for a tenant is
serialised on the batcher thread, which is what makes hot swaps safe:
a model publish can never interleave with a half-executed micro-batch.
"""

from repro.serving.batcher import BatcherStats, MicroBatcher, Overloaded
from repro.serving.client import ServingClient
from repro.serving.daemon import ServingDaemon
from repro.serving.registry import ModelRegistry, TenantModel
from repro.serving.session import TableSession

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "ModelRegistry",
    "Overloaded",
    "ServingClient",
    "ServingDaemon",
    "TableSession",
    "TenantModel",
]
