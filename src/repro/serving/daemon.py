"""The long-lived scoring daemon: a threaded JSON-lines TCP front.

:class:`ServingDaemon` binds a local socket and serves concurrent
clients with a thread per connection (``socketserver.ThreadingTCPServer``).
Handler threads never touch the network weights themselves: they parse,
validate and encode, then block on the
:class:`~repro.serving.batcher.MicroBatcher`, which coalesces every
concurrent request into deadline-bounded micro-batches on one scoring
thread.  Table state lives in named :class:`~repro.serving.session.TableSession`
objects so a later ``update`` re-scores only the edited cell's feature
rows; models live in the :class:`~repro.serving.registry.ModelRegistry`
and hot-swap with zero downtime on ``swap_model``.

Backpressure: the batcher's queue is bounded, and a request arriving
past the bound is rejected immediately with a 429-style reply
(``{"ok": false, "code": 429}``) and counted in ``serve.rejected`` --
load is shed at the door, keeping latency bounded for the requests that
are admitted.

Request latency (admission to reply serialisation) is observed into the
``serve.latency`` fixed-bucket histogram when telemetry is on;
``repro telemetry summarize`` renders its p50/p95/p99.
"""

from __future__ import annotations

import socketserver
import threading
import time

from pathlib import Path

from repro import telemetry
from repro.errors import ConfigurationError, DataError
from repro.serving import protocol
from repro.serving.batcher import MicroBatcher, Overloaded
from repro.serving.registry import DEFAULT_TENANT, ModelRegistry
from repro.serving.session import TableSession
from repro.table import Table, read_csv


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon: ServingDaemon = self.server.serving_daemon
        for line in self.rfile:
            if not line.strip():
                continue
            reply = daemon.handle_line(line)
            # "_close" is internal framing (reply, then drop the
            # connection); it must never reach the wire.
            close = bool(reply.pop("_close", False))
            try:
                self.wfile.write(protocol.encode(reply))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if close:
                return


class ServingDaemon:
    """Serve score / update / feedback requests over a local socket.

    Parameters
    ----------
    model_path, detector:
        The ``default`` tenant's model (archive path or in-memory
        detector); omit both to start empty and ``swap_model`` tenants
        in later.
    host, port:
        Bind address (``port=0`` picks a free port; read it back from
        :attr:`port`).
    max_batch_rows, batch_delay_ms, max_queue_rows, coalesce:
        Micro-batcher bounds (see
        :class:`~repro.serving.batcher.MicroBatcher`).
    cache_size, workers, precision:
        Per-tenant engine construction (see
        :class:`~repro.serving.registry.ModelRegistry`).
    """

    def __init__(self, model_path: "str | Path | None" = None,
                 detector=None, host: str = "127.0.0.1", port: int = 0,
                 max_batch_rows: int = 256, batch_delay_ms: float = 4.0,
                 max_queue_rows: int = 4096, coalesce: bool = True,
                 cache_size: int = 65536, workers: int = 0,
                 precision: str = "float64"):
        self.registry = ModelRegistry(cache_size=cache_size, workers=workers,
                                      precision=precision)
        if model_path is not None or detector is not None:
            self.registry.add(DEFAULT_TENANT, detector=detector,
                              path=model_path)
        self.batcher = MicroBatcher(self.registry,
                                    max_batch_rows=max_batch_rows,
                                    max_delay_s=batch_delay_ms / 1000.0,
                                    max_queue_rows=max_queue_rows,
                                    coalesce=coalesce)
        self.sessions: dict[str, TableSession] = {}
        self._sessions_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.n_requests = 0
        self.n_rejected = 0
        self.n_errors = 0
        self._started_at = time.monotonic()
        self._server = _Server((host, port), _Handler)
        self._server.serving_daemon = self
        self._server_thread: threading.Thread | None = None
        self._ops = {
            "ping": self._op_ping,
            "score": self._op_score,
            "load_table": self._op_load_table,
            "update": self._op_update,
            "feedback": self._op_feedback,
            "swap_model": self._op_swap_model,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }

    # -- lifecycle ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    def start(self) -> "ServingDaemon":
        """Start the batcher and the socket server threads."""
        self.batcher.start()
        if self._server_thread is None:
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-serve", daemon=True)
            self._server_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run blocking (the CLI daemon loop); returns after shutdown."""
        self.batcher.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self.close()

    def shutdown(self) -> None:
        """Stop accepting, drain the batcher, release engines."""
        self._server.shutdown()
        if self._server_thread is not None:
            self._server_thread.join()
            self._server_thread = None
        self.close()

    def close(self) -> None:
        self._server.server_close()
        self.batcher.close()
        self.registry.close()

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- dispatch -----------------------------------------------------------

    def handle_line(self, line: bytes) -> dict:
        """Parse and execute one request line; always returns a reply."""
        started = time.perf_counter()
        try:
            request = protocol.decode(line)
        except ValueError as exc:
            return self._count_error(
                protocol.error(protocol.BAD_REQUEST, f"bad request: {exc}"))
        op = request.get("op")
        handler = self._ops.get(op)
        if handler is None:
            return self._count_error(protocol.error(
                protocol.BAD_REQUEST,
                f"unknown op {op!r}; known: {list(self._ops)}"))
        with self._stats_lock:
            self.n_requests += 1
        try:
            reply = handler(request)
        except Overloaded as exc:
            with self._stats_lock:
                self.n_rejected += 1
            if telemetry.enabled():
                telemetry.get_registry().counter("serve.rejected").inc()
            return protocol.error(protocol.OVERLOADED, str(exc),
                                  retry=True)
        except KeyError as exc:
            message = exc.args[0] if exc.args else repr(exc)
            return self._count_error(
                protocol.error(protocol.NOT_FOUND, str(message)))
        except (ConfigurationError, DataError, FileNotFoundError) as exc:
            return self._count_error(
                protocol.error(protocol.BAD_REQUEST, str(exc)))
        except Exception as exc:  # noqa: BLE001 -- a request must not kill the daemon
            return self._count_error(protocol.error(
                protocol.INTERNAL, f"{type(exc).__name__}: {exc}"))
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("serve.requests").inc()
            registry.counter(f"serve.op.{op}").inc()
            registry.histogram("serve.latency").observe(
                time.perf_counter() - started)
        return reply

    def _count_error(self, reply: dict) -> dict:
        with self._stats_lock:
            self.n_errors += 1
        if telemetry.enabled():
            telemetry.get_registry().counter("serve.errors").inc()
        return reply

    # -- ops ----------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return protocol.ok(uptime_s=round(time.monotonic() - self._started_at,
                                          3),
                           tenants=list(self.registry.tenants()))

    def _entry(self, request: dict):
        tenant = request.get("tenant", DEFAULT_TENANT)
        try:
            return self.registry.get(tenant)
        except KeyError:
            # KeyError -> protocol.NOT_FOUND (the documented 404).
            raise KeyError(
                f"unknown tenant {tenant!r}; registered: "
                f"{list(self.registry.tenants())}") from None

    def _op_score(self, request: dict) -> dict:
        """Score ad-hoc cells: ``{"op": "score", "cells": [{"attribute",
        "value"}, ...]}`` -- the micro-batched hot path."""
        entry = self._entry(request)
        cells = request.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ConfigurationError(
                "score needs a non-empty 'cells' list of "
                "{attribute, value} objects")
        known = set(entry.detector.prepared.attributes)
        attributes, values = [], []
        for i, cell in enumerate(cells):
            if not isinstance(cell, dict) or "attribute" not in cell:
                raise ConfigurationError(
                    f"cells[{i}] must be an object with 'attribute' "
                    "and 'value'")
            if cell["attribute"] not in known:
                raise ConfigurationError(
                    f"cells[{i}]: the model never saw attribute "
                    f"{cell['attribute']!r} (knows {sorted(known)})")
            attributes.append(cell["attribute"])
            value = cell.get("value")
            values.append("" if value is None else str(value))
        from repro.serving.session import _encode
        features, lengths = _encode(entry.detector, values, attributes)
        result = self.batcher.predict(entry.tenant, features, lengths)
        predictions = result.probabilities.argmax(axis=1)
        if telemetry.enabled():
            telemetry.get_registry().counter("serve.scored_cells").inc(
                len(cells))
        return protocol.ok(
            flags=[int(p) for p in predictions],
            probabilities=[list(map(float, row))
                           for row in result.probabilities],
            weights_version=result.weights_version,
            batch_id=result.batch_id,
            batch_items=result.batch_items,
            batch_rows=result.batch_rows,
        )

    def _table_from_request(self, request: dict) -> Table:
        if "path" in request:
            # Real-file route: encoding/dialect sniffing, ragged-row
            # recovery and SQLite extraction (repro.io).  One file only;
            # multi-table SQLite databases need an explicit "table".
            from repro.io import read_file

            wanted = request.get("table")
            ingested = read_file(request["path"],
                                 table_names=[wanted] if wanted else None)
            if len(ingested) > 1:
                raise ConfigurationError(
                    f"{request['path']} holds {len(ingested)} tables "
                    f"({[t.name for t in ingested]}); pick one with 'table'")
            return ingested[0].table
        if "csv" in request:
            return read_csv(request["csv"])
        columns = request.get("columns")
        if not isinstance(columns, dict) or not columns:
            raise ConfigurationError(
                "load_table needs 'path' (a real file: sniffed CSV/TSV or "
                "SQLite), 'csv' (a UTF-8 CSV path) or 'columns' "
                "(name -> list of values)")
        return Table({name: [None if v is None else str(v) for v in vals]
                      for name, vals in columns.items()})

    def _op_load_table(self, request: dict) -> dict:
        """Register a table session and pay its initial scoring pass."""
        name = request.get("session")
        if not name or not isinstance(name, str):
            raise ConfigurationError("load_table needs a 'session' name")
        entry = self._entry(request)
        session = TableSession(name, entry, self._table_from_request(request),
                               self.batcher)
        with self._sessions_lock:
            self.sessions[name] = session
        flagged = session.flagged()
        return protocol.ok(
            session=name,
            n_table_rows=session.n_table_rows,
            n_feature_rows=session.n_feature_rows,
            columns=session.columns,
            skipped_columns=session.skipped,
            weights_version=session.scored_version,
            flagged=[{"row": int(r), "attribute": a, "value": v}
                     for r, a, v in flagged],
        )

    def _session(self, request: dict) -> TableSession:
        name = request.get("session")
        with self._sessions_lock:
            session = self.sessions.get(name)
        if session is None:
            with self._sessions_lock:
                known = list(self.sessions)
            # KeyError -> protocol.NOT_FOUND (the documented 404).
            raise KeyError(f"unknown session {name!r}; loaded: {known}")
        return session

    def _op_update(self, request: dict) -> dict:
        """Apply one cell edit; re-scores only the edit's context window."""
        session = self._session(request)
        for key in ("row", "column"):
            if key not in request:
                raise ConfigurationError(f"update needs {key!r}")
        record = session.update(int(request["row"]), str(request["column"]),
                                request.get("value"))
        return protocol.ok(**record)

    def _op_feedback(self, request: dict) -> dict:
        session = self._session(request)
        for key in ("row", "column", "label"):
            if key not in request:
                raise ConfigurationError(f"feedback needs {key!r}")
        count = session.add_feedback(int(request["row"]),
                                     str(request["column"]),
                                     int(request["label"]))
        return protocol.ok(n_feedback=count)

    def _op_swap_model(self, request: dict) -> dict:
        """Hot-swap (or register) a tenant's model from an archive path."""
        path = request.get("model")
        if not path:
            raise ConfigurationError(
                "swap_model needs 'model' (a detector archive path)")
        outcome = self.registry.publish(request.get("tenant", DEFAULT_TENANT),
                                        path=path)
        return protocol.ok(**outcome)

    def _op_stats(self, request: dict) -> dict:
        with self._sessions_lock:
            sessions = {name: session.stats()
                        for name, session in self.sessions.items()}
        with self._stats_lock:
            totals = {"n_requests": self.n_requests,
                      "n_rejected": self.n_rejected,
                      "n_errors": self.n_errors}
        return protocol.ok(
            uptime_s=round(time.monotonic() - self._started_at, 3),
            requests=totals,
            batcher=self.batcher.stats.as_dict(),
            tenants=self.registry.stats(),
            sessions=sessions,
        )

    def _op_shutdown(self, request: dict) -> dict:
        # Reply first, then stop the accept loop from a helper thread
        # (shutdown() blocks until serve_forever returns, and this
        # handler runs inside it).
        threading.Thread(target=self._server.shutdown, daemon=True).start()
        return {**protocol.ok(stopping=True), "_close": True}
