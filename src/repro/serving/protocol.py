"""Wire protocol of the serving daemon: JSON lines over a local socket.

One request is one JSON object on one line (``\\n``-terminated); the
daemon answers with one JSON object on one line.  Replies always carry
``"ok"``; failures add ``"code"`` (HTTP-flavoured: 400 bad request,
404 unknown session/tenant, 429 overloaded, 500 internal) and
``"error"``.  The framing is trivially stdlib (``makefile`` +
``json``), language-agnostic, and newline-safe because ``json.dumps``
escapes embedded newlines.
"""

from __future__ import annotations

import json

#: Failure codes, HTTP-flavoured so clients can pattern-match familiar
#: semantics (429 in particular is the load-shedding contract).
BAD_REQUEST = 400
NOT_FOUND = 404
OVERLOADED = 429
INTERNAL = 500

#: Operations the daemon understands.
OPS = ("ping", "score", "load_table", "update", "feedback",
       "swap_model", "stats", "shutdown")


def encode(message: dict) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one received line into a message dict.

    Raises
    ------
    ValueError
        When the line is not a JSON object.
    """
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object, got {type(message).__name__}")
    return message


def ok(**fields) -> dict:
    """A success reply."""
    return {"ok": True, **fields}


def error(code: int, message: str, **fields) -> dict:
    """A failure reply carrying an HTTP-flavoured code."""
    return {"ok": False, "code": int(code), "error": str(message), **fields}
