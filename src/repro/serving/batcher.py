"""Deadline- and size-bounded coalescing of concurrent score requests.

Each forward pass through the network has a fixed per-call overhead
(Python dispatch, chunk gathers, the RNN time loop's step machinery)
that dwarfs the marginal cost of an extra row, so scoring eight
concurrent one-cell requests as eight forwards wastes almost all of the
hardware.  :class:`MicroBatcher` fixes that: request threads
:meth:`~MicroBatcher.submit` their encoded feature rows and block on a
future; a single batcher thread drains the queue, concatenates
same-tenant requests into one feature batch (bounded by
``max_batch_rows`` and a ``max_delay_s`` deadline from the oldest
request's arrival), runs **one**
:meth:`~repro.inference.InferenceEngine.predict_proba`, and scatters
the probability slices back to the waiting futures.

Because the engine's per-row outputs are independent of batch
composition (the duplicate-pad invariant; see
:func:`repro.inference.engine.pad_single_row`), coalescing is
value-preserving: a row's probabilities are byte-identical whether it
was scored alone or packed with 255 strangers.

All scoring for a tenant funnels through the one batcher thread, under
the tenant's swap lock -- that serialisation is what makes the
registry's hot swap safe (a publish can never interleave with a
half-executed micro-batch) and keeps the engine's reusable scratch
buffers single-threaded.

Admission control is a bounded queue: once ``max_queue_rows`` rows are
waiting, :meth:`~MicroBatcher.submit` raises :class:`Overloaded`
instead of queueing -- the daemon translates that into a 429-style
rejection, shedding load at the door rather than collapsing under it.
"""

from __future__ import annotations

import threading
import time

from collections import deque
from collections.abc import Mapping
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError


class Overloaded(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the queue is full."""


@dataclass(frozen=True)
class BatchResult:
    """One request's slice of a micro-batch's output.

    Attributes
    ----------
    probabilities:
        ``(n_request_rows, n_classes)`` float64 probabilities.
    weights_version:
        The model version every row of the batch was scored under
        (constant across a batch by construction).
    batch_id:
        Monotonic id of the executed batch; requests coalesced together
        share it.
    batch_items, batch_rows:
        How many requests / feature rows the executed batch carried.
    """

    probabilities: np.ndarray
    weights_version: int
    batch_id: int
    batch_items: int
    batch_rows: int


@dataclass
class BatcherStats:
    """Python-level counters (single-writer: the batcher thread)."""

    n_batches: int = 0
    n_items: int = 0
    n_rows: int = 0
    n_rejected: int = 0
    max_queued_rows: int = 0

    @property
    def mean_batch_items(self) -> float:
        """Requests coalesced per executed batch (1.0 = no batching win)."""
        return self.n_items / self.n_batches if self.n_batches else 0.0

    def as_dict(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "n_items": self.n_items,
            "n_rows": self.n_rows,
            "n_rejected": self.n_rejected,
            "max_queued_rows": self.max_queued_rows,
            "mean_batch_items": round(self.mean_batch_items, 3),
        }


@dataclass
class _Item:
    tenant: str
    features: dict[str, np.ndarray]
    lengths: np.ndarray | None
    n_rows: int
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)


class MicroBatcher:
    """Coalesce concurrent prediction requests into engine micro-batches.

    Parameters
    ----------
    registry:
        The :class:`~repro.serving.registry.ModelRegistry` providing the
        per-tenant engine (and the swap lock held during execution).
    max_batch_rows:
        Size bound: a batch closes as soon as this many rows are
        waiting.  A single oversized request (e.g. an initial full-table
        scoring) still executes as its own atomic batch.
    max_delay_s:
        Deadline bound: a batch closes at latest this long after its
        oldest request arrived.  The batcher also closes early when the
        queue stops growing for a quarter-deadline, so closed-loop
        request bursts pay far less than the full deadline.
    max_queue_rows:
        Admission bound: beyond this many queued rows,
        :meth:`submit` raises :class:`Overloaded`.
    coalesce:
        ``False`` executes every request as its own batch (the
        per-request baseline arm of ``BENCH_serve.json``).
    """

    def __init__(self, registry, max_batch_rows: int = 256,
                 max_delay_s: float = 0.004,
                 max_queue_rows: int = 4096,
                 coalesce: bool = True):
        if max_batch_rows < 1:
            raise ConfigurationError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}")
        if max_delay_s < 0:
            raise ConfigurationError(
                f"max_delay_s must be >= 0, got {max_delay_s}")
        if max_queue_rows < 1:
            raise ConfigurationError(
                f"max_queue_rows must be >= 1, got {max_queue_rows}")
        self._registry = registry
        self.max_batch_rows = max_batch_rows
        self.max_delay_s = max_delay_s
        self.max_queue_rows = max_queue_rows
        self.coalesce = coalesce
        self.stats = BatcherStats()
        self._queue: deque[_Item] = deque()
        self._queued_rows = 0
        self._cond = threading.Condition()
        self._stop = False
        self._batch_id = 0
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MicroBatcher":
        """Start the batcher thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._run,
                                            name="repro-batcher", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Drain the queue, stop the thread and join it."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- submission ---------------------------------------------------------

    def submit(self, tenant: str, features: Mapping[str, np.ndarray],
               lengths: np.ndarray | None = None) -> Future:
        """Enqueue one request; returns a future of :class:`BatchResult`.

        Raises
        ------
        Overloaded
            When ``max_queue_rows`` rows are already waiting (the
            admission-control bound) or the batcher is shut down.
        """
        if not features:
            raise ConfigurationError("at least one feature array is required")
        n_rows = int(next(iter(features.values())).shape[0])
        if n_rows == 0:
            raise ConfigurationError("cannot submit an empty request")
        item = _Item(tenant=tenant, features=dict(features),
                     lengths=None if lengths is None
                     else np.asarray(lengths).reshape(-1),
                     n_rows=n_rows)
        with self._cond:
            if self._stop:
                raise Overloaded("batcher is shut down")
            if self._queued_rows + n_rows > self.max_queue_rows \
                    and self._queued_rows > 0:
                self.stats.n_rejected += 1
                raise Overloaded(
                    f"{self._queued_rows} rows queued "
                    f"(bound {self.max_queue_rows}); shedding load")
            self._queue.append(item)
            self._queued_rows += n_rows
            self.stats.max_queued_rows = max(self.stats.max_queued_rows,
                                             self._queued_rows)
            self._cond.notify_all()
        return item.future

    def predict(self, tenant: str, features: Mapping[str, np.ndarray],
                lengths: np.ndarray | None = None) -> BatchResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(tenant, features, lengths).result()

    # -- the batcher thread -------------------------------------------------

    def _tenant_rows_queued(self, tenant: str) -> int:
        return sum(item.n_rows for item in self._queue
                   if item.tenant == tenant)

    def _collect(self) -> list[_Item]:
        """Block until a batch is due, then drain and return it.

        Returns an empty list only at shutdown with an empty queue.
        Must run on the batcher thread.
        """
        with self._cond:
            while not self._queue:
                if self._stop:
                    return []
                self._cond.wait()
            first = self._queue[0]
            if self.coalesce:
                deadline = first.enqueued_at + self.max_delay_s
                # Close early once the queue stops growing: a burst of
                # closed-loop clients arrives within a fraction of the
                # deadline, and holding their batch open any longer
                # buys nothing but latency.
                quiet_slice = self.max_delay_s / 4 or 0.0005
                while not self._stop:
                    rows = self._tenant_rows_queued(first.tenant)
                    if rows >= self.max_batch_rows:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    before = len(self._queue)
                    self._cond.wait(timeout=min(quiet_slice, remaining))
                    if len(self._queue) == before:
                        break
            # Drain same-tenant requests FIFO up to the size bound (the
            # first request always ships, even when oversized).
            batch: list[_Item] = []
            rows = 0
            kept: deque[_Item] = deque()
            while self._queue:
                item = self._queue.popleft()
                if item.tenant != first.tenant:
                    kept.append(item)
                    continue
                if batch and rows + item.n_rows > self.max_batch_rows:
                    kept.append(item)
                    continue
                batch.append(item)
                rows += item.n_rows
                if not self.coalesce:
                    break
            kept.extend(self._queue)
            self._queue = kept
            self._queued_rows -= rows
            if self._queue:
                self._cond.notify_all()
            return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Item]) -> None:
        tenant = batch[0].tenant
        try:
            entry = self._registry.get(tenant)
        except KeyError as exc:
            for item in batch:
                item.future.set_exception(exc)
            return
        try:
            if len(batch) == 1:
                features = batch[0].features
                lengths = batch[0].lengths
            else:
                features = {
                    name: np.concatenate(
                        [item.features[name] for item in batch], axis=0)
                    for name in batch[0].features
                }
                parts = [item.lengths for item in batch]
                lengths = (None if any(p is None for p in parts)
                           else np.concatenate(parts))
            total_rows = sum(item.n_rows for item in batch)
            # The tenant's swap lock pins one weights version for the
            # whole batch: a concurrent publish blocks until the batch
            # completes, so a micro-batch can never mix old and new
            # weights.
            with entry.lock:
                version = entry.version
                probabilities = entry.engine.predict_proba(features,
                                                           lengths=lengths)
            self._batch_id += 1
            self.stats.n_batches += 1
            self.stats.n_items += len(batch)
            self.stats.n_rows += total_rows
            if telemetry.enabled():
                registry = telemetry.get_registry()
                registry.counter("serve.batches").inc()
                registry.counter("serve.batch_items").inc(len(batch))
                registry.counter("serve.batch_rows").inc(total_rows)
            offset = 0
            for item in batch:
                item.future.set_result(BatchResult(
                    probabilities=probabilities[offset:offset + item.n_rows],
                    weights_version=version,
                    batch_id=self._batch_id,
                    batch_items=len(batch),
                    batch_rows=total_rows,
                ))
                offset += item.n_rows
        except BaseException as exc:  # noqa: BLE001 -- fulfil every waiter
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
