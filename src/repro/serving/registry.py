"""Per-tenant model registry with zero-downtime hot swap.

Each tenant owns one :class:`TenantModel`: a loaded detector (for its
encoding dictionaries), a long-lived
:class:`~repro.inference.InferenceEngine`, and the tenant's cross-call
:class:`~repro.inference.PredictionCache` -- the cache outlives model
swaps, so its "flush exactly once per weights version" contract
(:meth:`~repro.inference.PredictionCache.sync_version`) is what keeps
warm entries from ever leaking across versions.

Hot swap (:meth:`ModelRegistry.publish`) comes in two flavours:

* **in-place** -- the new archive has the same architecture, state-dict
  layout and encoding dictionaries, so the new weights are loaded into
  the *existing* model object with ``load_state_dict``.  That bumps
  ``Module.weights_version``, which is the single signal every
  downstream consumer already honours: the prediction cache flushes on
  its next lookup, a :class:`~repro.nn.parallel.SharedWeights` mirror
  republishes lazily, and a :class:`~repro.nn.parallel.SharedModelPool`
  has its forked workers reload from shared memory -- no pool restart,
  no downtime.
* **replace** -- anything else (different architecture, vocabulary or
  shapes) swaps in a freshly built engine around the new model, still
  sharing the tenant's cache.  The new model's ``weights_version`` is
  forced strictly past the old entry's, so the version-keyed cache and
  every session's swap detection see the replacement even when both
  models report the same archive-load version.

Either way the publish happens under the tenant's swap lock, the same
lock the :class:`~repro.serving.batcher.MicroBatcher` holds while
executing a micro-batch: a swap waits for the in-flight batch, and the
next batch sees the new version atomically.  No request is ever scored
half-old, half-new.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.errors import ConfigurationError
from repro.inference import InferenceEngine, PredictionCache

#: The tenant implicitly used by single-model daemons.
DEFAULT_TENANT = "default"


@dataclass
class TenantModel:
    """One tenant's servable model state.

    Attributes
    ----------
    tenant:
        Registry key.
    detector:
        The loaded :class:`~repro.models.ErrorDetector` (dictionaries +
        model; used for encoding new values).
    engine:
        The serving :class:`~repro.inference.InferenceEngine` (dedup +
        cache fast path around ``detector.model``).
    cache:
        The tenant's cross-call prediction cache; survives swaps.
    lock:
        Swap lock: held by the batcher for the duration of each
        micro-batch and by :meth:`ModelRegistry.publish` for the swap.
    swaps:
        How many publishes this tenant has absorbed.
    source:
        Path of the most recently published archive (``None`` for
        in-memory detectors).
    """

    tenant: str
    detector: object
    engine: InferenceEngine
    cache: PredictionCache
    lock: threading.RLock = field(default_factory=threading.RLock)
    swaps: int = 0
    source: str | None = None

    @property
    def version(self) -> int:
        """The served model's current ``weights_version``."""
        return int(getattr(self.engine.model, "weights_version", 0))

    def stats(self) -> dict:
        return {
            "version": self.version,
            "swaps": self.swaps,
            "source": self.source,
            "cache": self.cache.stats(),
            "inference": self.engine.total_stats.as_dict(),
        }


def _dictionary_signature(detector) -> tuple:
    """What must match for two detectors to encode identically."""
    prepared = detector.prepared
    from repro.models.serialization import _dictionary_chars
    return (detector.architecture,
            _dictionary_chars(prepared.char_index),
            tuple(prepared.attributes),
            int(prepared.max_length))


class ModelRegistry:
    """Tenant name -> servable model, with hot swap.

    Parameters
    ----------
    cache_size:
        Per-tenant :class:`~repro.inference.PredictionCache` capacity.
    workers, precision, worker_mode:
        Engine construction defaults (see
        :class:`~repro.inference.InferenceEngine`).
    """

    def __init__(self, cache_size: int = 65536, workers: int = 0,
                 precision: str = "float64", worker_mode: str = "thread"):
        self.cache_size = cache_size
        self.workers = workers
        self.precision = precision
        self.worker_mode = worker_mode
        self._tenants: dict[str, TenantModel] = {}
        self._lock = threading.RLock()

    def _load(self, detector=None, path: "str | Path | None" = None):
        if (detector is None) == (path is None):
            raise ConfigurationError(
                "provide exactly one of detector= or path=")
        if detector is None:
            from repro.models.serialization import load_detector
            detector = load_detector(path)
        if detector.model is None or detector.prepared is None:
            raise ConfigurationError("cannot register an unfitted detector")
        return detector

    def _build_engine(self, detector, cache: PredictionCache) -> InferenceEngine:
        detector.model.eval()
        return InferenceEngine(detector.model, cache=cache,
                               workers=self.workers,
                               precision=self.precision,
                               worker_mode=self.worker_mode)

    # -- lookup -------------------------------------------------------------

    def get(self, tenant: str) -> TenantModel:
        """The tenant's entry; raises ``KeyError`` for unknown tenants."""
        with self._lock:
            return self._tenants[tenant]

    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._tenants

    def stats(self) -> dict:
        with self._lock:
            entries = dict(self._tenants)
        return {tenant: entry.stats() for tenant, entry in entries.items()}

    # -- registration and hot swap ------------------------------------------

    def add(self, tenant: str = DEFAULT_TENANT, detector=None,
            path: "str | Path | None" = None) -> TenantModel:
        """Register a new tenant (use :meth:`publish` to swap later).

        Raises
        ------
        ConfigurationError
            When the tenant already exists.
        """
        loaded = self._load(detector, path)
        with self._lock:
            if tenant in self._tenants:
                raise ConfigurationError(
                    f"tenant {tenant!r} already registered; "
                    "use publish() to hot-swap")
            cache = PredictionCache(capacity=self.cache_size)
            entry = TenantModel(
                tenant=tenant, detector=loaded,
                engine=self._build_engine(loaded, cache), cache=cache,
                source=None if path is None else str(path))
            self._tenants[tenant] = entry
        return entry

    def publish(self, tenant: str, detector=None,
                path: "str | Path | None" = None) -> dict:
        """Hot-swap a tenant's model with zero downtime.

        Unknown tenants are registered instead (publish-to-create).
        Returns ``{"tenant", "version", "mode", "swaps"}`` where
        ``mode`` is ``"created"``, ``"in-place"`` or ``"replace"``.
        """
        loaded = self._load(detector, path)
        with self._lock:
            entry = self._tenants.get(tenant)
            if entry is None:
                entry = self.add(tenant, detector=loaded)
                return {"tenant": tenant, "version": entry.version,
                        "mode": "created", "swaps": entry.swaps}
        # The swap lock serialises against in-flight micro-batches (the
        # publish waits for the running batch, and every later batch
        # sees the new weights version atomically) and against
        # concurrent publishes to the same tenant: the in-place
        # decision below must be taken against the detector actually
        # being replaced, not a snapshot another publish already
        # swapped out.
        with entry.lock:
            in_place = (_dictionary_signature(loaded)
                        == _dictionary_signature(entry.detector))
            if in_place:
                state = loaded.model.state_dict()
                current = entry.detector.model.state_dict()
                in_place = (state.keys() == current.keys()
                            and all(state[k].shape == current[k].shape
                                    for k in state))
            if in_place:
                # load_state_dict bumps weights_version -- the one
                # signal that flushes the prediction cache (exactly
                # once, on its next sync) and makes SharedWeights /
                # SharedModelPool workers republish lazily.
                entry.detector.model.load_state_dict(
                    loaded.model.state_dict())
                entry.detector.model.eval()
            else:
                # Force the served version to increase strictly.  Every
                # archive-loaded model sits at weights_version 1 (one
                # load_state_dict from 0), so swapping archive A for an
                # architecturally different archive B would otherwise
                # leave entry.version unchanged -- and the shared
                # PredictionCache (keyed by version) would serve A's
                # probabilities as B's, while sessions' swap detection
                # never fired.
                old_version = entry.version
                model = loaded.model
                if model.weights_version <= old_version:
                    model._weights_version = old_version
                    model.mark_weights_updated()
                entry.detector = loaded
                entry.engine = self._build_engine(loaded, entry.cache)
            entry.swaps += 1
            if path is not None:
                entry.source = str(path)
            version = entry.version
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("serve.swaps").inc()
            registry.emit({"type": "model_swap", "tenant": tenant,
                           "version": version,
                           "mode": "in-place" if in_place else "replace"})
        return {"tenant": tenant, "version": version,
                "mode": "in-place" if in_place else "replace",
                "swaps": entry.swaps}

    def close(self) -> None:
        """Release every tenant's engine resources."""
        with self._lock:
            entries = list(self._tenants.values())
        for entry in entries:
            entry.engine.close()
