"""Minimal blocking client for the serving daemon's JSON-lines protocol.

One persistent connection, one request in flight at a time (an internal
lock serialises concurrent callers on the same client; the load
generator opens one client per simulated user instead).
"""

from __future__ import annotations

import socket
import threading

from repro.serving import protocol


class ServingClient:
    """Talk to a :class:`~repro.serving.daemon.ServingDaemon`.

    Parameters
    ----------
    host, port:
        The daemon's bind address.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "ServingClient":
        """Open the connection (idempotent; ``request`` calls it lazily)."""
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            if self._sock is not None:
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServingClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """Send one request and block for its reply.

        Raises
        ------
        ConnectionError
            When the daemon hangs up before replying.
        """
        with self._lock:
            self.connect()
            self._sock.sendall(protocol.encode(payload))
            line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.decode(line)
