"""Error repair: the paper's "ultimate goal" (Section 6).

The conclusion names integration with HoloClean/Baran-style repair as
future work: "The ultimate goal, however, is not only to detect errors
but also to correct them."  This subpackage provides a pragmatic repair
layer over any per-cell error mask (from ETSB-RNN, the Raha baseline, or
ground truth):

* :class:`MajorityGroupRepairer` -- replace a flagged cell with the
  majority value of its duplicate-record or FD group (the Flights /
  Hospital repair);
* :class:`FormatRepairer` -- re-format a flagged value into the
  column's dominant character pattern where a safe transformation
  exists (strip suffixes/thousands separators, re-pad leading zeros);
* :class:`FrequentValueRepairer` -- fall back to the column's most
  frequent value in low-cardinality (categorical) columns;
* :class:`RepairPipeline` -- chain repairers, apply the first confident
  suggestion per cell, and report repair accuracy against a clean table.
"""

from repro.repair.repairers import (
    FormatRepairer,
    FrequentValueRepairer,
    MajorityGroupRepairer,
    Repair,
    Repairer,
)
from repro.repair.pipeline import RepairPipeline, repair_accuracy

__all__ = [
    "Repair",
    "Repairer",
    "MajorityGroupRepairer",
    "FormatRepairer",
    "FrequentValueRepairer",
    "RepairPipeline",
    "repair_accuracy",
]
