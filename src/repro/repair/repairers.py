"""Individual repair strategies.

Each repairer proposes a :class:`Repair` for a flagged cell or abstains
(returns ``None``).  Repairers are fitted on the *dirty* table only --
at repair time no clean table exists; the clean table is used solely to
score repairs afterwards.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.baselines.strategies import character_pattern
from repro.errors import DataError
from repro.table import Table


@dataclass(frozen=True)
class Repair:
    """A proposed cell repair."""

    row: int
    attribute: str
    old_value: str
    new_value: str
    repairer: str
    confidence: float


class Repairer:
    """Base class: fit on the dirty table, then suggest cell repairs."""

    name = "repairer"

    def fit(self, dirty: Table) -> "Repairer":
        """Learn column statistics from the dirty table."""
        raise NotImplementedError

    def suggest(self, row: int, attribute: str, value: str) -> Repair | None:
        """Propose a repair for one flagged cell, or abstain."""
        raise NotImplementedError


class MajorityGroupRepairer(Repairer):
    """Repair from the majority value of the cell's record group.

    Groups rows by the given key columns (a discovered record key or FD
    determinant); a flagged cell in a multi-row group is repaired to the
    group's majority value for that column.  This is the fusion repair
    the paper sketches for Flights.
    """

    name = "majority_group"

    def __init__(self, key_columns: tuple[str, ...]):
        if not key_columns:
            raise DataError("key_columns must not be empty")
        self.key_columns = tuple(key_columns)
        self._majorities: dict[tuple, dict[str, tuple[str, float]]] = {}
        self._row_keys: list[tuple] = []

    def fit(self, dirty: Table) -> "MajorityGroupRepairer":
        from repro.dedup.groups import DuplicateGroups
        groups = DuplicateGroups(dirty, self.key_columns)
        self._majorities = {}
        for key, indices in groups.groups().items():
            if len(indices) < 2:
                continue
            per_column: dict[str, tuple[str, float]] = {}
            for name in dirty.column_names:
                if name in self.key_columns:
                    continue
                counts: dict[str, int] = {}
                for i in indices:
                    value = dirty.column(name)[i]
                    if value in (None, ""):
                        continue
                    counts[str(value)] = counts.get(str(value), 0) + 1
                if counts:
                    winner = max(counts, key=counts.get)
                    per_column[name] = (winner, counts[winner] / len(indices))
            self._majorities[key] = per_column
        key_cols = [dirty.column(c).values for c in self.key_columns]
        self._row_keys = [tuple(col[i] for col in key_cols)
                          for i in range(dirty.n_rows)]
        return self

    def suggest(self, row: int, attribute: str, value: str) -> Repair | None:
        key = self._row_keys[row] if row < len(self._row_keys) else None
        per_column = self._majorities.get(key, {})
        if attribute not in per_column:
            return None
        majority, share = per_column[attribute]
        if majority == value:
            return None  # the cell already holds the majority value
        return Repair(row=row, attribute=attribute, old_value=value,
                      new_value=majority, repairer=self.name,
                      confidence=share)


class FormatRepairer(Repairer):
    """Re-format a value into its column's dominant character pattern.

    Learns the majority :func:`character_pattern` per column and applies
    safe, invertible transformations to flagged cells whose pattern
    deviates: dropping thousands separators, stripping a trailing
    non-numeric suffix from a numeric column, removing a trailing
    ``".0"``, or re-padding leading zeros to the column's modal length.
    """

    name = "format"

    def __init__(self, min_pattern_share: float = 0.5,
                 fixed_length_share: float = 0.9):
        self.min_pattern_share = min_pattern_share
        self.fixed_length_share = fixed_length_share
        self._dominant_pattern: dict[str, str] = {}
        self._modal_length: dict[str, int] = {}
        self._fixed_length: dict[str, int] = {}

    def fit(self, dirty: Table) -> "FormatRepairer":
        for name in dirty.column_names:
            values = [str(v) for v in dirty.column(name).values
                      if v not in (None, "")]
            if not values:
                continue
            pattern_counts: dict[str, int] = {}
            for value in values:
                pattern = character_pattern(value)
                pattern_counts[pattern] = pattern_counts.get(pattern, 0) + 1
            dominant = max(pattern_counts, key=pattern_counts.get)
            if pattern_counts[dominant] / len(values) >= self.min_pattern_share:
                self._dominant_pattern[name] = dominant
            length_counts: dict[int, int] = {}
            for value in values:
                length_counts[len(value)] = length_counts.get(len(value), 0) + 1
            modal = max(length_counts, key=length_counts.get)
            self._modal_length[name] = modal
            # Columns where nearly every value shares one length (ZIP
            # codes, state codes): a shorter digit value is a stripped
            # leading zero even though its character pattern conforms.
            if length_counts[modal] / len(values) >= self.fixed_length_share:
                self._fixed_length[name] = modal
        return self

    def _transformations(self, value: str, attribute: str):
        yield value.replace(",", "")                     # '379,998' -> '379998'
        match = re.match(r"^([\d.]+)\s*\D+$", value)
        if match:
            yield match.group(1)                         # '12.0 oz' -> '12.0'
        if value.endswith(".0"):
            yield value[:-2]                             # '8.0' -> '8'
        if value.endswith("%"):
            yield value[:-1]                             # '0.061%' -> '0.061'
        modal = self._modal_length.get(attribute, 0)
        if value.isdigit() and len(value) < modal:
            yield value.zfill(modal)                     # '1907' -> '01907'

    def suggest(self, row: int, attribute: str, value: str) -> Repair | None:
        dominant = self._dominant_pattern.get(attribute)
        if not value or dominant is None:
            return None
        if character_pattern(value) == dominant:
            # Pattern conforms, but a short digit value in a fixed-length
            # column is a stripped leading zero ('1907' in a ZIP column).
            fixed = self._fixed_length.get(attribute)
            if fixed and value.isdigit() and len(value) < fixed:
                return Repair(row=row, attribute=attribute, old_value=value,
                              new_value=value.zfill(fixed),
                              repairer=self.name, confidence=0.8)
            return None
        for candidate in self._transformations(value, attribute):
            if candidate != value and character_pattern(candidate) == dominant:
                return Repair(row=row, attribute=attribute, old_value=value,
                              new_value=candidate, repairer=self.name,
                              confidence=0.9)
        return None


class FrequentValueRepairer(Repairer):
    """Fallback: the most frequent value of a low-cardinality column.

    Only meaningful for categorical domains (states, booleans); columns
    whose distinct-value ratio exceeds ``max_cardinality_ratio`` are
    skipped, and the suggestion's confidence is the value's share.
    """

    name = "frequent_value"

    def __init__(self, max_cardinality_ratio: float = 0.1):
        self.max_cardinality_ratio = max_cardinality_ratio
        self._most_frequent: dict[str, tuple[str, float]] = {}

    def fit(self, dirty: Table) -> "FrequentValueRepairer":
        for name in dirty.column_names:
            values = [str(v) for v in dirty.column(name).values
                      if v not in (None, "")]
            if not values:
                continue
            counts: dict[str, int] = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            if len(counts) / len(values) > self.max_cardinality_ratio:
                continue
            winner = max(counts, key=counts.get)
            self._most_frequent[name] = (winner, counts[winner] / len(values))
        return self

    def suggest(self, row: int, attribute: str, value: str) -> Repair | None:
        if attribute not in self._most_frequent:
            return None
        winner, share = self._most_frequent[attribute]
        if winner == value:
            return None
        return Repair(row=row, attribute=attribute, old_value=value,
                      new_value=winner, repairer=self.name,
                      confidence=share * 0.5)  # a weak prior, ranked last
