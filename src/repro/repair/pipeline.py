"""The repair pipeline: apply ranked repair suggestions to flagged cells."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.repair.repairers import Repair, Repairer
from repro.table import Table


@dataclass(frozen=True)
class RepairOutcome:
    """Result of running the pipeline over a table."""

    repaired: Table
    applied: tuple[Repair, ...]
    unrepaired: tuple[tuple[int, str], ...]

    @property
    def n_applied(self) -> int:
        """Number of cells changed."""
        return len(self.applied)


class RepairPipeline:
    """Chain of repairers applied to a per-cell error mask.

    For every flagged cell each repairer may propose a repair; the
    highest-confidence proposal above ``min_confidence`` wins.  Cells
    without a confident proposal are left unchanged and reported in
    :attr:`RepairOutcome.unrepaired` (a repair system must know what it
    could not fix).

    Parameters
    ----------
    repairers:
        Ordered repairers; order breaks confidence ties.
    min_confidence:
        Proposals below this confidence are discarded.
    """

    def __init__(self, repairers: Sequence[Repairer],
                 min_confidence: float = 0.5):
        if not repairers:
            raise DataError("RepairPipeline needs at least one repairer")
        self.repairers = list(repairers)
        self.min_confidence = min_confidence

    def run(self, dirty: Table, error_mask: np.ndarray) -> RepairOutcome:
        """Fit the repairers on ``dirty`` and repair the flagged cells."""
        error_mask = np.asarray(error_mask, dtype=bool)
        if error_mask.shape != dirty.shape:
            raise DataError(
                f"error mask shape {error_mask.shape} does not match "
                f"table shape {dirty.shape}"
            )
        for repairer in self.repairers:
            repairer.fit(dirty)

        columns = {name: list(dirty.column(name).values)
                   for name in dirty.column_names}
        applied: list[Repair] = []
        unrepaired: list[tuple[int, str]] = []
        for j, attribute in enumerate(dirty.column_names):
            for i in np.where(error_mask[:, j])[0]:
                value = columns[attribute][i]
                value = "" if value is None else str(value)
                proposals = [
                    p for p in (r.suggest(int(i), attribute, value)
                                for r in self.repairers)
                    if p is not None and p.confidence >= self.min_confidence
                ]
                if not proposals:
                    unrepaired.append((int(i), attribute))
                    continue
                best = max(proposals, key=lambda p: p.confidence)
                columns[attribute][i] = best.new_value
                applied.append(best)
        return RepairOutcome(
            repaired=Table(columns),
            applied=tuple(applied),
            unrepaired=tuple(unrepaired),
        )


def repair_accuracy(outcome: RepairOutcome, clean: Table) -> float:
    """Fraction of applied repairs that produced the ground-truth value."""
    if not outcome.applied:
        return 0.0
    correct = sum(
        1 for repair in outcome.applied
        if str(clean.column(repair.attribute)[repair.row]).lstrip()
        == repair.new_value
    )
    return correct / len(outcome.applied)
