"""The :class:`Table` type: an ordered collection of equal-length columns.

Tables are immutable value objects.  All transforming methods return a new
table, which makes the data-preparation pipeline (Figure 3 of the paper)
easy to reason about and to test step by step.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.table.column import Column

Row = dict[str, Any]


def _sort_key(value: Any) -> tuple[int, Any]:
    """Total order over heterogeneous cells: missing first, then by type."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


class Table:
    """An immutable relational table.

    Parameters
    ----------
    columns:
        Mapping from column name to an iterable of cell values.  All
        columns must have the same length.
    """

    __slots__ = ("_columns", "_n_rows")

    def __init__(self, columns: Mapping[str, Iterable[Any]] | None = None):
        cols: dict[str, Column] = {}
        n_rows: int | None = None
        for name, values in (columns or {}).items():
            col = values if isinstance(values, Column) else Column(name, values)
            if col.name != name:
                col = col.rename(name)
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise SchemaError(
                    f"column {name!r} has length {len(col)}, expected {n_rows}"
                )
            cols[name] = col
        self._columns = cols
        self._n_rows = n_rows or 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]],
                  column_names: Sequence[str] | None = None) -> Table:
        """Build a table from a sequence of row dictionaries.

        Missing keys become ``None``.  Column order follows
        ``column_names`` when given, otherwise first-seen order.
        """
        if column_names is None:
            names: list[str] = []
            for row in rows:
                for key in row:
                    if key not in names:
                        names.append(key)
        else:
            names = list(column_names)
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls(data)

    @classmethod
    def empty(cls, column_names: Sequence[str]) -> Table:
        """An empty (zero-row) table with the given columns."""
        return cls({name: [] for name in column_names})

    # -- basic accessors -------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self._n_rows, len(self._columns))

    @property
    def column_names(self) -> list[str]:
        """Column names in table order."""
        return list(self._columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises
        ------
        SchemaError
            If no such column exists.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self._n_rows

    def row(self, index: int) -> Row:
        """Return row ``index`` as a ``{column: value}`` dict."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over rows as dicts."""
        for i in range(self._n_rows):
            yield {name: col[i] for name, col in self._columns.items()}

    def to_rows(self) -> list[Row]:
        """Materialise all rows as a list of dicts."""
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list[Any]]:
        """Return ``{column: [values...]}`` with fresh lists."""
        return {name: list(col.values) for name, col in self._columns.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (self.column_names == other.column_names
                and all(self._columns[n] == other._columns[n] for n in self._columns))

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {len(self._columns)} cols: {self.column_names})"

    def preview(self, n: int = 10) -> str:
        """A plain-text rendering of the first ``n`` rows."""
        names = self.column_names
        head = [self.row(i) for i in range(min(n, self._n_rows))]
        widths = {c: max(len(c), *(len(str(r[c])) for r in head)) if head else len(c)
                  for c in names}
        lines = [" | ".join(c.ljust(widths[c]) for c in names)]
        lines.append("-+-".join("-" * widths[c] for c in names))
        for r in head:
            lines.append(" | ".join(str(r[c]).ljust(widths[c]) for c in names))
        if self._n_rows > n:
            lines.append(f"... ({self._n_rows - n} more rows)")
        return "\n".join(lines)

    # -- column-level transformations -----------------------------------------

    def select(self, names: Sequence[str]) -> Table:
        """Return a table with only ``names``, in the given order."""
        return Table({name: self.column(name) for name in names})

    def drop(self, names: Sequence[str]) -> Table:
        """Return a table without the given columns."""
        doomed = set(names)
        missing = doomed - set(self._columns)
        if missing:
            raise SchemaError(f"cannot drop unknown columns: {sorted(missing)}")
        return Table({n: c for n, c in self._columns.items() if n not in doomed})

    def rename(self, mapping: Mapping[str, str]) -> Table:
        """Return a table with columns renamed per ``mapping``."""
        unknown = set(mapping) - set(self._columns)
        if unknown:
            raise SchemaError(f"cannot rename unknown columns: {sorted(unknown)}")
        return Table({mapping.get(n, n): c.rename(mapping.get(n, n))
                      for n, c in self._columns.items()})

    def with_column(self, name: str, values: Iterable[Any]) -> Table:
        """Return a table with ``name`` added (or replaced)."""
        data = dict(self._columns)
        data[name] = Column(name, values)
        return Table(data)

    def with_computed(self, name: str, fn: Callable[[Row], Any]) -> Table:
        """Return a table with ``name`` computed per-row by ``fn``."""
        return self.with_column(name, (fn(row) for row in self.iter_rows()))

    def map_column(self, name: str, fn: Callable[[Any], Any]) -> Table:
        """Return a table with ``fn`` applied to every cell of ``name``."""
        return self.with_column(name, self.column(name).map(fn))

    # -- row-level transformations ---------------------------------------------

    def take(self, indices: Sequence[int]) -> Table:
        """Return a table with the rows at ``indices`` (order preserved)."""
        return Table({n: c.take(indices) for n, c in self._columns.items()})

    def head(self, n: int) -> Table:
        """The first ``n`` rows."""
        return self.take(range(min(n, self._n_rows)))

    def filter(self, predicate: Callable[[Row], bool]) -> Table:
        """Return the rows for which ``predicate(row)`` is truthy."""
        indices = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.take(indices)

    def filter_mask(self, mask: Sequence[bool]) -> Table:
        """Return the rows where ``mask`` is ``True``."""
        if len(mask) != self._n_rows:
            raise SchemaError(
                f"mask length {len(mask)} does not match row count {self._n_rows}"
            )
        return self.take([i for i, keep in enumerate(mask) if keep])

    def filter_in(self, name: str, allowed: Iterable[Any]) -> Table:
        """Rows whose ``name`` cell is a member of ``allowed``."""
        allowed_set = set(allowed)
        values = self.column(name).values
        return self.take([i for i, v in enumerate(values) if v in allowed_set])

    def filter_not_in(self, name: str, banned: Iterable[Any]) -> Table:
        """Rows whose ``name`` cell is *not* a member of ``banned``."""
        banned_set = set(banned)
        values = self.column(name).values
        return self.take([i for i, v in enumerate(values) if v not in banned_set])

    def sort_by(self, names: Sequence[str], reverse: bool = False) -> Table:
        """Return a table stably sorted by the given columns."""
        cols = [self.column(n).values for n in names]
        order = sorted(
            range(self._n_rows),
            key=lambda i: tuple(_sort_key(c[i]) for c in cols),
            reverse=reverse,
        )
        return self.take(order)

    def distinct(self, names: Sequence[str] | None = None) -> Table:
        """Return the first occurrence of each distinct key combination.

        When ``names`` is ``None``, full rows are de-duplicated.
        """
        keys = names if names is not None else self.column_names
        cols = [self.column(n).values for n in keys]
        seen: set[tuple[Any, ...]] = set()
        indices: list[int] = []
        for i in range(self._n_rows):
            key = tuple(c[i] for c in cols)
            if key not in seen:
                seen.add(key)
                indices.append(i)
        return self.take(indices)

    def concat(self, other: Table) -> Table:
        """Stack ``other`` below this table (schemas must match)."""
        if self.column_names != other.column_names:
            raise SchemaError(
                "cannot concat tables with different schemas: "
                f"{self.column_names} vs {other.column_names}"
            )
        return Table({
            n: list(self._columns[n].values) + list(other._columns[n].values)
            for n in self._columns
        })

    # -- reshaping ----------------------------------------------------------------

    def melt(self, id_vars: Sequence[str], value_vars: Sequence[str] | None = None,
             var_name: str = "attribute", value_name: str = "value") -> Table:
        """Reshape from wide to long format.

        Every row becomes ``len(value_vars)`` rows of
        ``(id_vars..., attribute, value)``.  This is the reshape the paper's
        merge step uses to put each cell of the wide table on its own row.
        """
        if value_vars is None:
            value_vars = [n for n in self.column_names if n not in set(id_vars)]
        for name in list(id_vars) + list(value_vars):
            self.column(name)  # validate existence
        out: dict[str, list[Any]] = {n: [] for n in id_vars}
        out[var_name] = []
        out[value_name] = []
        id_cols = {n: self.column(n).values for n in id_vars}
        val_cols = {n: self.column(n).values for n in value_vars}
        for i in range(self._n_rows):
            for attr in value_vars:
                for n in id_vars:
                    out[n].append(id_cols[n][i])
                out[var_name].append(attr)
                out[value_name].append(val_cols[attr][i])
        return Table(out)

    def pivot(self, index: str, columns: str, values: str,
              column_order: Sequence[str] | None = None) -> Table:
        """Reshape from long to wide format (the inverse of :meth:`melt`).

        One output row per distinct ``index`` value (first-seen order);
        one output column per distinct ``columns`` value plus the index
        column itself.  Missing combinations become ``None``; duplicate
        combinations keep the last value.

        Parameters
        ----------
        index:
            Column identifying the output row (e.g. ``id_``).
        columns:
            Column whose values become output column names.
        values:
            Column supplying the cell values.
        column_order:
            Explicit output column order; defaults to first-seen order.
        """
        index_col = self.column(index).values
        name_col = self.column(columns).values
        value_col = self.column(values).values
        row_order: list[Any] = []
        seen_rows: set[Any] = set()
        names: list[str] = list(column_order) if column_order else []
        cells: dict[tuple[Any, Any], Any] = {}
        for key, name, value in zip(index_col, name_col, value_col):
            if key not in seen_rows:
                seen_rows.add(key)
                row_order.append(key)
            if column_order is None and name not in names:
                names.append(name)
            cells[(key, name)] = value
        data: dict[str, list[Any]] = {index: row_order}
        for name in names:
            if not isinstance(name, str):
                raise SchemaError(
                    f"pivot column values must be strings, got {name!r}"
                )
            data[name] = [cells.get((key, name)) for key in row_order]
        return Table(data)

    # -- grouping and joining -------------------------------------------------------

    def groupby(self, names: Sequence[str] | str) -> "GroupBy":
        """Group rows by one or more key columns."""
        from repro.table.groupby import GroupBy
        if isinstance(names, str):
            names = [names]
        return GroupBy(self, list(names))

    def merge(self, other: Table, on: Sequence[str] | str, how: str = "inner",
              suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
        """Join with ``other`` on the given key columns.

        Non-key columns present in both tables are disambiguated with
        ``suffixes`` -- matching the pandas behaviour the paper's pipeline
        relies on (``value_x`` / ``value_y``).
        """
        from repro.table.join import merge_tables
        if isinstance(on, str):
            on = [on]
        return merge_tables(self, other, list(on), how=how, suffixes=suffixes)
