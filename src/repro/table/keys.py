"""Candidate-key and functional-dependency discovery.

Section 5.7 of the paper lists two future-work directions: exploiting
*functional dependencies* between attributes and *identifying primary keys*
to recognise duplicate records (the Flights failure mode).  This module
implements both discovery primitives; they feed the rule-violation strategy
of the Raha-style baseline (:mod:`repro.baselines.strategies`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.table.table import Table


@dataclass(frozen=True)
class FunctionalDependency:
    """An (approximate) functional dependency ``lhs -> rhs``.

    Attributes
    ----------
    lhs:
        Determinant column names (sorted tuple).
    rhs:
        Dependent column name.
    support:
        Fraction of rows participating in a determinant group with more
        than one row (dependencies seen only on singleton groups carry no
        evidence).
    violation_rate:
        Fraction of rows that disagree with their group's majority RHS
        value.  ``0.0`` means the dependency holds exactly.
    """

    lhs: tuple[str, ...]
    rhs: str
    support: float
    violation_rate: float


def discover_candidate_keys(table: Table, max_size: int = 2) -> list[tuple[str, ...]]:
    """Find minimal column combinations whose values are unique per row.

    Parameters
    ----------
    table:
        Table to analyse.
    max_size:
        Largest key size to consider (combinatorial cost grows quickly).

    Returns
    -------
    list of tuples of column names, smallest keys first.  Supersets of an
    already-found key are skipped (only *minimal* keys are reported).
    """
    if table.n_rows == 0:
        return []
    found: list[tuple[str, ...]] = []
    names = table.column_names
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(names, size):
            if any(set(key) <= set(combo) for key in found):
                continue
            cols = [table.column(n).values for n in combo]
            seen = set()
            unique = True
            for i in range(table.n_rows):
                row_key = tuple(c[i] for c in cols)
                if None in row_key or row_key in seen:
                    unique = False
                    break
                seen.add(row_key)
            if unique:
                found.append(combo)
    return found


def discover_functional_dependencies(
    table: Table,
    max_lhs_size: int = 1,
    max_violation_rate: float = 0.05,
    min_support: float = 0.05,
) -> list[FunctionalDependency]:
    """Mine approximate functional dependencies ``lhs -> rhs``.

    A dependency is reported when, grouping rows by the LHS values, at most
    ``max_violation_rate`` of the rows in multi-row groups deviate from
    their group's majority RHS value, and at least ``min_support`` of all
    rows lie in multi-row groups (so the dependency was actually tested).

    Rows with a missing LHS or RHS cell are ignored for that dependency.
    """
    results: list[FunctionalDependency] = []
    names = table.column_names
    n_rows = table.n_rows
    if n_rows == 0:
        return results
    for size in range(1, max_lhs_size + 1):
        for lhs in itertools.combinations(names, size):
            lhs_cols = [table.column(n).values for n in lhs]
            for rhs in names:
                if rhs in lhs:
                    continue
                rhs_col = table.column(rhs).values
                groups: dict[tuple, dict] = {}
                for i in range(n_rows):
                    key = tuple(c[i] for c in lhs_cols)
                    if None in key or rhs_col[i] is None:
                        continue
                    counts = groups.setdefault(key, {})
                    counts[rhs_col[i]] = counts.get(rhs_col[i], 0) + 1
                tested = 0
                violations = 0
                for counts in groups.values():
                    total = sum(counts.values())
                    if total < 2:
                        continue
                    tested += total
                    violations += total - max(counts.values())
                if tested == 0:
                    continue
                support = tested / n_rows
                violation_rate = violations / tested
                if support >= min_support and violation_rate <= max_violation_rate:
                    results.append(FunctionalDependency(
                        lhs=tuple(sorted(lhs)), rhs=rhs,
                        support=support, violation_rate=violation_rate,
                    ))
    return results


def fd_violating_rows(table: Table, fd: FunctionalDependency) -> list[int]:
    """Row indices that deviate from the majority RHS value of their group."""
    lhs_cols = [table.column(n).values for n in fd.lhs]
    rhs_col = table.column(fd.rhs).values
    groups: dict[tuple, dict] = {}
    membership: list[tuple | None] = []
    for i in range(table.n_rows):
        key = tuple(c[i] for c in lhs_cols)
        if None in key or rhs_col[i] is None:
            membership.append(None)
            continue
        membership.append(key)
        counts = groups.setdefault(key, {})
        counts[rhs_col[i]] = counts.get(rhs_col[i], 0) + 1
    majority = {
        key: max(counts, key=counts.get)
        for key, counts in groups.items()
        if sum(counts.values()) >= 2
    }
    return [
        i for i, key in enumerate(membership)
        if key is not None and key in majority and rhs_col[i] != majority[key]
    ]
