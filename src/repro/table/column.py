"""The :class:`Column` type: a named, immutable sequence of cell values.

Cells are arbitrary Python objects; ``None`` represents a missing value
(the library never uses ``float('nan')`` as a sentinel because NaN breaks
equality-based operations such as joins and group-bys).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.errors import SchemaError


class Column:
    """A named sequence of cell values.

    Columns are value objects: every transforming method returns a new
    :class:`Column` and leaves the receiver untouched.

    Parameters
    ----------
    name:
        Column name.  Must be a non-empty string.
    values:
        Iterable of cell values.  ``None`` encodes a missing value.
    """

    __slots__ = ("_name", "_values")

    def __init__(self, name: str, values: Iterable[Any]):
        if not isinstance(name, str) or not name:
            raise SchemaError(f"column name must be a non-empty string, got {name!r}")
        self._name = name
        self._values = tuple(values)

    @property
    def name(self) -> str:
        """The column's name."""
        return self._name

    @property
    def values(self) -> tuple[Any, ...]:
        """The cell values as an immutable tuple."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            return Column(self._name, self._values[index])
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self._name == other._name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._name, self._values))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:6])
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"Column({self._name!r}, [{preview}{suffix}])"

    # -- transformations ---------------------------------------------------

    def rename(self, name: str) -> Column:
        """Return a copy of this column under a new name."""
        return Column(name, self._values)

    def map(self, fn: Callable[[Any], Any]) -> Column:
        """Return a new column with ``fn`` applied to every cell."""
        return Column(self._name, (fn(v) for v in self._values))

    def take(self, indices: Sequence[int]) -> Column:
        """Return a new column containing the cells at ``indices``."""
        values = self._values
        return Column(self._name, (values[i] for i in indices))

    def astype_str(self) -> Column:
        """Return a copy with every non-missing cell converted to ``str``."""
        return self.map(lambda v: v if v is None else str(v))

    # -- predicates and summaries ------------------------------------------

    def is_missing(self) -> list[bool]:
        """Per-cell missingness mask (``True`` where the cell is ``None``)."""
        return [v is None for v in self._values]

    def n_missing(self) -> int:
        """Number of missing cells."""
        return sum(1 for v in self._values if v is None)

    def unique(self) -> list[Any]:
        """Distinct values in first-occurrence order (``None`` included)."""
        seen: set[Any] = set()
        out: list[Any] = []
        for v in self._values:
            if v not in seen:
                seen.add(v)
                out.append(v)
        return out

    def value_counts(self) -> dict[Any, int]:
        """Map each distinct value to its number of occurrences."""
        counts: dict[Any, int] = {}
        for v in self._values:
            counts[v] = counts.get(v, 0) + 1
        return counts

    def equals_mask(self, other: Column) -> list[bool]:
        """Element-wise equality with ``other`` (missing == missing)."""
        if len(other) != len(self):
            raise SchemaError(
                f"cannot compare columns of length {len(self)} and {len(other)}"
            )
        return [a == b for a, b in zip(self._values, other._values)]
