"""CSV reading and writing for tables.

All benchmark datasets ship as a pair of CSV files (dirty and clean).  The
reader treats every cell as a string -- the paper's models operate on raw
character sequences, so no type inference is performed.  Empty cells are
read as the empty string, and a configurable set of markers (by default
``"NaN"`` stays literal, because in the benchmark data ``'NaN'`` is a
*value* the models must learn about, not a parser-level missing cell).
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

from repro.errors import CSVFormatError
from repro.table.table import Table


def read_csv(path: str | Path, missing_markers: Sequence[str] = (),
             encoding: str = "utf-8") -> Table:
    """Read a CSV file into a :class:`~repro.table.table.Table` of strings.

    Parameters
    ----------
    path:
        File to read.  The first row is the header.
    missing_markers:
        Cell contents converted to ``None`` on read.  Empty by default:
        benchmark datasets keep ``"NaN"``-style markers as literal values.
    encoding:
        File encoding.

    Raises
    ------
    CSVFormatError
        On an empty file, duplicate header names, ragged rows, or bytes
        that are not valid under ``encoding``.  (Decode failures must
        surface as CSVFormatError, not UnicodeDecodeError: the latter is
        a ValueError, which callers handling "bad input file" via
        OSError/DataError would miss.  For sniffed-encoding reading of
        real files use :func:`repro.io.read_file` instead.)
    """
    path = Path(path)
    markers = set(missing_markers)
    try:
        with path.open(newline="", encoding=encoding) as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise CSVFormatError(f"{path}: file is empty") from None
            if len(set(header)) != len(header):
                raise CSVFormatError(
                    f"{path}: duplicate column names in header {header}")
            data: dict[str, list[str | None]] = {name: [] for name in header}
            for line_no, row in enumerate(reader, start=2):
                if len(row) != len(header):
                    raise CSVFormatError(
                        f"{path}:{line_no}: expected {len(header)} cells, "
                        f"got {len(row)}"
                    )
                for name, cell in zip(header, row):
                    data[name].append(None if cell in markers else cell)
    except UnicodeDecodeError as exc:
        raise CSVFormatError(
            f"{path}: not valid {encoding} (byte offset {exc.start}); "
            f"try 'repro detect' / repro.io.read_file, which sniff the "
            f"encoding") from exc
    return Table(data)


def write_csv(table: Table, path: str | Path, missing_marker: str = "",
              encoding: str = "utf-8") -> None:
    """Write a table to CSV.  ``None`` cells are written as ``missing_marker``."""
    path = Path(path)
    with path.open("w", newline="", encoding=encoding) as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow([
                missing_marker if row[name] is None else str(row[name])
                for name in table.column_names
            ])
