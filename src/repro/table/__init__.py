"""A small column-oriented relational table engine.

The paper's data-preparation pipeline (Figure 3) relies on dataframe-style
operations: wide-to-long reshaping, outer merges on ``(id_, attribute)``,
group-by aggregation, de-duplication and row filtering.  The execution
environment has no pandas, so this subpackage implements a minimal but
complete substitute:

* :class:`~repro.table.column.Column` -- an immutable named sequence of cell
  values with vectorised helpers,
* :class:`~repro.table.table.Table` -- an ordered collection of equal-length
  columns with selection, filtering, sorting, reshaping and joins,
* :class:`~repro.table.groupby.GroupBy` -- split-apply-combine aggregation,
* :mod:`~repro.table.io` -- CSV reading and writing on top of :mod:`csv`,
* :mod:`~repro.table.keys` -- candidate-key and functional-dependency
  discovery (used by the Raha-style baseline and the paper's future-work
  extensions).
"""

from repro.table.column import Column
from repro.table.groupby import GroupBy
from repro.table.io import read_csv, write_csv
from repro.table.keys import discover_candidate_keys, discover_functional_dependencies
from repro.table.table import Table

__all__ = [
    "Column",
    "GroupBy",
    "Table",
    "read_csv",
    "write_csv",
    "discover_candidate_keys",
    "discover_functional_dependencies",
]
