"""Split-apply-combine aggregation for :class:`~repro.table.table.Table`."""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import SchemaError

_BUILTIN_AGGS: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": lambda vs: sum(v for v in vs if v is not None),
    "min": lambda vs: min((v for v in vs if v is not None), default=None),
    "max": lambda vs: max((v for v in vs if v is not None), default=None),
    "mean": lambda vs: (
        sum(v for v in vs if v is not None) / len([v for v in vs if v is not None])
        if any(v is not None for v in vs) else None
    ),
    "first": lambda vs: vs[0] if vs else None,
    "last": lambda vs: vs[-1] if vs else None,
    "nunique": lambda vs: len(set(vs)),
    "list": list,
}


class GroupBy:
    """Grouping of a table's rows by one or more key columns.

    Instances are created via :meth:`repro.table.table.Table.groupby`.
    Groups preserve first-occurrence order of their keys, which keeps the
    sampling algorithms of the paper deterministic.
    """

    def __init__(self, table: "Table", keys: list[str]):
        from repro.table.table import Table  # circular-import guard
        assert isinstance(table, Table)
        if not keys:
            raise SchemaError("groupby requires at least one key column")
        self._table = table
        self._keys = keys
        key_cols = [table.column(k).values for k in keys]
        groups: dict[tuple[Any, ...], list[int]] = {}
        for i in range(table.n_rows):
            key = tuple(c[i] for c in key_cols)
            groups.setdefault(key, []).append(i)
        self._groups = groups

    @property
    def keys(self) -> list[str]:
        """The grouping columns."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._groups)

    def group_indices(self) -> dict[tuple[Any, ...], list[int]]:
        """Map each group key to the row indices belonging to it."""
        return {k: list(v) for k, v in self._groups.items()}

    def groups(self):
        """Iterate ``(key_tuple, sub_table)`` pairs in key-first-seen order."""
        for key, indices in self._groups.items():
            yield key, self._table.take(indices)

    def size(self, name: str = "size") -> "Table":
        """One row per group with the group's row count."""
        return self._combine({name: [len(ix) for ix in self._groups.values()]})

    def agg(self, spec: Mapping[str, str | Callable[[list[Any]], Any]]) -> "Table":
        """Aggregate value columns per group.

        Parameters
        ----------
        spec:
            Maps a value column name to either the name of a built-in
            aggregator (``count``, ``sum``, ``min``, ``max``, ``mean``,
            ``first``, ``last``, ``nunique``, ``list``) or a callable
            taking the group's list of cell values.
        """
        resolved: dict[str, Callable[[list[Any]], Any]] = {}
        for col, fn in spec.items():
            self._table.column(col)  # validate
            if callable(fn):
                resolved[col] = fn
            elif fn in _BUILTIN_AGGS:
                resolved[col] = _BUILTIN_AGGS[fn]
            else:
                raise SchemaError(
                    f"unknown aggregator {fn!r}; "
                    f"available: {sorted(_BUILTIN_AGGS)}"
                )
        value_cols = {col: self._table.column(col).values for col in resolved}
        out: dict[str, list[Any]] = {col: [] for col in resolved}
        for indices in self._groups.values():
            for col, fn in resolved.items():
                values = [value_cols[col][i] for i in indices]
                out[col].append(fn(values))
        return self._combine(out)

    def count(self, column: str, name: str | None = None) -> "Table":
        """Per-group count of rows (alias of ``agg({column: 'count'})``)."""
        result = self.agg({column: "count"})
        if name is not None:
            result = result.rename({column: name})
        return result

    def sum(self, column: str, name: str | None = None) -> "Table":
        """Per-group sum of a value column, ignoring missing cells."""
        result = self.agg({column: "sum"})
        if name is not None:
            result = result.rename({column: name})
        return result

    def _combine(self, aggregated: dict[str, list[Any]]) -> "Table":
        from repro.table.table import Table
        data: dict[str, list[Any]] = {
            key_col: [key[j] for key in self._groups]
            for j, key_col in enumerate(self._keys)
        }
        data.update(aggregated)
        return Table(data)
