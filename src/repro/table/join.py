"""Hash joins between tables.

Implements inner, left and full-outer equi-joins with pandas-style suffix
disambiguation of overlapping non-key columns.  The paper's merge step
(Figure 3) is an inner join of the long-format dirty and clean tables on
``(id_, attribute)``, producing ``value_x`` / ``value_y``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JoinError, SchemaError
from repro.table.table import Table

_VALID_HOW = ("inner", "left", "outer")


def merge_tables(left: Table, right: Table, on: list[str], how: str = "inner",
                 suffixes: tuple[str, str] = ("_x", "_y")) -> Table:
    """Equi-join ``left`` and ``right`` on the key columns ``on``.

    Parameters
    ----------
    left, right:
        Tables to join.  Both must contain every key column.
    on:
        Key column names.
    how:
        ``"inner"`` keeps matching rows only; ``"left"`` keeps all left
        rows; ``"outer"`` keeps all rows from both sides.  Unmatched cells
        become ``None``.
    suffixes:
        Appended to non-key columns that exist on both sides.

    Returns
    -------
    Table
        Key columns first, then left non-key columns, then right non-key
        columns.  Left row order is preserved; within one left row, right
        matches appear in right-table order (a stable hash join).
    """
    if how not in _VALID_HOW:
        raise JoinError(f"how must be one of {_VALID_HOW}, got {how!r}")
    if not on:
        raise JoinError("join requires at least one key column")
    for name in on:
        if name not in left:
            raise SchemaError(f"left table lacks join key {name!r}")
        if name not in right:
            raise SchemaError(f"right table lacks join key {name!r}")

    key_set = set(on)
    left_value_cols = [n for n in left.column_names if n not in key_set]
    right_value_cols = [n for n in right.column_names if n not in key_set]
    overlap = set(left_value_cols) & set(right_value_cols)

    def left_name(name: str) -> str:
        return name + suffixes[0] if name in overlap else name

    def right_name(name: str) -> str:
        return name + suffixes[1] if name in overlap else name

    out_names = (list(on)
                 + [left_name(n) for n in left_value_cols]
                 + [right_name(n) for n in right_value_cols])
    if len(set(out_names)) != len(out_names):
        raise JoinError(f"suffixes {suffixes} do not disambiguate columns: {out_names}")

    right_index: dict[tuple[Any, ...], list[int]] = {}
    right_keys = [right.column(k).values for k in on]
    for i in range(right.n_rows):
        right_index.setdefault(tuple(c[i] for c in right_keys), []).append(i)

    out: dict[str, list[Any]] = {name: [] for name in out_names}
    left_keys = [left.column(k).values for k in on]
    left_values = {n: left.column(n).values for n in left_value_cols}
    right_values = {n: right.column(n).values for n in right_value_cols}

    matched_right: set[int] = set()
    for i in range(left.n_rows):
        key = tuple(c[i] for c in left_keys)
        matches = right_index.get(key, [])
        if matches:
            for j in matches:
                matched_right.add(j)
                _emit(out, on, key, left_values, i, right_values, j,
                      left_name, right_name)
        elif how in ("left", "outer"):
            _emit(out, on, key, left_values, i, right_values, None,
                  left_name, right_name)

    if how == "outer":
        for j in range(right.n_rows):
            if j not in matched_right:
                key = tuple(c[j] for c in right_keys)
                _emit(out, on, key, left_values, None, right_values, j,
                      left_name, right_name)

    return Table(out)


def _emit(out: dict[str, list[Any]], on: list[str], key: tuple[Any, ...],
          left_values: dict[str, Any], left_row: int | None,
          right_values: dict[str, Any], right_row: int | None,
          left_name, right_name) -> None:
    """Append one joined output row, filling unmatched sides with None."""
    for name, value in zip(on, key):
        out[name].append(value)
    for name, values in left_values.items():
        out[left_name(name)].append(None if left_row is None else values[left_row])
    for name, values in right_values.items():
        out[right_name(name)].append(None if right_row is None else values[right_row])
