"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TableError(ReproError):
    """Base class for errors raised by the relational table substrate."""


class SchemaError(TableError):
    """A table operation referenced a column that does not exist or
    received columns of mismatched length."""


class JoinError(TableError):
    """A join was requested on incompatible keys."""


class CSVFormatError(TableError):
    """A CSV file could not be parsed into a rectangular table."""


class AutogradError(ReproError):
    """Base class for errors raised by the autodiff engine."""


class ShapeError(AutogradError):
    """Operands of an autograd op had incompatible shapes."""


class GraphError(AutogradError):
    """The autodiff graph was used incorrectly (e.g. backward on a
    non-scalar without an explicit upstream gradient)."""


class NNError(ReproError):
    """Base class for errors raised by the neural-network layer library."""


class ConfigurationError(NNError):
    """A layer, model, or trainer was constructed with invalid settings."""


class NotFittedError(NNError):
    """Prediction was requested from a model that has not been trained."""


class DataError(ReproError):
    """Base class for errors in data preparation and dataset generation."""


class IngestError(DataError):
    """A real-world file could not be ingested (empty payload,
    unreadable database, or a requested table that does not exist)."""


class EncodingError(DataError):
    """A value could not be encoded with the available dictionaries."""


class SamplingError(ReproError):
    """A trainset-selection algorithm received unusable input."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
