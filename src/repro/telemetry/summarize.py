"""Offline aggregation of JSON-lines telemetry files.

``repro telemetry summarize out.jsonl`` renders the output of a
``--telemetry-out`` session: record counts per type, per-span wall-time
totals, the per-epoch loss trajectory, the inference counters
(rows/unique/cache hits/misses) summed over every prediction call, and
p50/p95/p99 estimates for every fixed-bucket histogram in the final
metrics snapshot (e.g. the serving daemon's ``serve.latency``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.errors import ConfigurationError

#: Quantiles reported for every snapshot histogram.
PERCENTILES = (0.50, 0.95, 0.99)


def percentile_from_buckets(edges: Sequence[float], counts: Sequence[int],
                            q: float, maximum: float | None = None) -> float | None:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    ``counts`` has one entry per upper ``edge`` plus a final overflow
    bucket (the :class:`~repro.telemetry.Histogram` layout).  The
    estimate interpolates linearly inside the bucket the quantile lands
    in (the first bucket starts at 0.0, the natural floor for latency
    edges); an overflow landing is capped at the observed ``maximum``
    when known, else reported as the last finite edge.  Returns ``None``
    for an empty histogram or ``q`` outside ``(0, 1]``.
    """
    if len(counts) != len(edges) + 1:
        raise ConfigurationError(
            f"expected {len(edges) + 1} bucket counts for {len(edges)} "
            f"edges, got {len(counts)}")
    total = sum(counts)
    if total <= 0 or not 0.0 < q <= 1.0:
        return None
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        lower = cumulative
        cumulative += count
        if cumulative >= rank:
            if i >= len(edges):            # overflow bucket
                return float(maximum) if maximum is not None \
                    else float(edges[-1])
            low = 0.0 if i == 0 else float(edges[i - 1])
            high = float(edges[i])
            fraction = (rank - lower) / count
            return low + (high - low) * fraction
    return float(maximum) if maximum is not None else float(edges[-1])


def summarize_histogram(state: Mapping) -> dict:
    """Count/mean/min/max plus :data:`PERCENTILES` of one histogram
    snapshot (the ``histograms`` entries of a ``snapshot`` record)."""
    count = int(state.get("count", 0))
    summary = {
        "count": count,
        "mean": (float(state["total"]) / count) if count else None,
        "min": state.get("min"),
        "max": state.get("max"),
    }
    for q in PERCENTILES:
        summary[f"p{int(q * 100)}"] = percentile_from_buckets(
            state["edges"], state["counts"], q, maximum=state.get("max"))
    return summary


def read_records(path: str | Path) -> list[dict]:
    """Parse one record per non-empty line of a JSON-lines file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no telemetry file at {path}")
    records = []
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}:{i + 1} is not valid JSON: {error}"
            ) from None
    return records


def summarize_records(records: Iterable[Mapping]) -> dict:
    """Aggregate parsed telemetry records into one machine-readable dict.

    Returns a dict with ``record_counts`` (per record type), ``spans``
    (count / total & mean wall seconds per span name), ``epochs``
    (count, first/last/min loss, total wall), ``inference`` (summed
    rows, unique cells, cache hits/misses, evaluated representatives and
    the overall unique-cell ratio and hit rate), and ``histograms``
    (count/mean/min/max and p50/p95/p99 per fixed-bucket histogram in
    the final metrics snapshot -- how ``serve.latency`` is read).
    """
    record_counts: dict[str, int] = {}
    spans: dict[str, dict] = {}
    epochs: list[Mapping] = []
    histograms: dict[str, dict] = {}
    inference = {"calls": 0, "n_rows": 0, "n_unique": 0, "cache_hits": 0,
                 "cache_misses": 0, "n_evaluated": 0}
    for record in records:
        record_type = str(record.get("type", "unknown"))
        record_counts[record_type] = record_counts.get(record_type, 0) + 1
        if record_type == "snapshot":
            # Last snapshot wins: a --telemetry-out session emits one
            # final snapshot carrying the full metrics state.
            histograms = {
                name: summarize_histogram(state)
                for name, state in record.get("metrics", {})
                                         .get("histograms", {}).items()
                if state.get("count")
            }
        elif record_type == "span":
            entry = spans.setdefault(str(record.get("name", "?")),
                                     {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            entry["count"] += 1
            entry["wall_s"] += float(record.get("wall_s", 0.0))
            entry["cpu_s"] += float(record.get("cpu_s", 0.0))
        elif record_type == "epoch":
            epochs.append(record)
        elif record_type == "inference":
            inference["calls"] += 1
            for key in ("n_rows", "n_unique", "cache_hits", "cache_misses",
                        "n_evaluated"):
                inference[key] += int(record.get(key, 0))

    losses = [float(r["loss"]) for r in epochs if "loss" in r]
    epoch_summary = {
        "count": len(epochs),
        "first_loss": losses[0] if losses else None,
        "last_loss": losses[-1] if losses else None,
        "min_loss": min(losses) if losses else None,
        "wall_s": sum(float(r.get("wall_s", 0.0)) for r in epochs),
    }
    lookups = inference["cache_hits"] + inference["cache_misses"]
    inference["unique_ratio"] = (inference["n_unique"] / inference["n_rows"]
                                 if inference["n_rows"] else None)
    inference["hit_rate"] = (inference["cache_hits"] / lookups
                             if lookups else None)
    return {
        "n_records": sum(record_counts.values()),
        "record_counts": record_counts,
        "spans": spans,
        "epochs": epoch_summary,
        "inference": inference,
        "histograms": histograms,
    }


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_summary(summary: Mapping) -> str:
    """Human-readable rendering of :func:`summarize_records` output."""
    lines = [f"records: {summary['n_records']}"]
    for record_type in sorted(summary["record_counts"]):
        lines.append(f"  {record_type:<12} {summary['record_counts'][record_type]}")
    if summary["spans"]:
        lines.append("spans (total wall / count):")
        for name in sorted(summary["spans"]):
            entry = summary["spans"][name]
            lines.append(f"  {name:<28} {entry['wall_s']:.3f}s / {entry['count']}")
    epochs = summary["epochs"]
    if epochs["count"]:
        lines.append(
            f"training: {epochs['count']} epochs, loss "
            f"{_fmt(epochs['first_loss'])} -> {_fmt(epochs['last_loss'])} "
            f"(min {_fmt(epochs['min_loss'])}), {epochs['wall_s']:.3f}s"
        )
    inference = summary["inference"]
    if inference["calls"]:
        lines.append(
            f"inference: {inference['calls']} calls, {inference['n_rows']} rows, "
            f"{inference['n_unique']} unique "
            f"(ratio {_fmt(inference['unique_ratio'])}), "
            f"cache {inference['cache_hits']} hits / "
            f"{inference['cache_misses']} misses "
            f"(hit rate {_fmt(inference['hit_rate'])}), "
            f"{inference['n_evaluated']} network forwards"
        )
    if summary.get("histograms"):
        lines.append("histograms (count / p50 / p95 / p99 / max):")
        for name in sorted(summary["histograms"]):
            entry = summary["histograms"][name]
            lines.append(
                f"  {name:<28} {entry['count']} / "
                f"{_fmt(entry['p50'], 6)} / {_fmt(entry['p95'], 6)} / "
                f"{_fmt(entry['p99'], 6)} / {_fmt(entry['max'], 6)}"
            )
    return "\n".join(lines)


def summarize_jsonl(path: str | Path) -> str:
    """Read, aggregate and render one JSON-lines telemetry file."""
    return render_summary(summarize_records(read_records(path)))
