"""Offline aggregation of JSON-lines telemetry files.

``repro telemetry summarize out.jsonl`` renders the output of a
``--telemetry-out`` session: record counts per type, per-span wall-time
totals, the per-epoch loss trajectory, and the inference counters
(rows/unique/cache hits/misses) summed over every prediction call.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.errors import ConfigurationError


def read_records(path: str | Path) -> list[dict]:
    """Parse one record per non-empty line of a JSON-lines file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no telemetry file at {path}")
    records = []
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}:{i + 1} is not valid JSON: {error}"
            ) from None
    return records


def summarize_records(records: Iterable[Mapping]) -> dict:
    """Aggregate parsed telemetry records into one machine-readable dict.

    Returns a dict with ``record_counts`` (per record type), ``spans``
    (count / total & mean wall seconds per span name), ``epochs``
    (count, first/last/min loss, total wall), and ``inference`` (summed
    rows, unique cells, cache hits/misses, evaluated representatives and
    the overall unique-cell ratio and hit rate).
    """
    record_counts: dict[str, int] = {}
    spans: dict[str, dict] = {}
    epochs: list[Mapping] = []
    inference = {"calls": 0, "n_rows": 0, "n_unique": 0, "cache_hits": 0,
                 "cache_misses": 0, "n_evaluated": 0}
    for record in records:
        record_type = str(record.get("type", "unknown"))
        record_counts[record_type] = record_counts.get(record_type, 0) + 1
        if record_type == "span":
            entry = spans.setdefault(str(record.get("name", "?")),
                                     {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            entry["count"] += 1
            entry["wall_s"] += float(record.get("wall_s", 0.0))
            entry["cpu_s"] += float(record.get("cpu_s", 0.0))
        elif record_type == "epoch":
            epochs.append(record)
        elif record_type == "inference":
            inference["calls"] += 1
            for key in ("n_rows", "n_unique", "cache_hits", "cache_misses",
                        "n_evaluated"):
                inference[key] += int(record.get(key, 0))

    losses = [float(r["loss"]) for r in epochs if "loss" in r]
    epoch_summary = {
        "count": len(epochs),
        "first_loss": losses[0] if losses else None,
        "last_loss": losses[-1] if losses else None,
        "min_loss": min(losses) if losses else None,
        "wall_s": sum(float(r.get("wall_s", 0.0)) for r in epochs),
    }
    lookups = inference["cache_hits"] + inference["cache_misses"]
    inference["unique_ratio"] = (inference["n_unique"] / inference["n_rows"]
                                 if inference["n_rows"] else None)
    inference["hit_rate"] = (inference["cache_hits"] / lookups
                             if lookups else None)
    return {
        "n_records": sum(record_counts.values()),
        "record_counts": record_counts,
        "spans": spans,
        "epochs": epoch_summary,
        "inference": inference,
    }


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_summary(summary: Mapping) -> str:
    """Human-readable rendering of :func:`summarize_records` output."""
    lines = [f"records: {summary['n_records']}"]
    for record_type in sorted(summary["record_counts"]):
        lines.append(f"  {record_type:<12} {summary['record_counts'][record_type]}")
    if summary["spans"]:
        lines.append("spans (total wall / count):")
        for name in sorted(summary["spans"]):
            entry = summary["spans"][name]
            lines.append(f"  {name:<28} {entry['wall_s']:.3f}s / {entry['count']}")
    epochs = summary["epochs"]
    if epochs["count"]:
        lines.append(
            f"training: {epochs['count']} epochs, loss "
            f"{_fmt(epochs['first_loss'])} -> {_fmt(epochs['last_loss'])} "
            f"(min {_fmt(epochs['min_loss'])}), {epochs['wall_s']:.3f}s"
        )
    inference = summary["inference"]
    if inference["calls"]:
        lines.append(
            f"inference: {inference['calls']} calls, {inference['n_rows']} rows, "
            f"{inference['n_unique']} unique "
            f"(ratio {_fmt(inference['unique_ratio'])}), "
            f"cache {inference['cache_hits']} hits / "
            f"{inference['cache_misses']} misses "
            f"(hit rate {_fmt(inference['hit_rate'])}), "
            f"{inference['n_evaluated']} network forwards"
        )
    return "\n".join(lines)


def summarize_jsonl(path: str | Path) -> str:
    """Read, aggregate and render one JSON-lines telemetry file."""
    return render_summary(summarize_records(read_records(path)))
