"""Metric primitives and the process-wide :class:`MetricsRegistry`.

The registry is the single rendezvous point of the instrumentation
subsystem: hot paths record into named metrics (counters, gauges,
histograms with fixed bucket edges, monotonic timers) and emit structured
records to the attached sinks (see :mod:`repro.telemetry.sinks`).

Overhead policy: every instrumented hot path guards its recording with
:func:`enabled`, which resolves the ``REPRO_TELEMETRY`` environment
variable once and caches the answer.  With telemetry off (the default)
an instrumented call site costs one function call and one boolean test
-- nothing is allocated, no metric objects are touched -- so the
bit-for-bit and speedup contracts of the compute paths are unaffected.
"""

from __future__ import annotations

import bisect
import contextlib
import os
import time
from collections.abc import Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

#: Environment variable that switches instrumentation on (``1``/``true``).
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Default histogram bucket upper edges for latencies, in seconds.
DEFAULT_LATENCY_EDGES = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def snapshot(self) -> int:
        """The current value (plain int, merge-friendly)."""
        return self.value


class Gauge:
    """A last-value-wins float metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the most recent observation."""
        self.value = float(value)

    def snapshot(self) -> float:
        """The current value."""
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max accumulators.

    Parameters
    ----------
    name:
        Metric name.
    edges:
        Strictly ascending bucket *upper* edges (inclusive).  An
        observation above the last edge lands in one extra overflow
        bucket, so ``len(counts) == len(edges) + 1``.
    """

    __slots__ = ("name", "edges", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES):
        edges = tuple(float(e) for e in edges)
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram edges must be strictly ascending and non-empty, "
                f"got {edges}"
            )
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Flat mergeable record of edges, bucket counts and accumulators."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class Timer:
    """A monotonic accumulating timer (``time.perf_counter`` based).

    ``observe(seconds)`` folds a measured duration in; :meth:`time` is a
    context manager measuring a block.  Totals are wall-clock seconds.
    """

    __slots__ = ("name", "total", "count", "last")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.last = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the accumulators."""
        seconds = float(seconds)
        self.total += seconds
        self.count += 1
        self.last = seconds

    @contextlib.contextmanager
    def time(self) -> Iterator[None]:
        """Measure the duration of the ``with`` block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def mean(self) -> float:
        """Mean duration per observation (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Flat mergeable record of the accumulators."""
        return {"total": self.total, "count": self.count, "last": self.last}


class MetricsRegistry:
    """Named metrics plus the sinks structured records are emitted to.

    Metric accessors are create-or-get: the first call for a name creates
    the metric, later calls return the same object.  A name can only ever
    hold one metric kind; reuse across kinds raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Timer] = {}
        self._sinks: list = []

    # -- metric accessors ---------------------------------------------------

    def _check_unique(self, name: str, kind: dict) -> None:
        for family in (self.counters, self.gauges, self.histograms,
                       self.timers):
            if family is not kind and name in family:
                raise ConfigurationError(
                    f"metric name {name!r} is already used by another kind"
                )

    def counter(self, name: str) -> Counter:
        """Create-or-get the counter called ``name``."""
        metric = self.counters.get(name)
        if metric is None:
            self._check_unique(name, self.counters)
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Create-or-get the gauge called ``name``."""
        metric = self.gauges.get(name)
        if metric is None:
            self._check_unique(name, self.gauges)
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_LATENCY_EDGES) -> Histogram:
        """Create-or-get the histogram called ``name``.

        ``edges`` only applies on creation; a later call with different
        edges returns the existing histogram unchanged.
        """
        metric = self.histograms.get(name)
        if metric is None:
            self._check_unique(name, self.histograms)
            metric = self.histograms[name] = Histogram(name, edges)
        return metric

    def timer(self, name: str) -> Timer:
        """Create-or-get the timer called ``name``."""
        metric = self.timers.get(name)
        if metric is None:
            self._check_unique(name, self.timers)
            metric = self.timers[name] = Timer(name)
        return metric

    # -- sinks and records --------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a sink; it receives every subsequently emitted record."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a previously attached sink (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple:
        """The currently attached sinks."""
        return tuple(self._sinks)

    def emit(self, record: Mapping) -> None:
        """Forward one structured record (a flat dict) to every sink."""
        for sink in self._sinks:
            sink.emit(dict(record))

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Merge-friendly copy of every metric's current state."""
        return {
            "counters": {n: c.snapshot() for n, c in self.counters.items()},
            "gauges": {n: g.snapshot() for n, g in self.gauges.items()},
            "histograms": {n: h.snapshot()
                           for n, h in self.histograms.items()},
            "timers": {n: t.snapshot() for n, t in self.timers.items()},
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters/histograms/timers add, gauges last-write-wins."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, state["edges"])
            if tuple(state["edges"]) != hist.edges:
                raise ConfigurationError(
                    f"histogram {name!r} edges differ between snapshots"
                )
            hist.counts = [a + b for a, b in zip(hist.counts, state["counts"])]
            hist.total += state["total"]
            hist.count += state["count"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = state.get(bound)
                ours = getattr(hist, bound)
                if theirs is not None:
                    setattr(hist, bound,
                            theirs if ours is None else pick(ours, theirs))
        for name, state in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total += state["total"]
            timer.count += state["count"]
            timer.last = state["last"]

    def reset(self) -> None:
        """Drop every metric (sinks stay attached)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()


def merge_snapshots(snapshots: Sequence[Mapping]) -> dict:
    """Counter-wise merge of many :meth:`MetricsRegistry.snapshot` dicts.

    Used by the experiment runner to aggregate per-task records collected
    in worker processes into one experiment-wide view.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# -- process-wide state ------------------------------------------------------

_registry = MetricsRegistry()
_enabled: bool | None = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _registry
    previous, _registry = _registry, registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the process-wide registry."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enabled() -> bool:
    """Whether instrumentation is on (cached ``REPRO_TELEMETRY`` lookup)."""
    global _enabled
    if _enabled is None:
        raw = os.environ.get(TELEMETRY_ENV_VAR, "")
        _enabled = raw.strip().lower() not in ("", "0", "false", "off", "no")
    return _enabled


def set_enabled(on: bool) -> None:
    """Switch instrumentation on or off at runtime (overrides the env)."""
    global _enabled
    _enabled = bool(on)


def reset_enabled() -> None:
    """Forget the runtime/env decision; re-read the environment next time."""
    global _enabled
    _enabled = None


@contextlib.contextmanager
def use_telemetry(registry: MetricsRegistry | None = None,
                  on: bool = True) -> Iterator[MetricsRegistry]:
    """Temporarily enable (or disable) telemetry, optionally swapping in a
    fresh registry.  The previous enablement and registry are restored on
    exit -- the idiom used by the test suite and the per-task capture of
    the experiment runner."""
    global _enabled
    previous_flag = _enabled
    target = registry if registry is not None else _registry
    set_enabled(on)
    try:
        if registry is not None:
            with use_registry(registry):
                yield target
        else:
            yield target
    finally:
        _enabled = previous_flag
