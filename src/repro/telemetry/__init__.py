"""Zero-dependency runtime instrumentation for the hot paths.

The subsystem has three parts:

* a process-wide :class:`MetricsRegistry` of named counters, gauges,
  fixed-bucket histograms and monotonic timers
  (:mod:`repro.telemetry.registry`);
* nestable :func:`span` tracing contexts recording wall/CPU time and
  parent links (:mod:`repro.telemetry.spans`);
* pluggable sinks receiving structured records -- JSON-lines file,
  in-memory (tests), stderr summary (:mod:`repro.telemetry.sinks`) --
  plus an offline summarizer for the JSON-lines format
  (:mod:`repro.telemetry.summarize`).

Instrumentation is off by default and switched on with
``REPRO_TELEMETRY=1`` (or :func:`set_enabled` /
:func:`use_telemetry` at runtime); disabled call sites cost one boolean
check, preserving the bit-for-bit and speedup contracts of the compute
paths.  Instrumented sites: ``Trainer.fit`` (per-epoch loss, grad norm,
batch occupancy, wall time), the fused kernels and the graph backend
(per-layer forward/backward timers), ``InferenceEngine.predict_proba``
and ``PredictionCache`` (dedup/cache counters, representative-forward
latency histogram), the experiment runner (per-task snapshots merged
across worker processes) and the CLI (``--telemetry-out`` /
``repro telemetry summarize``).
"""

from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES,
    TELEMETRY_ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    enabled,
    get_registry,
    merge_snapshots,
    reset_enabled,
    set_enabled,
    set_registry,
    use_registry,
    use_telemetry,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    Sink,
    StderrSummarySink,
)
from repro.telemetry.spans import Span, current_span, span
from repro.telemetry.summarize import (
    percentile_from_buckets,
    read_records,
    render_summary,
    summarize_histogram,
    summarize_jsonl,
    summarize_records,
)

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "TELEMETRY_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "enabled",
    "get_registry",
    "merge_snapshots",
    "reset_enabled",
    "set_enabled",
    "set_registry",
    "use_registry",
    "use_telemetry",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "StderrSummarySink",
    "Span",
    "current_span",
    "span",
    "percentile_from_buckets",
    "read_records",
    "render_summary",
    "summarize_histogram",
    "summarize_jsonl",
    "summarize_records",
]
