"""Record sinks: where emitted telemetry records go.

A sink receives flat dict records from
:meth:`~repro.telemetry.registry.MetricsRegistry.emit`.  Three
implementations cover the subsystem's uses:

:class:`JsonlSink`
    One JSON object per line, append-mode -- the ``--telemetry-out``
    file format consumed by ``repro telemetry summarize``.
:class:`MemorySink`
    Keeps records in a list; the test suite's sink.
:class:`StderrSummarySink`
    Accumulates and prints a compact per-type summary on ``close()``.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Mapping
from pathlib import Path

import numpy as np


def _json_default(value):
    """Make numpy scalars/arrays JSON-serialisable."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


class Sink:
    """Base sink; subclasses implement :meth:`emit`."""

    def emit(self, record: Mapping) -> None:
        """Receive one flat telemetry record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class MemorySink(Sink):
    """Collects records in :attr:`records` (the testing sink)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: Mapping) -> None:
        self.records.append(dict(record))

    def of_type(self, record_type: str) -> list[dict]:
        """The collected records whose ``type`` field matches."""
        return [r for r in self.records if r.get("type") == record_type]


class JsonlSink(Sink):
    """Append-mode JSON-lines file sink.

    The file is opened lazily on the first record and flushed per line,
    so a crash mid-run still leaves every completed record readable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None
        self.n_records = 0

    def emit(self, record: Mapping) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(dict(record), default=_json_default))
        self._file.write("\n")
        self._file.flush()
        self.n_records += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class StderrSummarySink(Sink):
    """Counts records per type and prints one summary line each on close."""

    def __init__(self, stream=None):
        self._stream = stream
        self.type_counts: dict[str, int] = {}
        self.wall_by_span: dict[str, float] = {}

    def emit(self, record: Mapping) -> None:
        record_type = str(record.get("type", "unknown"))
        self.type_counts[record_type] = self.type_counts.get(record_type, 0) + 1
        if record_type == "span":
            name = str(record.get("name", "?"))
            self.wall_by_span[name] = (self.wall_by_span.get(name, 0.0)
                                       + float(record.get("wall_s", 0.0)))

    def close(self) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        total = sum(self.type_counts.values())
        print(f"telemetry: {total} records", file=stream)
        for record_type in sorted(self.type_counts):
            print(f"  {record_type:<12} {self.type_counts[record_type]}",
                  file=stream)
        for name in sorted(self.wall_by_span):
            print(f"  span {name:<20} {self.wall_by_span[name]:.3f}s",
                  file=stream)
