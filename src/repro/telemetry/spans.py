"""Nestable tracing spans with wall/CPU time and parent links.

``with span("train.fit"):`` measures the block's wall-clock and CPU time
and, on exit, (1) folds the wall time into the process registry's
``span.<name>`` timer and (2) emits a ``{"type": "span", ...}`` record
carrying the parent span's name and the nesting depth, so sinks can
reconstruct the call tree.

Spans honour the overhead policy of :mod:`repro.telemetry.registry`:
with telemetry disabled, :func:`span` returns a shared no-op context
manager -- no allocation, no clock reads.
"""

from __future__ import annotations

import time

from repro.telemetry.registry import MetricsRegistry, enabled, get_registry

#: Stack of currently open spans (per process; the compute paths are
#: single-threaded, mirroring the kernels' scratch-pool assumption).
_stack: list["Span"] = []


class _NullSpan:
    """Shared do-nothing span used while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def add(self, **fields) -> None:
        """Ignore extra fields (API-compatible with :class:`Span`)."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live tracing context; use via :func:`span`."""

    __slots__ = ("name", "fields", "parent", "depth", "registry",
                 "wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self, name: str, registry: MetricsRegistry | None = None,
                 **fields):
        self.name = name
        self.fields = fields
        self.registry = registry
        self.parent: str | None = None
        self.depth = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def add(self, **fields) -> None:
        """Attach extra fields to the record emitted on exit."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        if _stack:
            self.parent = _stack[-1].name
            self.depth = _stack[-1].depth + 1
        _stack.append(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.cpu_s = time.process_time() - self._cpu0
        self.wall_s = time.perf_counter() - self._wall0
        if _stack and _stack[-1] is self:
            _stack.pop()
        registry = self.registry if self.registry is not None else get_registry()
        registry.timer(f"span.{self.name}").observe(self.wall_s)
        registry.emit({
            "type": "span",
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            **self.fields,
        })


def span(name: str, registry: MetricsRegistry | None = None, **fields):
    """A tracing context for ``name`` (no-op while telemetry is off)."""
    if not enabled():
        return _NULL_SPAN
    return Span(name, registry=registry, **fields)


def current_span() -> Span | None:
    """The innermost open span, if any (for attaching fields)."""
    return _stack[-1] if _stack else None
