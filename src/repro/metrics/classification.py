"""Binary classification metrics.

The paper evaluates error detection as binary classification over cells:
label 1 means "erroneous cell".  Precision, recall and F1 are reported per
dataset (Table 3); accuracy drives the learning curves (Figures 6/7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


def _as_binary(values, name: str) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise ExperimentError(f"{name} must be 1-d, got shape {array.shape}")
    unique = set(np.unique(array).tolist())
    if not unique <= {0, 1}:
        raise ExperimentError(f"{name} must contain only 0/1, got values {sorted(unique)}")
    return array.astype(np.int64)


def confusion_counts(y_true, y_pred) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` for binary labels (positive class = 1)."""
    y_true = _as_binary(y_true, "y_true")
    y_pred = _as_binary(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ExperimentError(
            f"length mismatch: y_true has {y_true.shape[0]}, y_pred has {y_pred.shape[0]}"
        )
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return tp, fp, fn, tn


def precision(y_true, y_pred) -> float:
    """``tp / (tp + fp)``; defined as 0.0 when nothing was predicted positive."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall(y_true, y_pred) -> float:
    """``tp / (tp + fn)``; defined as 0.0 when there are no positives."""
    tp, _, fn, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall (0.0 when both are 0)."""
    tp, fp, fn, _ = confusion_counts(y_true, y_pred)
    p = tp / (tp + fp) if tp + fp else 0.0
    r = tp / (tp + fn) if tp + fn else 0.0
    return 2 * p * r / (p + r) if p + r else 0.0


def accuracy(y_true, y_pred) -> float:
    """Fraction of matching labels."""
    tp, fp, fn, tn = confusion_counts(y_true, y_pred)
    total = tp + fp + fn + tn
    return (tp + tn) / total if total else 0.0


@dataclass(frozen=True)
class ClassificationReport:
    """Precision, recall, F1 and accuracy for one evaluation.

    Built with :meth:`from_predictions`; formatted like the paper's rows.
    """

    precision: float
    recall: float
    f1: float
    accuracy: float
    tp: int
    fp: int
    fn: int
    tn: int

    @classmethod
    def from_predictions(cls, y_true, y_pred) -> ClassificationReport:
        """Compute all metrics from binary label arrays."""
        tp, fp, fn, tn = confusion_counts(y_true, y_pred)
        p = tp / (tp + fp) if tp + fp else 0.0
        r = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * p * r / (p + r) if p + r else 0.0
        total = tp + fp + fn + tn
        acc = (tp + tn) / total if total else 0.0
        return cls(precision=p, recall=r, f1=f1, accuracy=acc,
                   tp=tp, fp=fp, fn=fn, tn=tn)

    def as_row(self) -> dict[str, float]:
        """The P/R/F1 triple as the paper's Table 3 reports it."""
        return {"P": self.precision, "R": self.recall, "F1": self.f1}

    def __str__(self) -> str:
        return (f"P={self.precision:.2f} R={self.recall:.2f} "
                f"F1={self.f1:.2f} acc={self.accuracy:.3f}")
