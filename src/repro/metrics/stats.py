"""Summary statistics over repeated experiment runs.

The paper repeats every experiment 10 times and reports mean, standard
deviation (Tables 3-5) and confidence intervals (Figures 6/7).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ExperimentError

# Two-sided 95% critical values of Student's t for small samples
# (df 1..30); beyond 30 we fall back to the normal value 1.96.
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ExperimentError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (``n - 1`` denominator); 0.0 for n == 1."""
    if not values:
        raise ExperimentError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def confidence_interval(values: Sequence[float],
                        level: float = 0.95) -> tuple[float, float]:
    """Two-sided t confidence interval for the mean.

    Only the 95% level is supported (the figures use 95% bands); other
    levels raise.
    """
    if abs(level - 0.95) > 1e-9:
        raise ExperimentError(f"only the 0.95 level is supported, got {level}")
    if not values:
        raise ExperimentError("confidence interval of empty sequence")
    mu = mean(values)
    if len(values) == 1:
        return (mu, mu)
    df = len(values) - 1
    critical = _T_95[df - 1] if df <= len(_T_95) else 1.96
    half_width = critical * stdev(values) / math.sqrt(len(values))
    return (mu - half_width, mu + half_width)


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and 95% CI of a metric over runs."""

    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.stdev:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from repeated measurements."""
    low, high = confidence_interval(values)
    return Summary(mean=mean(values), stdev=stdev(values),
                   ci_low=low, ci_high=high, n=len(values))
