"""Evaluation metrics and summary statistics for the experiments."""

from repro.metrics.classification import (
    ClassificationReport,
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
)
from repro.metrics.stats import confidence_interval, mean, stdev, summarize

__all__ = [
    "ClassificationReport",
    "accuracy",
    "confusion_counts",
    "precision",
    "recall",
    "f1_score",
    "mean",
    "stdev",
    "confidence_interval",
    "summarize",
]
