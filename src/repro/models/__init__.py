"""The paper's contribution: bidirectional two-stacked RNN error detectors.

* :class:`TSBRNN` -- Two-Stacked Bidirectional RNN (value input only);
* :class:`ETSBRNN` -- Enriched TSB-RNN (value + attribute metadata +
  normalised length inputs);
* :class:`ModelConfig` -- the architecture hyperparameters of Figure 5;
* :class:`ErrorDetector` -- the end-to-end API: preparation, trainset
  selection, training with best-train-loss checkpointing, prediction and
  evaluation.
"""

from repro.models.config import ModelConfig, TrainingConfig
from repro.models.detector import DetectionResult, ErrorDetector, build_model
from repro.models.etsb_rnn import ETSBRNN
from repro.models.tsb_rnn import TSBRNN

__all__ = [
    "ModelConfig",
    "TrainingConfig",
    "TSBRNN",
    "ETSBRNN",
    "build_model",
    "ErrorDetector",
    "DetectionResult",
]
