"""PAT-style pattern-perceptive self-attention encoder (the ``"attn"`` family).

A third registered architecture next to TSB-RNN / ETSB-RNN: instead of a
recurrence over the character sequence, every position attends to every
other through a single scaled-dot-product self-attention layer whose
input embedding is the sum of a character embedding, a character-pattern
embedding (digit / lower / upper / space / punctuation -- the signal the
PAT line of work exploits for format errors) and a learned position
embedding.  The attended context is mean-pooled into one vector per
cell, then joined with the ETSB-style attribute and length branches and
fed through the same dense -> batch-norm -> softmax head.

The attention and fused-embedding kernels live in
:mod:`repro.nn.attention`; both compute backends produce bit-identical
forwards and the kernels keep the dedup engine's batch-composition
invariance (see that module's docstring).  Reduced-precision inference
is not implemented for this family -- ``float64`` only.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, concat
from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.nn import BatchNorm1d, Dense, Embedding
from repro.nn.attention import (
    N_PATTERN_CLASSES,
    attention_pool,
    effective_lengths,
    pattern_embed,
)
from repro.nn.backend import get_backend
from repro.nn.init import glorot_uniform
from repro.nn.kernels import dense_softmax_bce
from repro.nn.losses import categorical_cross_entropy, one_hot
from repro.nn.module import Module, Parameter


class PatternAttentionEncoder(Module):
    """Single-layer self-attention cell classifier.

    Parameters
    ----------
    char_vocab_size:
        Character dictionary size including the pad slot.
    attr_vocab_size:
        Attribute dictionary size including the pad slot.
    pattern_classes:
        Per-character-index pattern class table from
        :func:`repro.nn.attention.pattern_table` -- length
        ``char_vocab_size``, derived from the character dictionary (so a
        restored archive rebuilds it identically).
    max_length:
        Maximum padded sequence width; sizes the position table.
    config:
        Architecture widths (``char_embed_dim``, ``attn_dim``,
        ``attr_embed_dim``, ``attr_units``, ``length_dense_units``,
        ``head_units``).
    rng:
        Random generator for weight initialization.
    """

    def __init__(self, char_vocab_size: int, attr_vocab_size: int,
                 pattern_classes: np.ndarray, max_length: int,
                 config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        pattern_classes = np.asarray(pattern_classes, dtype=np.int64)
        if pattern_classes.shape != (char_vocab_size,):
            raise ConfigurationError(
                f"pattern_classes must have shape ({char_vocab_size},), "
                f"got {pattern_classes.shape}")
        self.config = config
        self.max_length = max(int(max_length), 1)
        # Derived from the dictionary, not trained: a plain array, so it
        # stays out of the state dict and archives rebuild it from chars.
        self.pattern_classes = pattern_classes
        self.embedding = Embedding(char_vocab_size, config.char_embed_dim, rng)
        self.pattern_embedding = Embedding(N_PATTERN_CLASSES,
                                           config.char_embed_dim, rng,
                                           mask_zero=False)
        self.position_embedding = Embedding(self.max_length,
                                            config.char_embed_dim, rng,
                                            mask_zero=False)
        self.wq = Parameter(glorot_uniform(
            rng, (config.char_embed_dim, config.attn_dim)), name="attn.wq")
        self.wk = Parameter(glorot_uniform(
            rng, (config.char_embed_dim, config.attn_dim)), name="attn.wk")
        self.wv = Parameter(glorot_uniform(
            rng, (config.char_embed_dim, config.attn_dim)), name="attn.wv")
        self.scale = 1.0 / float(np.sqrt(config.attn_dim))
        # Attribute branch: embedding + dense (no recurrence needed for a
        # length-1 "sequence").  Length branch mirrors ETSB-RNN.
        self.attr_embedding = Embedding(attr_vocab_size, config.attr_embed_dim,
                                        rng, mask_zero=False)
        self.attr_dense = Dense(config.attr_embed_dim, config.attr_units, rng,
                                activation="relu")
        self.length_dense = Dense(1, config.length_dense_units, rng,
                                  activation="relu")
        combined = (config.attn_dim + config.attr_units
                    + config.length_dense_units)
        self.head = Dense(combined, config.head_units, rng, activation="relu")
        self.norm = BatchNorm1d(config.head_units)
        self.classifier = Dense(config.head_units, 2, rng, activation="softmax")

    def _encode(self, features: dict[str, np.ndarray]) -> Tensor:
        """The shared trunk: all three branches up to (excluding) the classifier."""
        for key in ("values", "attributes", "length_norm"):
            if key not in features:
                raise ConfigurationError(
                    f"PatternAttentionEncoder requires a {key!r} feature")
        values = np.asarray(features["values"], dtype=np.int64)
        lengths = effective_lengths(values)
        embedded = pattern_embed(self.embedding.weights,
                                 self.pattern_embedding.weights,
                                 self.position_embedding.weights,
                                 values, self.pattern_classes[values])
        pooled = attention_pool(embedded, self.wq, self.wk, self.wv,
                                lengths, self.scale)

        attr_indices = np.asarray(features["attributes"],
                                  dtype=np.int64).reshape(-1)
        attr_encoded = self.attr_dense(self.attr_embedding(attr_indices))

        length = Tensor(np.asarray(features["length_norm"], dtype=np.float64))
        length_encoded = self.length_dense(length)

        combined = concat([pooled, attr_encoded, length_encoded], axis=-1)
        return self.norm(self.head(combined))

    def forward(self, features: dict[str, np.ndarray]) -> Tensor:
        """Classify each cell; returns ``(batch, 2)`` softmax probabilities.

        Takes the same encoded-feature dict as the RNN families:
        ``values`` ``(batch, max_length)``, ``attributes`` ``(batch,)``,
        ``length_norm`` ``(batch, 1)``.
        """
        return self.classifier(self._encode(features))

    def training_loss(self, features: dict[str, np.ndarray],
                      labels: np.ndarray) -> Tensor:
        """Binary cross-entropy of the two-way softmax head.

        Dispatches on the active backend exactly like
        :meth:`repro.models.etsb_rnn.ETSBRNN.training_loss`.
        """
        hidden = self._encode(features)
        targets = one_hot(np.asarray(labels), 2)
        if get_backend() == "fused":
            return dense_softmax_bce(hidden, self.classifier.kernel,
                                     self.classifier.bias, targets)
        return categorical_cross_entropy(self.classifier(hidden), targets)
