"""TSB-RNN: the Two-Stacked Bidirectional RNN architecture (Section 4.3.1).

Character indices -> embedding -> two-stacked bidirectional tanh RNN
(64 units per direction) -> dense 32 ReLU -> batch norm -> dense 2
softmax.  The output is the probability distribution over
{correct, error} for one cell value.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.nn import BatchNorm1d, BidirectionalRNN, Dense, Embedding
from repro.nn.backend import get_backend
from repro.nn.kernels import dense_softmax_bce
from repro.nn.losses import categorical_cross_entropy, one_hot
from repro.nn.module import Module


class TSBRNN(Module):
    """The value-only architecture of Figure 5 (top part).

    Parameters
    ----------
    char_vocab_size:
        Character dictionary size including the pad slot.
    config:
        Architecture widths.
    rng:
        Random generator for weight initialization.
    """

    def __init__(self, char_vocab_size: int, config: ModelConfig,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.embedding = Embedding(char_vocab_size, config.char_embed_dim, rng)
        self.birnn = BidirectionalRNN(config.char_embed_dim, config.value_units,
                                      rng, num_layers=config.num_layers,
                                      cell_type=config.cell_type)
        self.head = Dense(self.birnn.output_dim, config.head_units, rng,
                          activation="relu")
        self.norm = BatchNorm1d(config.head_units)
        self.classifier = Dense(config.head_units, 2, rng, activation="softmax")

    def _encode(self, features: dict[str, np.ndarray]) -> Tensor:
        """The shared trunk: everything up to (excluding) the classifier."""
        if "values" not in features:
            raise ConfigurationError("TSBRNN requires a 'values' feature")
        indices = features["values"]
        mask = self.embedding.padding_mask(indices)
        if mask is not None and not mask.any(axis=1).all():
            # Fully padded rows (empty cell values) would never update the
            # RNN state; give them one live step so the final state is the
            # learned response to "empty".
            mask = mask.copy()
            mask[~mask.any(axis=1), 0] = True
        embedded = self.embedding(indices)
        encoded = self.birnn(embedded, mask=mask)
        return self.norm(self.head(encoded))

    def forward(self, features: dict[str, np.ndarray]) -> Tensor:
        """Classify each cell; returns ``(batch, 2)`` softmax probabilities.

        Parameters
        ----------
        features:
            Must contain ``values``: ``(batch, max_length)`` padded
            character indices.  Other keys are ignored, which lets the
            same feature dicts feed both architectures.
        """
        return self.classifier(self._encode(features))

    def training_loss(self, features: dict[str, np.ndarray],
                      labels: np.ndarray) -> Tensor:
        """Binary cross-entropy of the two-way softmax head (Section 5.2).

        On the ``"fused"`` backend the dense + softmax + BCE head runs as
        a single autograd node; the ``"graph"`` backend composes the same
        computation from primitive ops.  Values are identical.
        """
        hidden = self._encode(features)
        targets = one_hot(np.asarray(labels), 2)
        if get_backend() == "fused":
            return dense_softmax_bce(hidden, self.classifier.kernel,
                                     self.classifier.bias, targets)
        return categorical_cross_entropy(self.classifier(hidden), targets)
