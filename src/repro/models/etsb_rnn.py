"""ETSB-RNN: the Enriched Two-Stacked Bidirectional RNN (Section 4.3.2).

Extends TSB-RNN with two additional inputs (Figure 5, bottom part):

* the **attribute index** -- embedded and passed through its own
  two-stacked bidirectional RNN with 8 units (the attribute is a
  length-1 sequence, so this is a learned nonlinear attribute encoding);
* the **normalised value length** -- a dense 64 ReLU branch.

The three branch outputs are concatenated and fed through the same head
as TSB-RNN (dense 32 ReLU -> batch norm -> dense 2 softmax).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, concat
from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.nn import BatchNorm1d, BidirectionalRNN, Dense, Embedding
from repro.nn.backend import get_backend
from repro.nn.kernels import dense_softmax_bce
from repro.nn.losses import categorical_cross_entropy, one_hot
from repro.nn.module import Module


class ETSBRNN(Module):
    """The enriched three-input architecture of Figure 5 (bottom part).

    Parameters
    ----------
    char_vocab_size:
        Character dictionary size including the pad slot.
    attr_vocab_size:
        Attribute dictionary size including the pad slot.
    config:
        Architecture widths.
    rng:
        Random generator for weight initialization.
    """

    def __init__(self, char_vocab_size: int, attr_vocab_size: int,
                 config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        # Value branch (identical to TSB-RNN).
        self.embedding = Embedding(char_vocab_size, config.char_embed_dim, rng)
        self.birnn = BidirectionalRNN(config.char_embed_dim, config.value_units,
                                      rng, num_layers=config.num_layers,
                                      cell_type=config.cell_type)
        # Attribute branch: embedding + 8-unit two-stacked BiRNN.
        self.attr_embedding = Embedding(attr_vocab_size, config.attr_embed_dim,
                                        rng, mask_zero=False)
        self.attr_birnn = BidirectionalRNN(config.attr_embed_dim,
                                           config.attr_units, rng,
                                           num_layers=config.num_layers,
                                           cell_type=config.cell_type)
        # Length branch: dense 64 ReLU on the scalar ratio.
        self.length_dense = Dense(1, config.length_dense_units, rng,
                                  activation="relu")
        combined = (self.birnn.output_dim + self.attr_birnn.output_dim
                    + config.length_dense_units)
        self.head = Dense(combined, config.head_units, rng, activation="relu")
        self.norm = BatchNorm1d(config.head_units)
        self.classifier = Dense(config.head_units, 2, rng, activation="softmax")

    def _encode(self, features: dict[str, np.ndarray]) -> Tensor:
        """The shared trunk: all three branches up to (excluding) the classifier."""
        for key in ("values", "attributes", "length_norm"):
            if key not in features:
                raise ConfigurationError(f"ETSBRNN requires a {key!r} feature")
        indices = features["values"]
        mask = self.embedding.padding_mask(indices)
        if mask is not None and not mask.any(axis=1).all():
            mask = mask.copy()
            mask[~mask.any(axis=1), 0] = True
        value_encoded = self.birnn(self.embedding(indices), mask=mask)

        attr_indices = np.asarray(features["attributes"]).reshape(-1, 1)
        attr_encoded = self.attr_birnn(self.attr_embedding(attr_indices))

        length = Tensor(np.asarray(features["length_norm"], dtype=np.float64))
        length_encoded = self.length_dense(length)

        combined = concat([value_encoded, attr_encoded, length_encoded], axis=-1)
        return self.norm(self.head(combined))

    def forward(self, features: dict[str, np.ndarray]) -> Tensor:
        """Classify each cell; returns ``(batch, 2)`` softmax probabilities.

        Parameters
        ----------
        features:
            ``values`` -- ``(batch, max_length)`` character indices;
            ``attributes`` -- ``(batch,)`` attribute indices;
            ``length_norm`` -- ``(batch, 1)`` length ratios.
        """
        return self.classifier(self._encode(features))

    def training_loss(self, features: dict[str, np.ndarray],
                      labels: np.ndarray) -> Tensor:
        """Binary cross-entropy of the two-way softmax head (Section 5.2).

        Dispatches on the active backend exactly like
        :meth:`repro.models.tsb_rnn.TSBRNN.training_loss`.
        """
        hidden = self._encode(features)
        targets = one_hot(np.asarray(labels), 2)
        if get_backend() == "fused":
            return dense_softmax_bce(hidden, self.classifier.kernel,
                                     self.classifier.bias, targets)
        return categorical_cross_entropy(self.classifier(hidden), targets)
