"""Hyperparameter configuration for the paper's architectures.

Defaults follow Sections 4.3 and 5.2: 64-unit two-stacked bidirectional
value RNN, 8-unit attribute RNN, 64-wide length branch, 32-wide head,
120 epochs, RMSprop, batch size of a quarter of the trainset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ModelConfig:
    """Architecture widths (Figure 5).

    Attributes
    ----------
    char_embed_dim:
        Character embedding width.  The paper embeds into the dictionary
        dimension; a fixed 32 keeps cost stable across datasets whose
        alphabets range from 46 to 135 characters.
    value_units:
        Hidden width of the value BiRNN (64 in the paper).
    num_layers:
        Stack depth of every RNN (2 -- "two-stacked").
    attr_embed_dim, attr_units:
        Attribute embedding width and attribute BiRNN width (8).
    length_dense_units:
        Width of the length_norm dense branch (64).
    head_units:
        Width of the shared dense layer before batch norm (32).
    cell_type:
        Recurrence family: ``"rnn"`` (the paper's tanh RNN), ``"lstm"``
        or ``"gru"`` (the heavier alternatives of the related-work
        comparison; used by the cell-type ablation bench).
    attn_dim:
        Projection width of the pattern-perceptive self-attention
        encoder (the ``"attn"`` family); unused by the RNN families.
    """

    char_embed_dim: int = 32
    value_units: int = 64
    num_layers: int = 2
    attr_embed_dim: int = 8
    attr_units: int = 8
    length_dense_units: int = 64
    head_units: int = 32
    cell_type: str = "rnn"
    attn_dim: int = 32

    def __post_init__(self) -> None:
        for name in ("char_embed_dim", "value_units", "num_layers",
                     "attr_embed_dim", "attr_units", "length_dense_units",
                     "head_units", "attn_dim"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.cell_type not in ("rnn", "lstm", "gru"):
            raise ConfigurationError(
                f"cell_type must be rnn, lstm or gru, got {self.cell_type!r}"
            )


@dataclass(frozen=True)
class TrainingConfig:
    """Training-loop settings (Section 5.2).

    Attributes
    ----------
    epochs:
        Number of training epochs (120 in the paper).
    batch_fraction:
        Batch size as a fraction of the trainset (the paper uses 1/4).
    learning_rate:
        RMSprop step size.
    max_grad_norm:
        Global-norm gradient clipping (``None`` disables).
    bucket_batches:
        Train with length-bucketed batches whose padded tails are trimmed
        (:class:`~repro.nn.training.BucketBatchSampler`).  Equivalent to
        the full-padding path up to float accumulation order, and much
        faster on skewed-length datasets.  Off by default so the paper's
        exact batch-shuffling protocol stays the reference.
    n_length_buckets:
        Auto-quantile bucket count when ``bucket_edges`` is ``None``.
    bucket_edges:
        Explicit ascending bucket upper edges (inclusive); overrides the
        quantile heuristic.
    """

    epochs: int = 120
    batch_fraction: float = 0.25
    learning_rate: float = 0.001
    max_grad_norm: float | None = 5.0
    bucket_batches: bool = False
    n_length_buckets: int = 4
    bucket_edges: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ConfigurationError(
                f"batch_fraction must be in (0, 1], got {self.batch_fraction}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.n_length_buckets < 1:
            raise ConfigurationError(
                f"n_length_buckets must be >= 1, got {self.n_length_buckets}"
            )

    def batch_size(self, train_size: int) -> int:
        """Batch size for a given trainset size (at least 1)."""
        return max(int(train_size * self.batch_fraction), 1)
