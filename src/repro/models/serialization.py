"""Saving and loading fitted detectors.

A fitted :class:`~repro.models.detector.ErrorDetector` is more than its
weights: prediction needs the character and attribute dictionaries and
the padded sequence length from data preparation.  ``save_detector``
packs all of it into a single ``.npz`` archive (weights as arrays,
metadata as a JSON payload); ``load_detector`` reconstructs a detector
that predicts identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.dataprep import PreparedData
from repro.dataprep.dictionaries import AttributeDictionary, CharDictionary
from repro.errors import DataError, NotFittedError
from repro.models.config import ModelConfig
from repro.models.detector import ErrorDetector, build_model
from repro.table import Table

_FORMAT_VERSION = 1


def _dictionary_chars(char_index: CharDictionary) -> str:
    """The characters in index order (index i+1 -> chars[i])."""
    return "".join(char_index.char_of(i)
                   for i in range(1, char_index.n_chars + 1))


def save_detector(detector: ErrorDetector, path: str | Path) -> None:
    """Serialise a fitted detector to an ``.npz`` archive.

    Raises
    ------
    NotFittedError
        When the detector has not been fitted.
    """
    if detector.model is None or detector.prepared is None:
        raise NotFittedError("cannot save an unfitted detector")
    prepared = detector.prepared
    meta = {
        "format_version": _FORMAT_VERSION,
        "architecture": detector.architecture,
        "model_config": asdict(detector.model_config),
        "characters": _dictionary_chars(prepared.char_index),
        "attributes": list(prepared.attributes),
        "max_length": prepared.max_length,
        "seed": detector.seed,
    }
    arrays = {
        f"state:{name}": value
        for name, value in detector.model.state_dict().items()
    }
    np.savez(Path(path), meta=json.dumps(meta), **arrays)


def load_detector(path: str | Path) -> ErrorDetector:
    """Reconstruct a detector saved with :func:`save_detector`.

    The returned detector can :meth:`~repro.models.detector.ErrorDetector.predict`
    and encode new values; it carries no training split (``evaluate`` is
    unavailable -- re-fit for that).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "meta" not in archive:
            raise DataError(f"{path}: not a repro detector archive")
        meta = json.loads(str(archive["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise DataError(
                f"{path}: unsupported format version {meta.get('format_version')}"
            )
        state = {
            name[len("state:"):]: archive[name]
            for name in archive.files if name.startswith("state:")
        }

    config = ModelConfig(**meta["model_config"])
    detector = ErrorDetector(architecture=meta["architecture"],
                             model_config=config, seed=meta["seed"])

    char_index = CharDictionary([meta["characters"]])
    attribute_index = AttributeDictionary(meta["attributes"])
    # A minimal PreparedData carrying only what prediction needs: the
    # dictionaries and sequence length (the df is an empty placeholder).
    placeholder = Table({name: [] for name in
                         ("id_", "attribute", "value_x", "value_y", "label",
                          "empty", "concat", "length_norm")})
    prepared = PreparedData(
        df=placeholder,
        attributes=tuple(meta["attributes"]),
        char_index=char_index,
        attribute_index=attribute_index,
        max_length=int(meta["max_length"]),
    )
    rng = np.random.default_rng(meta["seed"])
    model = build_model(meta["architecture"], prepared, config, rng)
    # load_state_dict bumps the model's weights version, so a prediction
    # cache can never serve entries computed under the fresh-init weights.
    model.load_state_dict(state)
    model.eval()

    detector.model = model
    detector.prepared = prepared
    from repro.nn import RMSprop, Trainer
    from repro.models.detector import _loss
    detector.trainer = Trainer(model=model,
                               optimizer=RMSprop(model.parameters()),
                               loss_fn=_loss,
                               prediction_cache=detector.prediction_cache)
    return detector


def encode_values_for(detector: ErrorDetector, values: list[str],
                      attributes: list[str]) -> dict[str, np.ndarray]:
    """Encode raw (value, attribute) pairs with a loaded detector's
    dictionaries, producing a feature dict for ``detector.predict``.

    Unknown characters are skipped (the detector never saw them, so
    they carry no signal); overlong values are truncated.
    """
    if detector.prepared is None:
        raise NotFittedError("detector carries no dictionaries")
    prepared = detector.prepared
    if len(values) != len(attributes):
        raise DataError(
            f"{len(values)} values but {len(attributes)} attributes"
        )
    n = len(values)
    encoded = np.zeros((n, prepared.max_length), dtype=np.int64)
    attr_idx = np.zeros(n, dtype=np.int64)
    length_norm = np.zeros((n, 1))
    for i, (value, attribute) in enumerate(zip(values, attributes)):
        clipped = value[:prepared.max_length]
        encoded[i] = prepared.char_index.encode(
            clipped, prepared.max_length, unknown="skip")
        attr_idx[i] = prepared.attribute_index.index_of(attribute)
        length_norm[i, 0] = min(len(value) / prepared.max_length, 1.0)
    return {"values": encoded, "attributes": attr_idx,
            "length_norm": length_norm}
