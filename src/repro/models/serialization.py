"""Saving and loading fitted detectors and training checkpoints.

A fitted :class:`~repro.models.detector.ErrorDetector` is more than its
weights: prediction needs the character and attribute dictionaries and
the padded sequence length from data preparation.  ``save_detector``
packs all of it into a single ``.npz`` archive (weights as arrays,
metadata as a JSON payload); ``load_detector`` reconstructs a detector
that predicts identically.  Format version 2 additionally carries the
optimizer's update state (RMSprop mean squares etc.), making a restored
detector truly resumable; version-1 archives still load (with a fresh
optimizer).

This module also owns the *training checkpoint* format used by
:meth:`repro.nn.training.Trainer.fit` for crash safety: one ``.npz``
per save holding the model weights, the optimizer state, the shuffling
RNG state, every callback's state and the last completed epoch.  Writes
are atomic (write to a temp file in the same directory, then
``os.replace``), so a crash mid-write can never corrupt the previous
checkpoint, and resuming from one provably replays the uninterrupted
weight trajectory bit for bit.
"""

from __future__ import annotations

import json
import os

from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.dataprep import PreparedData
from repro.dataprep.dictionaries import AttributeDictionary, CharDictionary
from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.models.config import ModelConfig, TrainingConfig
from repro.models.detector import ErrorDetector, build_model
from repro.nn.callbacks import Callback
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.table import Table

#: Detector archive version: 2 added the optimizer state (v1 still loads).
_FORMAT_VERSION = 2

#: Training-checkpoint archive version.
_CHECKPOINT_VERSION = 1


def _atomic_savez(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` with write-then-rename atomicity.

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename: readers only ever see
    the old complete archive or the new complete archive.
    """
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def _dictionary_chars(char_index: CharDictionary) -> str:
    """The characters in index order (index i+1 -> chars[i])."""
    return "".join(char_index.char_of(i)
                   for i in range(1, char_index.n_chars + 1))


def save_detector(detector: ErrorDetector, path: str | Path) -> None:
    """Serialise a fitted detector to an ``.npz`` archive (format v2).

    Version 2 includes the optimizer's update state, so a loaded
    detector can genuinely resume training where it stopped instead of
    restarting RMSprop's moving averages from zero.

    Raises
    ------
    NotFittedError
        When the detector has not been fitted.
    """
    if detector.model is None or detector.prepared is None:
        raise NotFittedError("cannot save an unfitted detector")
    prepared = detector.prepared
    meta = {
        "format_version": _FORMAT_VERSION,
        "architecture": detector.architecture,
        "model_config": asdict(detector.model_config),
        "training_config": asdict(detector.training_config),
        "characters": _dictionary_chars(prepared.char_index),
        "attributes": list(prepared.attributes),
        "max_length": prepared.max_length,
        "seed": detector.seed,
    }
    arrays = {
        f"state:{name}": value
        for name, value in detector.model.state_dict().items()
    }
    if detector.trainer is not None:
        opt_state = detector.trainer.optimizer.state_dict()
        meta["optimizer"] = {
            "type": opt_state["type"],
            "learning_rate": opt_state["learning_rate"],
            "extra": opt_state["extra"],
            "slots": {name: len(values)
                      for name, values in opt_state["slots"].items()},
        }
        for slot, values in opt_state["slots"].items():
            for i, value in enumerate(values):
                arrays[f"opt:{slot}:{i:04d}"] = value
    path = Path(path)
    if path.suffix != ".npz":        # np.savez appends .npz to bare names;
        path = path.with_name(path.name + ".npz")  # keep the atomic path aligned
    _atomic_savez(path, {"meta": np.asarray(json.dumps(meta)), **arrays})


def load_detector(path: str | Path) -> ErrorDetector:
    """Reconstruct a detector saved with :func:`save_detector`.

    The returned detector can :meth:`~repro.models.detector.ErrorDetector.predict`
    and encode new values; it carries no training split (``evaluate`` is
    unavailable -- re-fit for that).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "meta" not in archive:
            raise DataError(f"{path}: not a repro detector archive")
        meta = json.loads(str(archive["meta"]))
        version = meta.get("format_version")
        if version not in (1, _FORMAT_VERSION):
            raise DataError(
                f"{path}: unsupported format version {version}"
            )
        state = {
            name[len("state:"):]: archive[name]
            for name in archive.files if name.startswith("state:")
        }
        opt_arrays = {
            name: archive[name]
            for name in archive.files if name.startswith("opt:")
        }

    config = ModelConfig(**meta["model_config"])
    training_config = None
    if meta.get("training_config") is not None:
        tc = dict(meta["training_config"])
        if tc.get("bucket_edges") is not None:
            tc["bucket_edges"] = tuple(tc["bucket_edges"])
        training_config = TrainingConfig(**tc)
    detector = ErrorDetector(architecture=meta["architecture"],
                             model_config=config,
                             training_config=training_config,
                             seed=meta["seed"])

    char_index = CharDictionary([meta["characters"]])
    attribute_index = AttributeDictionary(meta["attributes"])
    # A minimal PreparedData carrying only what prediction needs: the
    # dictionaries and sequence length (the df is an empty placeholder).
    placeholder = Table({name: [] for name in
                         ("id_", "attribute", "value_x", "value_y", "label",
                          "empty", "concat", "length_norm")})
    prepared = PreparedData(
        df=placeholder,
        attributes=tuple(meta["attributes"]),
        char_index=char_index,
        attribute_index=attribute_index,
        max_length=int(meta["max_length"]),
    )
    rng = np.random.default_rng(meta["seed"])
    model = build_model(meta["architecture"], prepared, config, rng)
    # load_state_dict bumps the model's weights version, so a prediction
    # cache can never serve entries computed under the fresh-init weights.
    model.load_state_dict(state)
    model.eval()

    detector.model = model
    detector.prepared = prepared
    from repro.nn import Trainer
    from repro.models.detector import _loss
    optimizer = _rebuild_optimizer(model, meta.get("optimizer"), opt_arrays)
    detector.trainer = Trainer(model=model,
                               optimizer=optimizer,
                               loss_fn=_loss,
                               prediction_cache=detector.prediction_cache)
    return detector


#: Optimizer classes a detector archive may reference.
def _optimizer_class(name: str):
    from repro.nn import SGD, Adam, RMSprop
    classes = {"SGD": SGD, "RMSprop": RMSprop, "Adam": Adam}
    if name not in classes:
        raise DataError(
            f"archive references unknown optimizer {name!r}; "
            f"known: {sorted(classes)}"
        )
    return classes[name]


def _rebuild_optimizer(model: Module, opt_meta: dict | None,
                       opt_arrays: dict[str, np.ndarray]) -> Optimizer:
    """Reconstruct the archived optimizer (v2) or a fresh RMSprop (v1).

    Version-1 archives carry no optimizer section: the paper's default
    RMSprop starts with zeroed moving averages, exactly the old
    behaviour, so old files keep loading unchanged.
    """
    from repro.nn import RMSprop
    if opt_meta is None:
        return RMSprop(model.parameters())
    optimizer = _optimizer_class(opt_meta["type"])(model.parameters())
    slots = {
        slot: [opt_arrays[f"opt:{slot}:{i:04d}"] for i in range(count)]
        for slot, count in opt_meta["slots"].items()
    }
    optimizer.load_state_dict({
        "type": opt_meta["type"],
        "learning_rate": opt_meta["learning_rate"],
        "extra": opt_meta["extra"],
        "slots": slots,
    })
    return optimizer


def encode_values_for(detector: ErrorDetector, values: list[str],
                      attributes: list[str]) -> dict[str, np.ndarray]:
    """Encode raw (value, attribute) pairs with a loaded detector's
    dictionaries, producing a feature dict for ``detector.predict``.

    Unknown characters are skipped (the detector never saw them, so
    they carry no signal); overlong values are truncated.
    """
    if detector.prepared is None:
        raise NotFittedError("detector carries no dictionaries")
    prepared = detector.prepared
    if len(values) != len(attributes):
        raise DataError(
            f"{len(values)} values but {len(attributes)} attributes"
        )
    n = len(values)
    encoded = np.zeros((n, prepared.max_length), dtype=np.int64)
    attr_idx = np.zeros(n, dtype=np.int64)
    length_norm = np.zeros((n, 1))
    for i, (value, attribute) in enumerate(zip(values, attributes)):
        clipped = value[:prepared.max_length]
        encoded[i] = prepared.char_index.encode(
            clipped, prepared.max_length, unknown="skip")
        attr_idx[i] = prepared.attribute_index.index_of(attribute)
        length_norm[i, 0] = min(len(value) / prepared.max_length, 1.0)
    return {"values": encoded, "attributes": attr_idx,
            "length_norm": length_norm}


# -- training checkpoints -----------------------------------------------------

@dataclass(frozen=True)
class TrainingCheckpoint:
    """Everything :meth:`Trainer.fit` needs to continue bit-for-bit.

    Attributes
    ----------
    epoch:
        Last *completed* epoch (0-based); resume continues at
        ``epoch + 1``.
    model_state:
        :meth:`~repro.nn.module.Module.state_dict` snapshot.
    optimizer_state:
        :meth:`~repro.nn.optim.Optimizer.state_dict` snapshot.
    rng_state:
        The shuffling generator's ``bit_generator.state`` (``None`` when
        the trainer shuffles deterministically without an RNG).
    callback_types, callback_states:
        Per-callback class names and state snapshots, parallel to the
        trainer's callback list (the implicit ``History`` included).
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict | None
    callback_types: tuple[str, ...] = ()
    callback_states: tuple[dict, ...] = field(default_factory=tuple)


def _pack_callback_state(index: int, callback: Callback,
                         arrays: dict[str, np.ndarray]) -> dict:
    """Flatten one callback's state into JSON meta + npz arrays.

    State values may be JSON-able scalars/containers, arrays, or one
    level of ``dict[str, ndarray]`` (how ``BestWeightsCheckpoint`` holds
    its best weights).
    """
    state = callback.state_dict()
    meta: dict = {"type": type(callback).__name__, "scalars": {},
                  "arrays": [], "nested": {}}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[f"cb{index}:{key}"] = value
            meta["arrays"].append(key)
        elif (isinstance(value, dict) and value
              and all(isinstance(v, np.ndarray) for v in value.values())):
            for sub, array in value.items():
                arrays[f"cb{index}:{key}/{sub}"] = array
            meta["nested"][key] = list(value)
        else:
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"callback {type(callback).__name__} state key {key!r} "
                    f"is not checkpointable (got {type(value).__name__})"
                ) from None
            meta["scalars"][key] = value
    return meta


def _unpack_callback_state(index: int, meta: dict,
                           archive) -> dict:
    """Inverse of :func:`_pack_callback_state`."""
    state: dict = dict(meta["scalars"])
    for key in meta["arrays"]:
        state[key] = archive[f"cb{index}:{key}"]
    for key, subkeys in meta["nested"].items():
        state[key] = {sub: archive[f"cb{index}:{key}/{sub}"]
                      for sub in subkeys}
    return state


def save_training_checkpoint(path: str | Path, model: Module,
                             optimizer: Optimizer, epoch: int,
                             rng: np.random.Generator | None = None,
                             callbacks: tuple[Callback, ...] | list[Callback] = (),
                             ) -> None:
    """Atomically write one epoch's full training state to ``path``.

    The write is crash-safe: the archive is assembled under a temporary
    name in the same directory and renamed over ``path`` in one
    ``os.replace``, so an interrupted save leaves the previous
    checkpoint intact.
    """
    arrays: dict[str, np.ndarray] = {
        f"model:{name}": value
        for name, value in model.state_dict().items()
    }
    opt_state = optimizer.state_dict()
    for slot, values in opt_state["slots"].items():
        for i, value in enumerate(values):
            arrays[f"opt:{slot}:{i:04d}"] = value
    callback_meta = [_pack_callback_state(i, callback, arrays)
                     for i, callback in enumerate(callbacks)]
    meta = {
        "format": "repro-training-checkpoint",
        "format_version": _CHECKPOINT_VERSION,
        "epoch": int(epoch),
        "rng_state": None if rng is None else rng.bit_generator.state,
        "optimizer": {
            "type": opt_state["type"],
            "learning_rate": opt_state["learning_rate"],
            "extra": opt_state["extra"],
            "slots": {name: len(values)
                      for name, values in opt_state["slots"].items()},
        },
        "callbacks": callback_meta,
    }
    _atomic_savez(Path(path), {"meta": np.asarray(json.dumps(meta)), **arrays})


def load_training_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Read a checkpoint written by :func:`save_training_checkpoint`.

    Raises
    ------
    DataError
        When the file is not a training checkpoint or its version is
        unsupported.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "meta" not in archive:
            raise DataError(f"{path}: not a repro archive")
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != "repro-training-checkpoint":
            raise DataError(f"{path}: not a training checkpoint")
        if meta.get("format_version") != _CHECKPOINT_VERSION:
            raise DataError(
                f"{path}: unsupported checkpoint version "
                f"{meta.get('format_version')}"
            )
        model_state = {
            name[len("model:"):]: archive[name]
            for name in archive.files if name.startswith("model:")
        }
        opt_meta = meta["optimizer"]
        optimizer_state = {
            "type": opt_meta["type"],
            "learning_rate": opt_meta["learning_rate"],
            "extra": opt_meta["extra"],
            "slots": {
                slot: [archive[f"opt:{slot}:{i:04d}"] for i in range(count)]
                for slot, count in opt_meta["slots"].items()
            },
        }
        callback_states = tuple(
            _unpack_callback_state(i, cb_meta, archive)
            for i, cb_meta in enumerate(meta["callbacks"])
        )
    return TrainingCheckpoint(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=meta["rng_state"],
        callback_types=tuple(cb["type"] for cb in meta["callbacks"]),
        callback_states=callback_states,
    )
