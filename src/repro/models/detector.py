"""The end-to-end error-detection API (the paper's "system in action").

:class:`ErrorDetector` wires the whole pipeline together: data
preparation, trainset selection, label acquisition (from the clean table
or a user-supplied labelling function), training with best-train-loss
checkpointing, and evaluation on the held-out cells.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.dataprep import (
    PreparedData,
    TrainTestSplit,
    prepare,
    split_by_tuple_ids,
)
from repro.datasets.base import DatasetPair
from repro.errors import ConfigurationError, NotFittedError
from repro.inference import InferenceStats, PredictionCache
from repro.inference.index import DedupIndex
from repro.metrics import ClassificationReport
from repro.models.attn import PatternAttentionEncoder
from repro.models.config import ModelConfig, TrainingConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.models.tsb_rnn import TSBRNN
from repro.nn import (
    BestWeightsCheckpoint,
    BucketBatchSampler,
    Callback,
    RMSprop,
    Trainer,
    categorical_cross_entropy,
)
from repro.nn.losses import one_hot
from repro.nn.lowp import PRECISION_MODES
from repro.nn.module import Module
from repro.sampling import DiverSet, Sampler
from repro.table import Table

ARCHITECTURES = ("tsb", "etsb", "attn")

#: Maps a tuple id and its attribute-ordered dirty values to 0/1 labels.
LabelFunction = Callable[[int, dict[str, str]], Sequence[int]]


def build_model(architecture: str, prepared: PreparedData,
                config: ModelConfig, rng: np.random.Generator) -> Module:
    """Instantiate TSB-RNN, ETSB-RNN or the attention family for a dataset."""
    if architecture == "tsb":
        return TSBRNN(prepared.char_index.vocab_size, config, rng)
    if architecture == "etsb":
        return ETSBRNN(prepared.char_index.vocab_size,
                       prepared.attribute_index.vocab_size, config, rng)
    if architecture == "attn":
        from repro.nn.attention import pattern_table
        return PatternAttentionEncoder(
            prepared.char_index.vocab_size,
            prepared.attribute_index.vocab_size,
            pattern_table(prepared.char_index), prepared.max_length,
            config, rng)
    raise ConfigurationError(
        f"architecture must be one of {ARCHITECTURES}, got {architecture!r}"
    )


def _loss(probabilities, labels) -> object:
    """Reference loss for models without a fused ``training_loss``.

    TSB-RNN / ETSB-RNN define ``training_loss`` (which the
    :class:`~repro.nn.training.Trainer` prefers and which dispatches to
    the fused dense+softmax+BCE kernel on the default backend); this
    plain composition computes the identical value and is kept as the
    ``loss_fn`` fallback and for restored detectors.
    """
    return categorical_cross_entropy(probabilities, one_hot(labels, 2))


@dataclass(frozen=True)
class DetectionResult:
    """Evaluation output of a fitted detector.

    Attributes
    ----------
    report:
        Precision / recall / F1 / accuracy on the test cells.
    predictions:
        Binary error predictions, parallel to the test cells.
    tuple_ids:
        Tuple id of each test cell.
    attribute_names:
        Attribute of each test cell.
    inference:
        Counters of the prediction pass that produced ``predictions``:
        unique-cell ratio and cache hit/miss counts, so dedup/memoization
        savings stay observable in evaluation output.  ``None`` when the
        naive path was used.
    """

    report: ClassificationReport
    predictions: np.ndarray
    tuple_ids: np.ndarray
    attribute_names: tuple[str, ...]
    inference: InferenceStats | None = None

    def errors(self) -> list[tuple[int, str]]:
        """The (tuple_id, attribute) pairs predicted to be erroneous."""
        return [
            (int(tid), attr)
            for tid, attr, pred in zip(self.tuple_ids, self.attribute_names,
                                       self.predictions)
            if pred == 1
        ]


class ErrorDetector:
    """Detect erroneous cells in a dirty table with a BiRNN classifier.

    Parameters
    ----------
    architecture:
        ``"etsb"`` (default, the paper's best model) or ``"tsb"``.
    sampler:
        Trainset-selection algorithm (default: the paper's DiverSet).
    n_label_tuples:
        Number of tuples the user labels (the paper uses 20).
    model_config, training_config:
        Architecture and training hyperparameters.
    seed:
        Controls initialization, batching and sampler tie-breaks.
    extra_callbacks:
        Additional training callbacks (e.g. an
        :class:`~repro.nn.callbacks.EpochEvaluator` for learning curves).
    deduplicate:
        Run prediction through the dedup-memoized inference engine
        (default).  Bit-for-bit identical to the naive path; disable only
        to measure the naive baseline.
    prediction_cache_size:
        Capacity of the cross-call :class:`~repro.inference.PredictionCache`
        shared by every prediction this detector serves.
    inference_workers:
        Worker count for prediction (0 = serial).  Thread workers split
        each forward's length groups across the kernel work plane;
        predictions stay bit-identical at any count.
    inference_precision:
        ``"float64"`` (default, the reference), ``"float32"`` or
        ``"int8"`` -- the reduced-precision fast inference mode
        (tolerance-gated, requires ``deduplicate``).
    """

    def __init__(self, architecture: str = "etsb",
                 sampler: Sampler | None = None,
                 n_label_tuples: int = 20,
                 model_config: ModelConfig | None = None,
                 training_config: TrainingConfig | None = None,
                 seed: int = 0,
                 extra_callbacks: Sequence[Callback] = (),
                 deduplicate: bool = True,
                 prediction_cache_size: int = 65536,
                 inference_workers: int = 0,
                 inference_precision: str = "float64"):
        if architecture not in ARCHITECTURES:
            raise ConfigurationError(
                f"architecture must be one of {ARCHITECTURES}, got {architecture!r}"
            )
        if inference_precision not in PRECISION_MODES:
            raise ConfigurationError(
                f"inference_precision must be one of {PRECISION_MODES}, "
                f"got {inference_precision!r}")
        if architecture == "attn" and inference_precision != "float64":
            raise ConfigurationError(
                "the attention family has no reduced-precision evaluator; "
                "use inference_precision='float64'")
        if not deduplicate and inference_precision != "float64":
            raise ConfigurationError(
                "reduced-precision inference requires the dedup engine; "
                "drop deduplicate=False or use float64")
        if inference_workers < 0:
            raise ConfigurationError(
                f"inference_workers must be >= 0, got {inference_workers}")
        self.architecture = architecture
        self.sampler = sampler if sampler is not None else DiverSet()
        self.n_label_tuples = n_label_tuples
        self.model_config = model_config if model_config is not None else ModelConfig()
        self.training_config = (training_config if training_config is not None
                                else TrainingConfig())
        self.seed = seed
        self.extra_callbacks = tuple(extra_callbacks)
        self.deduplicate = deduplicate
        self.inference_workers = inference_workers
        self.inference_precision = inference_precision
        self.prediction_cache = PredictionCache(capacity=prediction_cache_size)
        self.model: Module | None = None
        self.prepared: PreparedData | None = None
        self.split: TrainTestSplit | None = None
        self.trainer: Trainer | None = None
        self.checkpoint: BestWeightsCheckpoint | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(self, pair: DatasetPair,
            checkpoint_path: "str | Path | None" = None,
            resume_from: "str | Path | None" = None) -> "ErrorDetector":
        """Fit on a benchmark pair, labelling sampled tuples from the clean table.

        This mirrors the paper's experiments: the user's labelling of the
        20 selected tuples is simulated with the ground truth, and *only*
        those tuples' labels are ever shown to the model.

        ``checkpoint_path`` / ``resume_from`` pass through to
        :meth:`repro.nn.training.Trainer.fit`: epoch checkpoints are
        written atomically, and resuming from one after a crash yields
        final weights bit-identical to the uninterrupted fit.
        """
        return self.fit_tables(pair.dirty, pair.clean,
                               checkpoint_path=checkpoint_path,
                               resume_from=resume_from)

    def fit_tables(self, dirty: Table, clean: Table,
                   checkpoint_path: "str | Path | None" = None,
                   resume_from: "str | Path | None" = None) -> "ErrorDetector":
        """Fit from explicit dirty/clean tables (ground-truth labelling)."""
        prepared = prepare(dirty, clean)
        rng = np.random.default_rng(self.seed)
        train_ids = self.sampler.select(self.n_label_tuples, prepared, rng)
        split = split_by_tuple_ids(prepared, train_ids)
        return self._train(prepared, split, rng,
                           checkpoint_path=checkpoint_path,
                           resume_from=resume_from)

    def fit_with_labels(self, dirty: Table, label_fn: LabelFunction) -> "ErrorDetector":
        """Fit with labels obtained interactively from ``label_fn``.

        This is the production entry point: no clean table exists, the
        sampler proposes tuples and ``label_fn`` plays the human
        annotator, returning one 0/1 label per attribute of the proposed
        tuple.  Evaluation metrics are unavailable in this mode (there is
        no ground truth for the test cells); use :meth:`predict_table`.
        """
        # Self-merge gives a long table with all labels 0; the user's
        # labels overwrite the sampled tuples' rows below.
        prepared = prepare(dirty, dirty)
        rng = np.random.default_rng(self.seed)
        train_ids = self.sampler.select(self.n_label_tuples, prepared, rng)

        id_col = prepared.df.column("id_").values
        attr_col = prepared.df.column("attribute").values
        value_col = prepared.df.column("value_x").values
        rows_by_id: dict[int, dict[str, str]] = {}
        for tid, attr, value in zip(id_col, attr_col, value_col):
            rows_by_id.setdefault(int(tid), {})[attr] = value

        labels_by_cell: dict[tuple[int, str], int] = {}
        for tid in train_ids:
            row = rows_by_id[tid]
            labels = list(label_fn(tid, row))
            if len(labels) != len(prepared.attributes):
                raise ConfigurationError(
                    f"label_fn returned {len(labels)} labels for tuple {tid}, "
                    f"expected {len(prepared.attributes)}"
                )
            for attr, label in zip(prepared.attributes, labels):
                if label not in (0, 1):
                    raise ConfigurationError(
                        f"labels must be 0 or 1, got {label!r}"
                    )
                labels_by_cell[(tid, attr)] = int(label)

        df = prepared.df.with_computed(
            "label",
            lambda row: labels_by_cell.get((int(row["id_"]), row["attribute"]),
                                           int(row["label"])),
        )
        prepared = PreparedData(
            df=df, attributes=prepared.attributes,
            char_index=prepared.char_index,
            attribute_index=prepared.attribute_index,
            max_length=prepared.max_length,
        )
        split = split_by_tuple_ids(prepared, train_ids)
        return self._train(prepared, split, rng)

    def _train(self, prepared: PreparedData, split: TrainTestSplit,
               rng: np.random.Generator,
               checkpoint_path: "str | Path | None" = None,
               resume_from: "str | Path | None" = None) -> "ErrorDetector":
        model = build_model(self.architecture, prepared, self.model_config, rng)
        optimizer = RMSprop(model.parameters(),
                            learning_rate=self.training_config.learning_rate)
        checkpoint = BestWeightsCheckpoint(monitor="loss", mode="min")
        batch_sampler = None
        if self.training_config.bucket_batches:
            batch_sampler = BucketBatchSampler(
                edges=self.training_config.bucket_edges,
                n_buckets=self.training_config.n_length_buckets,
            )
        trainer = Trainer(
            model=model,
            optimizer=optimizer,
            loss_fn=_loss,
            max_grad_norm=self.training_config.max_grad_norm,
            rng=rng,
            callbacks=(checkpoint, *self.extra_callbacks),
            batch_sampler=batch_sampler,
            prediction_cache=self.prediction_cache,
        )
        batch_size = self.training_config.batch_size(split.train_size)
        # Publish state before fitting so that per-epoch callbacks (e.g.
        # learning-curve evaluators) can reach the model and the split.
        self.model = model
        self.prepared = prepared
        self.split = split
        self.trainer = trainer
        self.checkpoint = checkpoint
        trainer.fit(split.train.features, split.train.labels,
                    epochs=self.training_config.epochs, batch_size=batch_size,
                    lengths=split.train.lengths,
                    checkpoint_path=checkpoint_path, resume_from=resume_from)
        return self

    # -- inference ------------------------------------------------------------

    def _require_fitted(self) -> tuple[Module, PreparedData, TrainTestSplit, Trainer]:
        if self.model is None or self.prepared is None or self.split is None \
                or self.trainer is None:
            raise NotFittedError("fit() has not been called")
        return self.model, self.prepared, self.split, self.trainer

    def predict(self, features: dict[str, np.ndarray],
                lengths: np.ndarray | None = None,
                dedup: DedupIndex | None = None) -> np.ndarray:
        """Binary error predictions for encoded features.

        Works on freshly fitted detectors and on detectors restored via
        :func:`repro.models.serialization.load_detector` (which carry no
        train/test split).  ``lengths`` (true per-row sequence lengths,
        e.g. :attr:`~repro.dataprep.encoding.EncodedCells.lengths`)
        enables sorted-by-length inference chunking: cheaper on skewed
        data, identical predictions.  By default the dedup-memoized
        engine runs -- the network scores each unique cell once, the
        cross-call cache serves cells seen before -- with ``dedup``
        optionally supplying the precomputed unique-cell index.
        """
        if self.trainer is None:
            raise NotFittedError("fit() has not been called")
        probabilities = self.trainer.predict_proba(
            features, lengths=lengths, dedup=dedup,
            deduplicate=self.deduplicate,
            workers=self.inference_workers,
            precision=self.inference_precision)
        return probabilities.argmax(axis=1).astype(np.int64)

    @property
    def inference_stats(self) -> InferenceStats | None:
        """Counters of the most recent dedup prediction (``None`` if naive)."""
        if self.trainer is None or not self.deduplicate:
            return None
        return self.trainer.inference_stats

    def evaluate(self) -> DetectionResult:
        """Evaluate the fitted model on the held-out test cells.

        The returned :class:`DetectionResult` carries the prediction
        pass's :class:`~repro.inference.InferenceStats` (unique-cell
        ratio, cache hits/misses) so dedup savings stay observable.
        """
        _, __, split, ___ = self._require_fitted()
        predictions = self.predict(split.test.features,
                                   lengths=split.test.lengths,
                                   dedup=split.test.dedup)
        report = ClassificationReport.from_predictions(split.test.labels,
                                                       predictions)
        result = DetectionResult(
            report=report,
            predictions=predictions,
            tuple_ids=split.test.tuple_ids,
            attribute_names=split.test.attribute_names,
            inference=self.inference_stats,
        )
        if telemetry.enabled():
            record = {
                "type": "evaluation",
                "n_cells": int(predictions.shape[0]),
                "precision": round(report.precision, 4),
                "recall": round(report.recall, 4),
                "f1": round(report.f1, 4),
            }
            if result.inference is not None:
                record["inference"] = result.inference.as_dict()
            telemetry.get_registry().emit(record)
        return result

    def predict_table(self) -> list[tuple[int, str]]:
        """Predicted-erroneous cells over the *whole* table (train + test)."""
        from repro.dataprep import encode_cells
        _, prepared, __, trainer = self._require_fitted()
        encoded = encode_cells(prepared)
        probabilities = trainer.predict_proba(encoded.features,
                                              lengths=encoded.lengths,
                                              dedup=encoded.dedup,
                                              deduplicate=self.deduplicate,
                                              workers=self.inference_workers,
                                              precision=self.inference_precision)
        predictions = probabilities.argmax(axis=1)
        return [
            (int(tid), attr)
            for tid, attr, pred in zip(encoded.tuple_ids,
                                       encoded.attribute_names, predictions)
            if pred == 1
        ]
