"""The dedup-memoized prediction fast path.

:class:`InferenceEngine` computes class probabilities for a batch of
encoded cells by (1) grouping duplicate rows with a
:class:`~repro.inference.index.DedupIndex`, (2) serving previously seen
representatives from the :class:`~repro.inference.cache.PredictionCache`,
(3) running the network only on the remaining unseen representatives --
in sorted-by-length trimmed chunks, reusing the dedup index's memoised
length order -- and (4) scattering per-representative probabilities back
to every row with ``np.take``.  Every step is value-preserving, so the
result is bit-for-bit identical to the naive chunked forward.

Scratch buffers (the per-feature chunk gathers and the per-representative
"un-permutation" probability buffer) live on the engine and are reused
across calls, so steady-state serving performs no per-call hot-array
allocation beyond the returned output.
"""

from __future__ import annotations

import contextlib
import hashlib
import time

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.autograd import no_grad
from repro.errors import ConfigurationError
from repro.inference.cache import PredictionCache
from repro.inference.index import DedupIndex, build_dedup_index

# repro.nn.lowp / repro.nn.parallel are imported lazily inside methods:
# importing any repro.nn submodule runs the repro.nn package init, which
# imports training, which imports this package -- a cycle at import time.

#: How representative chunks are evaluated when ``workers`` is set.
WORKER_MODES = ("thread", "process")

#: Feature keys with a (batch, time) layout whose padded tails may be
#: trimmed to the chunk maximum (mirrors repro.nn.training.SEQUENCE_KEYS).
TRIM_KEYS = ("values",)


def model_fingerprint(model) -> str:
    """Stable identity of a model family and topology (not its weights).

    Hashes the class name plus every parameter's dotted path and shape.
    Two registered families (or two differently-sized instances of one
    family) can therefore never serve each other's cache entries, even
    when they share a tenant cache and happen to agree on
    ``weights_version``.  Weight *values* are deliberately excluded --
    within one topology, ``weights_version`` (via
    :meth:`~repro.inference.cache.PredictionCache.sync_version`) already
    invalidates on every update, and hashing weights per call would put
    a full-parameter scan on the hot path.
    """
    parts = [type(model).__name__]
    names = getattr(model, "named_parameters", None)
    if names is not None:
        parts.extend(f"{name}:{tuple(p.data.shape)}"
                     for name, p in sorted(names()))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def pad_single_row(chunk: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Duplicate-pad a one-row feature chunk to two rows.

    BLAS dispatches a ``(1, k) @ (k, n)`` product to a vector kernel
    whose accumulation order differs from the ``m >= 2`` matrix kernels,
    so a row's forward bits would depend on how it happened to be
    batched.  Every inference path therefore evaluates at least two rows
    (the duplicated row's output is discarded), which keeps per-row
    outputs independent of batch composition -- the invariant the dedup
    fast path's bit-for-bit guarantee rests on.
    """
    return {name: np.concatenate([part, part], axis=0)
            for name, part in chunk.items()}


@dataclass(frozen=True)
class InferenceStats:
    """Observability counters for one (or an accumulation of) call(s)."""

    n_rows: int = 0
    n_unique: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    n_evaluated: int = 0

    @property
    def unique_ratio(self) -> float:
        """Unique cells per row (1.0 means no duplicate savings)."""
        return self.n_unique / self.n_rows if self.n_rows else 1.0

    @property
    def hit_rate(self) -> float:
        """Cache hits per representative lookup (0.0 without a cache)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merged(self, other: "InferenceStats") -> "InferenceStats":
        """Counter-wise sum (for accumulating totals across calls)."""
        return InferenceStats(
            n_rows=self.n_rows + other.n_rows,
            n_unique=self.n_unique + other.n_unique,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            n_evaluated=self.n_evaluated + other.n_evaluated,
        )

    def as_dict(self) -> dict[str, float]:
        """Flat record for run results and benchmark JSON."""
        return {
            "n_rows": self.n_rows,
            "n_unique": self.n_unique,
            "unique_ratio": round(self.unique_ratio, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "n_evaluated": self.n_evaluated,
        }


def _validate_precision(precision: str) -> None:
    from repro.nn.lowp import PRECISION_MODES
    if precision not in PRECISION_MODES:
        raise ConfigurationError(
            f"precision must be one of {PRECISION_MODES}, got {precision!r}")


def _validate_rows(features: Mapping[str, np.ndarray]) -> int:
    if not features:
        raise ConfigurationError("at least one feature array is required")
    counts = {name: int(arr.shape[0]) for name, arr in features.items()}
    if len(set(counts.values())) > 1:
        raise ConfigurationError(
            f"feature arrays disagree on the number of rows: {counts}"
        )
    n = next(iter(counts.values()))
    if n == 0:
        raise ConfigurationError("feature set is empty")
    return n


def _row_key_bytes(features: Mapping[str, np.ndarray],
                   rows: np.ndarray) -> list[bytes]:
    """Cache-key bytes of each selected row, over *all* feature arrays.

    Uses the same byte layout as :func:`build_dedup_index` (features in
    sorted name order), so a key equals a key iff the model inputs are
    byte-identical.
    """
    parts = []
    k = rows.shape[0]
    for name in sorted(features):
        arr = np.ascontiguousarray(np.take(features[name], rows, axis=0))
        parts.append(arr.reshape(k, -1).view(np.uint8).reshape(k, -1))
    keys = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
    keys = np.ascontiguousarray(keys)
    return [keys[i].tobytes() for i in range(k)]


class InferenceEngine:
    """Dedup + cache prediction engine around one model.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.module.Module` mapping a feature dict to
        ``(batch, n_classes)`` probabilities.  Its ``weights_version``
        drives cache invalidation.
    cache:
        Optional cross-call :class:`PredictionCache`.  ``None`` disables
        memoisation across calls (deduplication within a call still
        applies).
    batch_size:
        Representative chunk size for the network forward.
    trim_keys:
        Feature keys whose padded time axis is trimmed per chunk.
    workers:
        Default worker count for chunk evaluation (0 = serial).  In
        ``"thread"`` mode the kernel work plane splits each forward's
        length groups across a thread pool (bit-identical results at any
        count); in ``"process"`` mode chunks fan out to a
        :class:`~repro.nn.parallel.procpool.SharedModelPool` whose
        workers read weights from shared memory.
    precision:
        Default numeric mode: ``"float64"`` (the reference graph),
        ``"float32"`` or ``"int8"`` (the
        :class:`~repro.nn.lowp.LowPrecisionEvaluator` fast path, gated
        by tolerance tests rather than bit equality).
    worker_mode:
        ``"thread"`` (default) or ``"process"``.
    fingerprint:
        Identity prefixed to every cache key (default: derived from the
        model's class and parameter topology via
        :func:`model_fingerprint`).  Pass an explicit value to segregate
        entries further, e.g. per ensemble member configuration.
    """

    def __init__(self, model, cache: PredictionCache | None = None,
                 batch_size: int = 256,
                 trim_keys: tuple[str, ...] = TRIM_KEYS,
                 workers: int = 0, precision: str = "float64",
                 worker_mode: str = "thread",
                 fingerprint: str | None = None):
        _validate_precision(precision)
        if worker_mode not in WORKER_MODES:
            raise ConfigurationError(
                f"worker_mode must be one of {WORKER_MODES}, "
                f"got {worker_mode!r}")
        if workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}")
        self.model = model
        self.cache = cache
        self.batch_size = batch_size
        self.trim_keys = trim_keys
        self.workers = workers
        self.precision = precision
        self.worker_mode = worker_mode
        self.fingerprint = (fingerprint if fingerprint is not None
                            else model_fingerprint(model))
        self._key_tag = self.fingerprint.encode() + b"|"
        self.last_stats = InferenceStats()
        self.total_stats = InferenceStats()
        self._gather_buffers: dict[str, np.ndarray] = {}
        self._rep_probs: np.ndarray | None = None
        self._lowp_evaluators: dict = {}
        self._process_pool = None

    def close(self) -> None:
        """Release pooled resources (the process pool, if one started)."""
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None

    def _lowp(self, mode: str):
        from repro.nn.lowp import LowPrecisionEvaluator
        evaluator = self._lowp_evaluators.get(mode)
        if evaluator is None:
            evaluator = LowPrecisionEvaluator(self.model, mode)
            self._lowp_evaluators[mode] = evaluator
        return evaluator

    def _evaluator(self, precision: str):
        """The chunk -> probabilities callable for one precision mode."""
        if precision == "float64":
            return lambda chunk: self.model(chunk).numpy()
        return self._lowp(precision).predict_proba

    def _pool(self, workers: int):
        """The lazily started (and resized) shared-weights process pool."""
        from repro.nn.parallel import SharedModelPool
        if self._process_pool is not None \
                and self._process_pool.workers != workers:
            self._process_pool.shutdown()
            self._process_pool = None
        if self._process_pool is None:
            self._process_pool = SharedModelPool(self.model, workers)
        return self._process_pool

    # -- scratch management -------------------------------------------------

    def _gather(self, name: str, arr: np.ndarray,
                rows: np.ndarray) -> np.ndarray:
        """Gather ``arr[rows]`` into a reusable per-feature chunk buffer."""
        full = (self.batch_size,) + arr.shape[1:]
        buf = self._gather_buffers.get(name)
        if buf is None or buf.shape != full or buf.dtype != arr.dtype:
            buf = np.empty(full, dtype=arr.dtype)
            self._gather_buffers[name] = buf
        view = buf[:rows.shape[0]]
        return np.take(arr, rows, axis=0, out=view)

    def _build_chunk(self, features: Mapping[str, np.ndarray],
                     rows: np.ndarray, row_lengths: np.ndarray | None,
                     start: int, copy: bool = False
                     ) -> tuple[dict[str, np.ndarray], int]:
        """One evaluation chunk plus its true row count.

        Gathers into the reusable buffers by default; ``copy=True``
        materialises fresh arrays (required when the chunk outlives the
        loop iteration, e.g. queued for a process pool).  Sequence keys
        are trimmed to the chunk's maximum true length, and one-row
        chunks come back duplicate-padded to two rows (hence the
        returned count: the caller slices the padding back off).
        """
        chunk_rows = rows[start:start + self.batch_size]
        chunk = {}
        for name, arr in features.items():
            if copy:
                part = np.take(arr, chunk_rows, axis=0)
            else:
                part = self._gather(name, arr, chunk_rows)
            if row_lengths is not None and name in self.trim_keys \
                    and part.ndim >= 2:
                width = max(int(
                    row_lengths[start:start + self.batch_size].max()), 1)
                if width < part.shape[1]:
                    part = part[:, :width]
            chunk[name] = part
        if chunk_rows.shape[0] == 1:
            return pad_single_row(chunk), 1
        return chunk, int(chunk_rows.shape[0])

    def _representative_buffer(self, n_unique: int,
                               n_classes: int, dtype) -> np.ndarray:
        """The reusable un-permutation buffer ``(n_unique, n_classes)``.

        Reused verbatim when the shape matches the previous call (the
        steady-state serving case); only reallocated on shape changes.
        """
        buf = self._rep_probs
        if buf is None or buf.shape != (n_unique, n_classes) \
                or buf.dtype != dtype:
            buf = np.empty((n_unique, n_classes), dtype=dtype)
            self._rep_probs = buf
        return buf

    # -- prediction ---------------------------------------------------------

    def predict_proba(self, features: Mapping[str, np.ndarray],
                      lengths: np.ndarray | None = None,
                      dedup: DedupIndex | None = None,
                      workers: int | None = None,
                      precision: str | None = None) -> np.ndarray:
        """Probabilities for every row, predicting once per unique cell.

        Parameters
        ----------
        features:
            Encoded feature dict (all arrays row-aligned).
        lengths:
            Optional per-row true sequence lengths; enables
            sorted-by-length trimmed chunking over the representatives.
        dedup:
            Precomputed unique-cell index (e.g.
            :attr:`~repro.dataprep.encoding.EncodedCells.dedup`); built
            on the fly when omitted.
        workers:
            Per-call worker-count override (``None`` = the engine
            default).
        precision:
            Per-call numeric-mode override (``None`` = the engine
            default).  Non-``float64`` probabilities are cached under
            precision-tagged keys, so modes never serve each other's
            entries.
        """
        workers = self.workers if workers is None else workers
        precision = self.precision if precision is None else precision
        _validate_precision(precision)
        if workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}")
        process_mode = self.worker_mode == "process" and workers > 0
        if process_mode and precision != "float64":
            raise ConfigurationError(
                "process worker mode evaluates with the float64 model; "
                f"combine precision={precision!r} with thread workers "
                "instead")
        n = _validate_rows(features)
        if dedup is None:
            dedup = build_dedup_index(features)
        elif dedup.n_rows != n:
            raise ConfigurationError(
                f"dedup index covers {dedup.n_rows} rows, features have {n}"
            )
        reps = dedup.representatives
        n_unique = dedup.n_unique

        hits = 0
        cached_rows: list[tuple[int, np.ndarray]] = []
        miss_positions: np.ndarray
        if self.cache is not None:
            self.cache.sync_version(getattr(self.model, "weights_version", 0))
            # Keys carry the engine's model fingerprint, so two detector
            # families sharing a tenant cache can never collide on the
            # same feature bytes.
            tag = self._key_tag
            if precision != "float64":
                # Reduced-precision results are only tolerance-close to
                # the reference; tag their keys so a float64 caller can
                # never be served a float32/int8 entry (or vice versa).
                tag = precision.encode() + b":" + tag
            keys = [tag + key for key in _row_key_bytes(features, reps)]
            misses = []
            for position, key in enumerate(keys):
                entry = self.cache.get(key)
                if entry is None:
                    misses.append(position)
                else:
                    cached_rows.append((position, entry))
            hits = n_unique - len(misses)
            miss_positions = np.asarray(misses, dtype=np.int64)
        else:
            keys = None
            miss_positions = np.arange(n_unique, dtype=np.int64)

        rep_probs: np.ndarray | None = None
        if miss_positions.shape[0]:
            # Evaluate unseen representatives cheapest-first: reuse the
            # dedup index's memoised length order (no per-call argsort)
            # and keep each chunk's padded tail trimmed.
            if lengths is not None:
                order = dedup.length_order(lengths)
                todo = order[np.isin(order, miss_positions,
                                     assume_unique=True)] \
                    if hits else order
            else:
                todo = miss_positions
            rows = reps[todo]
            row_lengths = (None if lengths is None
                           else np.asarray(lengths).reshape(-1)[rows])
            tele = telemetry.enabled()
            forward_hist = (telemetry.get_registry().histogram(
                "inference.forward_seconds") if tele else None)
            starts = range(0, rows.shape[0], self.batch_size)
            if process_mode:
                # Fan whole chunks out to forked workers.  Chunks are
                # materialised with fresh arrays: submission pickles them
                # on a background thread, so the reusable gather buffers
                # (overwritten by the next chunk) must not be shared.
                built = [self._build_chunk(features, rows, row_lengths,
                                           start, copy=True)
                         for start in starts]
                results = self._pool(workers).map_chunks(
                    [chunk for chunk, _ in built])
                for start, (_, k), probs in zip(starts, built, results):
                    probs = probs[:k]
                    if rep_probs is None:
                        rep_probs = self._representative_buffer(
                            n_unique, probs.shape[1], probs.dtype)
                    rep_probs[todo[start:start + self.batch_size]] = probs
            else:
                from repro.nn.parallel import use_workers
                evaluate = self._evaluator(precision)
                plane = (use_workers(workers) if workers
                         else contextlib.nullcontext())
                with no_grad(), plane:
                    for start in starts:
                        chunk, k = self._build_chunk(features, rows,
                                                     row_lengths, start)
                        chunk_started = time.perf_counter() if tele else 0.0
                        probs = evaluate(chunk)[:k]
                        if forward_hist is not None:
                            forward_hist.observe(
                                time.perf_counter() - chunk_started)
                        if rep_probs is None:
                            rep_probs = self._representative_buffer(
                                n_unique, probs.shape[1], probs.dtype)
                        rep_probs[todo[start:start + self.batch_size]] = probs
            if self.cache is not None and keys is not None:
                for position in miss_positions:
                    self.cache.put(keys[position], rep_probs[position])
        if rep_probs is None:
            # Every representative was served from the cache.
            first = cached_rows[0][1]
            rep_probs = self._representative_buffer(
                n_unique, first.shape[0], first.dtype)
        for position, entry in cached_rows:
            rep_probs[position] = entry

        self.last_stats = InferenceStats(
            n_rows=n,
            n_unique=n_unique,
            cache_hits=hits,
            cache_misses=int(miss_positions.shape[0]) if self.cache is not None
            else 0,
            n_evaluated=int(miss_positions.shape[0]),
        )
        self.total_stats = self.total_stats.merged(self.last_stats)
        if telemetry.enabled():
            registry = telemetry.get_registry()
            stats = self.last_stats
            registry.counter("inference.calls").inc()
            registry.counter("inference.rows").inc(stats.n_rows)
            registry.counter("inference.unique").inc(stats.n_unique)
            registry.counter("inference.cache_hits").inc(stats.cache_hits)
            registry.counter("inference.cache_misses").inc(stats.cache_misses)
            registry.counter("inference.evaluated").inc(stats.n_evaluated)
            registry.counter(f"inference.precision.{precision}").inc()
            if workers:
                registry.counter("inference.parallel_calls").inc()
            registry.gauge("inference.unique_ratio").set(stats.unique_ratio)
            registry.emit({"type": "inference", "precision": precision,
                           "workers": workers, **stats.as_dict()})
        return dedup.scatter(rep_probs)
