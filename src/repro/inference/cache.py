"""Cross-call LRU cache of per-cell prediction probabilities.

Serving traffic re-scores the same cells over and over (the evaluation
loop, the experiment matrix, batch-scoring CSVs against a saved model),
and a cell's probabilities depend only on its encoded inputs and the
model weights.  :class:`PredictionCache` therefore keys entries by
``(weights version, feature-row bytes)`` -- the feature bytes cover the
attribute id, the encoded value and the normalised length -- and is
explicitly flushed whenever the weights version moves (every optimizer
step and every checkpoint restore bumps it; see
:meth:`repro.nn.module.Module.mark_weights_updated`), so a hit is always
bit-identical to re-running the network.

The cache is thread-safe: one reentrant lock serialises every lookup,
insert, eviction and flush, so concurrent servers (the
:mod:`repro.serving` daemon, engines shared across threads) can hit one
cache without lost updates, double evictions or torn counters.  The
lock is held only for dict operations -- never across a network
forward -- so contention stays negligible next to inference cost.
"""

from __future__ import annotations

import threading

from collections import OrderedDict

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.faults import inject

#: Key of one cached cell: (weights version, feature-row bytes).
CacheKey = tuple[int, bytes]


class PredictionCache:
    """Bounded LRU of ``feature row -> probabilities`` with hit counters.

    Parameters
    ----------
    capacity:
        Maximum number of cached cells; least-recently-used entries are
        evicted beyond it.

    Attributes
    ----------
    hits, misses:
        Cumulative lookup counters (never reset by invalidation).
    invalidations:
        How many times the cache was flushed (weight updates, restores,
        explicit :meth:`invalidate` calls).
    evictions:
        Cumulative count of entries dropped by LRU capacity pressure
        (``put`` overflow and ``resize`` shrinks; flushes do not count).
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()
        self._version: int | None = None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def version(self) -> int | None:
        """The weights version the current entries were computed under."""
        return self._version

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries if now over it."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self.capacity = capacity
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def sync_version(self, version: int) -> None:
        """Flush every entry computed under a different weights version.

        Called by the inference engine before each prediction; a version
        bump (optimizer step, checkpoint restore, ``load_state_dict``)
        therefore invalidates the whole cache exactly once -- concurrent
        callers racing on the same bump see a single flush (the lock
        makes check-and-clear atomic).
        """
        with self._lock:
            if self._version != version:
                if self._entries:
                    self.invalidations += 1
                    self._entries.clear()
                self._version = version

    def invalidate(self) -> None:
        """Explicitly drop every entry (counters are preserved)."""
        with self._lock:
            if self._entries:
                self._entries.clear()
            self.invalidations += 1
            self._version = None

    def get(self, key_bytes: bytes) -> np.ndarray | None:
        """Probabilities for a feature row, or ``None``; counts hit/miss."""
        inject("cache.lookup")
        with self._lock:
            key = (self._version, key_bytes)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("cache.lookups").inc()
            registry.counter("cache.hits" if hit else "cache.misses").inc()
        return entry

    def put(self, key_bytes: bytes, probabilities: np.ndarray) -> None:
        """Insert (a copy of) one row's probabilities, evicting LRU."""
        entry = np.array(probabilities, copy=True)
        evicted = 0
        with self._lock:
            key = (self._version, key_bytes)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and telemetry.enabled():
            telemetry.get_registry().counter("cache.evictions").inc(evicted)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Machine-readable counter snapshot for benchmark records."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (f"PredictionCache(size={len(self)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
