"""Dedup-aware inference: predict once per unique cell, serve the rest.

Real relational tables repeat the same (attribute, value) pair across
thousands of rows, yet the paper's model scores a cell from only three
inputs -- its character sequence, attribute id and normalised length --
so duplicate cells are guaranteed to produce identical probabilities.
This package exploits that:

* :class:`DedupIndex` (:mod:`repro.inference.index`) -- a unique-cell
  index over the encoded feature rows: first-occurrence representatives
  plus an inverse scatter map, built vectorised with ``np.unique`` and
  carried on :class:`~repro.dataprep.encoding.EncodedCells`;
* :class:`PredictionCache` (:mod:`repro.inference.cache`) -- a cross-call
  LRU keyed by (weights version, attribute id, encoded value) with
  explicit invalidation whenever the model's weights change;
* :class:`InferenceEngine` (:mod:`repro.inference.engine`) -- the
  prediction fast path: run the network only on unseen representatives
  (in sorted-by-length trimmed chunks) and scatter probabilities back
  with ``np.take``, bit-for-bit identical to the naive path.
"""

from repro.inference.cache import PredictionCache
from repro.inference.engine import (
    InferenceEngine,
    InferenceStats,
    model_fingerprint,
)
from repro.inference.index import DedupIndex, build_dedup_index

__all__ = [
    "DedupIndex",
    "build_dedup_index",
    "InferenceEngine",
    "InferenceStats",
    "model_fingerprint",
    "PredictionCache",
]
