"""The unique-cell index: duplicate detection over encoded feature rows.

Two cells with identical model inputs (character sequence, attribute id,
normalised length) are guaranteed identical probabilities, so prediction
only ever needs to run on one representative per group of duplicates.
:func:`build_dedup_index` finds the groups vectorised -- the feature rows
are viewed as raw bytes and grouped with ``np.unique`` -- and
:class:`DedupIndex` carries the result: first-occurrence representative
rows plus the inverse map that scatters representative outputs back to
every row.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DedupIndex:
    """Duplicate structure of ``n_rows`` feature rows.

    Attributes
    ----------
    representatives:
        ``(n_unique,)`` int64 row indices; for every duplicate group the
        first-occurring row is the group's representative.
    inverse:
        ``(n_rows,)`` int64 map from each row to its group, so that
        ``outputs[representatives][inverse]`` reconstructs per-row
        outputs -- the scatter applied by the inference engine.
    """

    representatives: np.ndarray
    inverse: np.ndarray

    def __post_init__(self) -> None:
        if self.inverse.size and self.representatives.size == 0:
            raise ConfigurationError("non-empty inverse needs representatives")

    @property
    def n_rows(self) -> int:
        """Total number of indexed rows."""
        return int(self.inverse.shape[0])

    @property
    def n_unique(self) -> int:
        """Number of duplicate groups (unique cells)."""
        return int(self.representatives.shape[0])

    @property
    def unique_ratio(self) -> float:
        """Fraction of rows that are unique (1.0 means no duplicates)."""
        return self.n_unique / self.n_rows if self.n_rows else 1.0

    def scatter(self, representative_outputs: np.ndarray) -> np.ndarray:
        """Expand per-representative outputs to per-row outputs."""
        return np.take(representative_outputs, self.inverse, axis=0)

    def subset(self, indices: np.ndarray) -> DedupIndex:
        """The index restricted to a row subset, re-numbered to it.

        Duplicate groups are preserved exactly: two subset rows share a
        group iff they shared one in the parent, and each surviving
        group's representative is its first occurrence *within the
        subset*.  Vectorised (no per-row Python loop), so splits stay
        cheap on large tables.
        """
        indices = np.asarray(indices)
        parent_groups = self.inverse[indices]
        _, first, inverse = np.unique(parent_groups, return_index=True,
                                      return_inverse=True)
        return DedupIndex(representatives=first.astype(np.int64),
                          inverse=inverse.astype(np.int64).reshape(-1))

    def length_order(self, lengths: np.ndarray) -> np.ndarray:
        """Representatives' positions sorted by their sequence length.

        The stable argsort is computed once per (index, lengths-array)
        pair and memoised on the index, so repeated prediction calls over
        the same encoded cells (the serving loop) never re-sort.
        """
        cached = self.__dict__.get("_length_order")
        if cached is not None and cached[0] is lengths:
            return cached[1]
        order = np.argsort(np.asarray(lengths).reshape(-1)[self.representatives],
                           kind="stable")
        object.__setattr__(self, "_length_order", (lengths, order))
        return order


def build_dedup_index(features: Mapping[str, np.ndarray]) -> DedupIndex:
    """Group feature rows that are byte-identical across *all* features.

    Rows are compared on the raw bytes of every feature array (character
    indices, attribute ids, normalised lengths, ...), so two rows fall in
    the same group only when the model is guaranteed to produce the same
    output for both.  Runs vectorised: one byte-view concatenation plus
    one ``np.unique`` over structured rows.
    """
    if not features:
        raise ConfigurationError("at least one feature array is required")
    n_rows = {name: int(arr.shape[0]) for name, arr in features.items()}
    if len(set(n_rows.values())) > 1:
        raise ConfigurationError(
            f"feature arrays disagree on the number of rows: {n_rows}"
        )
    n = next(iter(n_rows.values()))
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return DedupIndex(representatives=empty, inverse=empty.copy())
    parts = []
    for name in sorted(features):
        arr = np.ascontiguousarray(features[name]).reshape(n, -1)
        parts.append(arr.view(np.uint8).reshape(n, -1))
    keys = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
    keys = np.ascontiguousarray(keys)
    rows = keys.view([("bytes", np.uint8, keys.shape[1])]).reshape(n)
    _, first, inverse = np.unique(rows, return_index=True, return_inverse=True)
    return DedupIndex(representatives=first.astype(np.int64),
                      inverse=inverse.astype(np.int64).reshape(-1))
