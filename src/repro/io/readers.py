"""Robust readers: delimited text with recovery, and SQLite extraction.

Unlike :func:`repro.table.io.read_csv` (which is strict by design -- the
benchmark CSVs are machine-written and a ragged row there is a bug),
these readers assume the input is *messy* and recover instead of
refusing: encodings are detected from the bytes, dialects are sniffed,
short rows are padded, overlong rows are folded into the last column,
duplicate and empty header names are disambiguated, and NUL bytes are
stripped.  Every recovery is counted so callers (and telemetry) can see
how much surgery a file needed.

The only hard failures are a genuinely empty file and an unreadable
SQLite database -- both raise :class:`~repro.errors.IngestError`.
"""

from __future__ import annotations

import csv
import io
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.errors import IngestError
from repro.io.sniff import (
    Dialect,
    EncodingDetection,
    detect_encoding,
    sniff_dialect,
)
from repro.table import Table

#: Cap on synthetic column names for headerless / ragged files.
_MAX_COLUMNS = 4096


@dataclass(frozen=True)
class IngestedTable:
    """One table recovered from a real file.

    Attributes
    ----------
    name:
        Table identifier: the file stem, suffixed with ``:tablename``
        for multi-table SQLite databases.
    table:
        The recovered :class:`~repro.table.Table`; every cell is a
        string (or ``None`` for SQL NULL / padded ragged cells).
    source:
        The originating file.
    encoding:
        Codec that decoded the payload (``"sqlite"`` for databases).
    n_encoding_fallbacks:
        Failed fallback-chain steps before the codec matched.
    n_recovered_rows:
        Rows that needed ragged-row surgery (padding or folding).
    n_renamed_columns:
        Header cells rewritten to fix duplicates or empties.
    n_stripped_nuls:
        NUL characters removed from the decoded text.
    dialect:
        The sniffed CSV dialect (``None`` for SQLite).
    """

    name: str
    table: Table
    source: Path
    encoding: str
    n_encoding_fallbacks: int = 0
    n_recovered_rows: int = 0
    n_renamed_columns: int = 0
    n_stripped_nuls: int = 0
    dialect: Dialect | None = None


def _dedupe_header(header: list[str]) -> tuple[list[str], int]:
    """Make header names non-empty and unique (``name``, ``name_2``...)."""
    seen: dict[str, int] = {}
    out: list[str] = []
    renamed = 0
    for i, raw in enumerate(header):
        name = raw.strip() or f"column_{i + 1}"
        if name != raw:
            renamed += 1
        base = name
        while name in seen:
            seen[base] += 1
            name = f"{base}_{seen[base]}"
            renamed += 1
        seen.setdefault(name, 1)
        out.append(name)
    return out, renamed


def _square_rows(header: list[str], records: list[list[str]],
                 delimiter: str) -> tuple[list[list[str | None]], int]:
    """Force every record to the header's width.

    Short rows are padded with ``None`` (the cells simply are not
    there); overlong rows fold their surplus back into the last column
    with the delimiter restored -- the usual cause is an unquoted
    delimiter inside the final free-text field, so folding loses
    nothing.  Returns the squared rows and the recovered-row count.
    """
    width = len(header)
    squared: list[list[str | None]] = []
    recovered = 0
    for record in records:
        if len(record) == width:
            squared.append(list(record))
            continue
        recovered += 1
        if len(record) < width:
            squared.append(list(record) + [None] * (width - len(record)))
        else:
            head = list(record[:width - 1])
            head.append(delimiter.join(record[width - 1:]))
            squared.append(head)
    return squared, recovered


def _parse_records(text: str, dialect: Dialect) -> list[list[str]]:
    """csv-parse ``text``, degrading instead of raising.

    The csv module raises on bare carriage returns in unquoted fields
    and on fields past its size limit; fuzzed real files hit both.  The
    ladder: parse as-is, then with normalised line endings, then a
    naive quote-blind split -- the floor that cannot fail.
    """
    try:
        return list(csv.reader(io.StringIO(text),
                               delimiter=dialect.delimiter,
                               quotechar=dialect.quotechar))
    except csv.Error:
        pass
    normalized = text.replace("\r\n", "\n").replace("\r", "\n")
    try:
        return list(csv.reader(io.StringIO(normalized),
                               delimiter=dialect.delimiter,
                               quotechar=dialect.quotechar))
    except csv.Error:
        return [line.split(dialect.delimiter)
                for line in normalized.split("\n") if line]


def read_delimited_bytes(data: bytes, name: str,
                         source: str | Path = "<bytes>",
                         encoding: str | None = None,
                         dialect: Dialect | None = None) -> IngestedTable:
    """Parse raw delimited-file bytes into an :class:`IngestedTable`.

    Parameters
    ----------
    data:
        The file payload.
    name:
        Table name to record.
    source:
        Path recorded for provenance.
    encoding, dialect:
        Overrides; detected from the bytes when ``None``.

    Raises
    ------
    IngestError
        When the payload contains no records at all.
    """
    if encoding is None:
        detection = detect_encoding(data)
    else:
        detection = EncodingDetection(encoding, had_bom=False, n_fallbacks=0)
    try:
        text = detection.decode(data)
    except (UnicodeDecodeError, UnicodeError):
        # Only reachable with an explicit bad `encoding` override or a
        # truncated multi-byte tail; Latin-1 is the total fallback.
        detection = EncodingDetection("latin-1", had_bom=False, n_fallbacks=2)
        text = detection.decode(data)
    n_nuls = text.count("\x00")
    if n_nuls:
        # NULs confuse the csv module and downstream serialization;
        # they carry no information in a delimited file.
        text = text.replace("\x00", "")
    if dialect is None:
        dialect = sniff_dialect(text)
    records = _parse_records(text, dialect)
    records = [r for r in records if r]  # csv yields [] for blank lines
    if not records:
        raise IngestError(f"{source}: no records (empty file)")
    if dialect.has_header:
        raw_header, body = records[0], records[1:]
    else:
        width = min(max(len(r) for r in records), _MAX_COLUMNS)
        raw_header, body = [f"column_{i + 1}" for i in range(width)], records
    raw_header = raw_header[:_MAX_COLUMNS]
    header, n_renamed = _dedupe_header([str(c) for c in raw_header])
    rows, n_recovered = _square_rows(header, body, dialect.delimiter)
    data_columns: dict[str, list[str | None]] = {h: [] for h in header}
    for row in rows:
        for column, cell in zip(header, row):
            data_columns[column].append(cell)
    return IngestedTable(
        name=name,
        table=Table(data_columns),
        source=Path(source),
        encoding=detection.encoding,
        n_encoding_fallbacks=detection.n_fallbacks,
        n_recovered_rows=n_recovered,
        n_renamed_columns=n_renamed,
        n_stripped_nuls=n_nuls,
        dialect=dialect,
    )


def read_delimited(path: str | Path,
                   encoding: str | None = None,
                   dialect: Dialect | None = None) -> IngestedTable:
    """Read one delimited text file with full recovery (see module doc)."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise IngestError(f"{path}: unreadable ({exc})") from exc
    return read_delimited_bytes(data, name=path.stem, source=path,
                                encoding=encoding, dialect=dialect)


def _sql_cell(value: object) -> str | None:
    """SQL value -> string cell.  NULL stays ``None``; BLOBs decode
    permissively (replacement characters beat surrogates, which poison
    later UTF-8 serialization)."""
    if value is None:
        return None
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return str(value)


def read_sqlite(path: str | Path,
                table_names: list[str] | None = None) -> list[IngestedTable]:
    """Extract every user table of a SQLite database.

    Parameters
    ----------
    path:
        Database file.
    table_names:
        Restrict extraction to these tables (default: all non-internal
        tables, in ``sqlite_master`` order).

    Raises
    ------
    IngestError
        When the file is not a readable database or a requested table
        does not exist.
    """
    path = Path(path)
    uri = f"file:{path}?mode=ro"
    try:
        connection = sqlite3.connect(uri, uri=True)
    except sqlite3.Error as exc:
        raise IngestError(f"{path}: cannot open database ({exc})") from exc
    try:
        connection.text_factory = lambda raw: raw.decode("utf-8",
                                                         errors="replace")
        try:
            rows = connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY rowid").fetchall()
        except sqlite3.DatabaseError as exc:
            raise IngestError(f"{path}: not a SQLite database ({exc})") from exc
        available = [row[0] for row in rows]
        wanted = available if table_names is None else list(table_names)
        missing = [t for t in wanted if t not in available]
        if missing:
            raise IngestError(
                f"{path}: no such table(s) {missing}; available: {available}")
        out: list[IngestedTable] = []
        for table_name in wanted:
            quoted = table_name.replace('"', '""')
            try:
                cursor = connection.execute(f'SELECT * FROM "{quoted}"')
                header = [desc[0] for desc in cursor.description]
                names, n_renamed = _dedupe_header(header)
                columns: dict[str, list[str | None]] = {n: [] for n in names}
                # Fetching can fail mid-iteration on a corrupted page,
                # so the loop sits inside the same guard as the SELECT.
                for record in cursor:
                    for column, value in zip(names, record):
                        columns[column].append(_sql_cell(value))
            except sqlite3.Error as exc:
                raise IngestError(
                    f"{path}: cannot read table {table_name!r} ({exc})"
                ) from exc
            suffix = f":{table_name}" if len(wanted) > 1 else ""
            out.append(IngestedTable(
                name=f"{path.stem}{suffix}",
                table=Table(columns),
                source=path,
                encoding="sqlite",
                n_renamed_columns=n_renamed,
            ))
        if not out:
            raise IngestError(f"{path}: database contains no tables")
        return out
    finally:
        connection.close()
