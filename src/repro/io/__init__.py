"""Real-file ingestion: discovery, messy readers, column analyzers.

The package turns arbitrary folders of real files into
:class:`~repro.table.Table` objects that flow into the existing
``prepare`` -> ``encode_cells`` -> model pipeline:

* :mod:`repro.io.discover` -- recursive folder walking with extension
  and content sniffing (CSV/TSV/SQLite/binary);
* :mod:`repro.io.sniff` -- byte-level encoding detection
  (UTF-8 / UTF-8-BOM / UTF-16 / Latin-1 fallback chain) and CSV
  dialect sniffing (delimiter, quoting, header inference);
* :mod:`repro.io.readers` -- ragged-row-recovering delimited reader
  and SQLite table extraction;
* :mod:`repro.io.analyze` -- per-column type/pattern analyzers (date,
  number with locale, identifier, free text) whose non-conformance
  mask is the weak-label signal for ``repro detect <path>``;
* :mod:`repro.io.ingest` -- the orchestration entry points
  (:func:`~repro.io.ingest.ingest_path`, :func:`~repro.io.ingest.read_file`)
  with ``io.*`` telemetry counters.
"""

from repro.io.analyze import (
    ColumnKind,
    ColumnProfile,
    analyze_column,
    analyze_table,
    conforming_mask,
    skeleton,
)
from repro.io.detect import (
    CellScore,
    DetectOutcome,
    detect_path,
    scores_table,
    weak_label_fn,
)
from repro.io.discover import (
    DELIMITED_EXTENSIONS,
    SQLITE_EXTENSIONS,
    DiscoveredFile,
    classify_file,
    discover,
)
from repro.io.ingest import IngestReport, IngestStats, ingest_path, read_file
from repro.io.readers import (
    IngestedTable,
    read_delimited,
    read_delimited_bytes,
    read_sqlite,
)
from repro.io.sniff import (
    Dialect,
    EncodingDetection,
    detect_encoding,
    sniff_dialect,
)

__all__ = [
    "ColumnKind",
    "ColumnProfile",
    "analyze_column",
    "analyze_table",
    "conforming_mask",
    "skeleton",
    "CellScore",
    "DetectOutcome",
    "detect_path",
    "scores_table",
    "weak_label_fn",
    "DELIMITED_EXTENSIONS",
    "SQLITE_EXTENSIONS",
    "DiscoveredFile",
    "classify_file",
    "discover",
    "IngestReport",
    "IngestStats",
    "ingest_path",
    "read_file",
    "IngestedTable",
    "read_delimited",
    "read_delimited_bytes",
    "read_sqlite",
    "Dialect",
    "EncodingDetection",
    "detect_encoding",
    "sniff_dialect",
]
