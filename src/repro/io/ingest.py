"""Folder-to-tables orchestration: discover, read, profile, count.

:func:`ingest_path` is the one call behind ``repro detect <path>`` and
the serving daemon's ``load_table {"path": ...}``: it discovers files,
routes each to the right reader, profiles every recovered table's
columns, and accumulates an :class:`IngestStats` that is also mirrored
into the ``io.*`` telemetry counters:

* ``io.files_discovered`` / ``io.files_parsed`` / ``io.files_skipped``
* ``io.encoding_fallbacks`` -- fallback-chain steps taken past UTF-8
* ``io.rows_recovered`` -- ragged rows padded or folded
* ``io.tables_ingested`` -- tables recovered (SQLite files may yield
  several)

A file that fails to parse is recorded as skipped with its reason --
one bad file never aborts a folder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.errors import IngestError
from repro.io.analyze import ColumnProfile, analyze_table
from repro.io.discover import DiscoveredFile, discover
from repro.io.readers import IngestedTable, read_delimited, read_sqlite


@dataclass(frozen=True)
class IngestStats:
    """Counters for one ingestion pass (mirrored into telemetry)."""

    files_discovered: int = 0
    files_parsed: int = 0
    files_skipped: int = 0
    encoding_fallbacks: int = 0
    rows_recovered: int = 0
    tables_ingested: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order for reports)."""
        return {
            "files_discovered": self.files_discovered,
            "files_parsed": self.files_parsed,
            "files_skipped": self.files_skipped,
            "encoding_fallbacks": self.encoding_fallbacks,
            "rows_recovered": self.rows_recovered,
            "tables_ingested": self.tables_ingested,
        }


@dataclass(frozen=True)
class IngestReport:
    """Everything one ingestion pass recovered.

    Attributes
    ----------
    tables:
        The recovered tables, in discovery order.
    profiles:
        Per-table column profiles, keyed like ``tables`` by table name.
    skipped:
        ``(path, reason)`` for every file not ingested.
    stats:
        The aggregate counters.
    """

    tables: tuple[IngestedTable, ...]
    profiles: dict[str, dict[str, ColumnProfile]]
    skipped: tuple[tuple[Path, str], ...] = ()
    stats: IngestStats = field(default_factory=IngestStats)

    def table(self, name: str) -> IngestedTable:
        """Look up one ingested table by name."""
        for entry in self.tables:
            if entry.name == name:
                return entry
        raise IngestError(
            f"no ingested table {name!r}; "
            f"available: {[t.name for t in self.tables]}")


def _emit_telemetry(stats: IngestStats) -> None:
    if not telemetry.enabled():
        return
    registry = telemetry.get_registry()
    registry.counter("io.files_discovered").inc(stats.files_discovered)
    registry.counter("io.files_parsed").inc(stats.files_parsed)
    registry.counter("io.files_skipped").inc(stats.files_skipped)
    registry.counter("io.encoding_fallbacks").inc(stats.encoding_fallbacks)
    registry.counter("io.rows_recovered").inc(stats.rows_recovered)
    registry.counter("io.tables_ingested").inc(stats.tables_ingested)


def read_file(path: str | Path,
              table_names: list[str] | None = None) -> list[IngestedTable]:
    """Read one file (delimited or SQLite) into ingested tables.

    Raises
    ------
    IngestError
        When the file is skipped by classification or fails to parse.
    """
    path = Path(path)
    entry = discover(path)[0]
    if entry.kind == "skipped":
        raise IngestError(f"{path}: {entry.reason}")
    if entry.kind == "sqlite":
        return read_sqlite(path, table_names=table_names)
    return [read_delimited(path)]


def ingest_path(path: str | Path) -> IngestReport:
    """Ingest a file or a whole folder tree (see module docstring)."""
    discovered = discover(path)
    tables: list[IngestedTable] = []
    skipped: list[tuple[Path, str]] = []
    encoding_fallbacks = 0
    rows_recovered = 0
    for entry in discovered:
        if entry.kind == "skipped":
            skipped.append((entry.path, entry.reason))
            continue
        try:
            if entry.kind == "sqlite":
                ingested = read_sqlite(entry.path)
            else:
                ingested = [read_delimited(entry.path)]
        except IngestError as exc:
            skipped.append((entry.path, str(exc)))
            continue
        for item in ingested:
            encoding_fallbacks += item.n_encoding_fallbacks
            rows_recovered += item.n_recovered_rows
        tables.extend(ingested)
    parsed_paths = {t.source for t in tables}
    stats = IngestStats(
        files_discovered=len(discovered),
        files_parsed=len(parsed_paths),
        files_skipped=len(skipped),
        encoding_fallbacks=encoding_fallbacks,
        rows_recovered=rows_recovered,
        tables_ingested=len(tables),
    )
    _emit_telemetry(stats)
    profiles = {t.name: analyze_table(t.table) for t in tables}
    return IngestReport(tables=tuple(tables), profiles=profiles,
                        skipped=tuple(skipped), stats=stats)
