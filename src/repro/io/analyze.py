"""Per-column type and pattern analyzers.

Given a column of raw string cells, :func:`analyze_column` decides what
the column *is* (date, number, identifier, free text) and how strongly
the cells agree with that verdict.  The profile carries locale evidence
-- decimal comma vs decimal point, day-first vs month-first date order
-- because real exports drift between locales, and the taxonomy's
format-drift error family injects exactly that drift.

The analyzers are pure functions of the cell values: analyzing the same
values twice (or after a CSV round trip that preserves them) always
yields the same verdict, which the Hypothesis round-trip suite asserts.

:func:`conforming_mask` is the bridge to detection without labels: a
cell that does not match its column's dominant pattern is a *suspect*,
and the ``repro detect <path>`` weak-label path trains the BiRNN on
those suspicions.
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.table import Table


class ColumnKind(enum.Enum):
    """What a column's cells predominantly are."""

    DATE = "date"
    NUMBER = "number"
    IDENTIFIER = "identifier"
    TEXT = "text"
    EMPTY = "empty"


#: Date patterns with the order evidence they carry.  Numeric patterns
#: are ambiguous between day-first and month-first; the analyzer
#: resolves the order by looking at the value ranges.
_DATE_SEPARATED = re.compile(r"^(\d{1,4})([-/.])(\d{1,2})\2(\d{1,4})$")
_DATE_MONTHNAME = re.compile(
    r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{2,4}$"
    r"|^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{1,2},?\s+\d{2,4}$",
    re.IGNORECASE)

_NUMBER_POINT = re.compile(r"^[+-]?(\d{1,3}(,\d{3})+|\d+)(\.\d+)?$")
_NUMBER_COMMA = re.compile(r"^[+-]?(\d{1,3}(\.\d{3})+|\d+)(,\d+)?$")

#: Character classes for identifier skeletons: runs of digits collapse
#: to ``9``, runs of letters to ``A``; everything else stays literal.
_SKELETON_RUNS = re.compile(r"[0-9]+|[^\W\d_]+|.", re.DOTALL)


@dataclass(frozen=True)
class ColumnProfile:
    """Verdict for one column.

    Attributes
    ----------
    name:
        Column name.
    kind:
        The dominant :class:`ColumnKind`.
    conformance:
        Fraction of non-missing cells matching the dominant pattern.
    pattern:
        Human-readable description of the dominant pattern (the modal
        skeleton for identifiers, the winning regex family otherwise).
    n_cells, n_missing, n_distinct:
        Basic occupancy statistics (missing = ``None`` or empty).
    decimal_comma:
        ``True`` when the number evidence is comma-decimal (locale
        drift signal); ``None`` for non-number columns.
    day_first:
        ``True`` for day-first dates, ``False`` for month/year-first;
        ``None`` when undecidable or not a date column.
    """

    name: str
    kind: ColumnKind
    conformance: float
    pattern: str
    n_cells: int
    n_missing: int
    n_distinct: int
    decimal_comma: bool | None = None
    day_first: bool | None = None


def _norm(value: object) -> str:
    return "" if value is None else str(value).strip()


def skeleton(text: str) -> str:
    """Collapse a value to its character-class skeleton.

    ``"AB-1234"`` -> ``"A-9"``; ``"2021-01-02"`` -> ``"9-9-9"``.  Runs
    of digits and letters collapse so identifiers of varying widths
    share one skeleton.
    """
    parts = []
    for match in _SKELETON_RUNS.finditer(text):
        token = match.group(0)
        if token[0].isdigit():
            parts.append("9")
        elif token[0].isalpha():
            parts.append("A")
        else:
            parts.append(token)
    return "".join(parts)


def _match_date(text: str) -> tuple[bool, bool | None]:
    """(is_date, day_first_evidence) for one cell."""
    if _DATE_MONTHNAME.match(text):
        return True, None
    match = _DATE_SEPARATED.match(text)
    if not match:
        return False, None
    first, last = match.group(1), match.group(4)
    second = int(match.group(3))
    if not (1 <= second <= 31):
        return False, None
    if len(first) == 4:          # ISO: year first, month second
        return (1 <= second <= 12), False
    a = int(first)
    if len(last) not in (2, 4) or a == 0:
        return False, None
    if a > 31:
        return False, None
    if a > 12:                   # first field can only be a day
        return True, True
    if second > 12:              # second field can only be a day
        return True, False
    return True, None            # ambiguous (both <= 12)


def analyze_column(name: str, values: Sequence[object]) -> ColumnProfile:
    """Profile one column of raw cells (see module docstring)."""
    cells = [_norm(v) for v in values]
    present = [c for c in cells if c]
    n_missing = len(cells) - len(present)
    n_distinct = len(set(present))
    if not present:
        return ColumnProfile(name=name, kind=ColumnKind.EMPTY,
                             conformance=1.0, pattern="(empty)",
                             n_cells=len(cells), n_missing=n_missing,
                             n_distinct=0)

    date_hits = 0
    day_first_votes = 0
    month_first_votes = 0
    for cell in present:
        is_date, day_first = _match_date(cell)
        if is_date:
            date_hits += 1
            if day_first is True:
                day_first_votes += 1
            elif day_first is False:
                month_first_votes += 1

    number_hits = 0
    comma_votes = 0
    point_votes = 0
    for cell in present:
        if _NUMBER_POINT.match(cell):
            number_hits += 1
            if "." in cell:
                point_votes += 1
        elif _NUMBER_COMMA.match(cell):
            number_hits += 1
            if "," in cell:
                comma_votes += 1

    skeletons = Counter(skeleton(cell) for cell in present)
    modal_skeleton, skeleton_hits = skeletons.most_common(1)[0]

    n = len(present)
    if date_hits / n >= 0.6 and date_hits >= number_hits:
        day_first = None
        if day_first_votes or month_first_votes:
            day_first = day_first_votes > month_first_votes
        return ColumnProfile(
            name=name, kind=ColumnKind.DATE, conformance=date_hits / n,
            pattern="date", n_cells=len(cells), n_missing=n_missing,
            n_distinct=n_distinct, day_first=day_first)
    if number_hits / n >= 0.6:
        return ColumnProfile(
            name=name, kind=ColumnKind.NUMBER, conformance=number_hits / n,
            pattern="number(decimal comma)" if comma_votes > point_votes
            else "number", n_cells=len(cells), n_missing=n_missing,
            n_distinct=n_distinct, decimal_comma=comma_votes > point_votes)
    # Identifier: one structural skeleton dominates and the values are
    # not just prose (prose skeletons are long A A A... runs that rarely
    # repeat exactly).
    if skeleton_hits / n >= 0.6 and len(modal_skeleton) <= 24 \
            and modal_skeleton not in ("A", ""):
        return ColumnProfile(
            name=name, kind=ColumnKind.IDENTIFIER,
            conformance=skeleton_hits / n, pattern=modal_skeleton,
            n_cells=len(cells), n_missing=n_missing, n_distinct=n_distinct)
    return ColumnProfile(
        name=name, kind=ColumnKind.TEXT,
        conformance=skeleton_hits / n, pattern=modal_skeleton,
        n_cells=len(cells), n_missing=n_missing, n_distinct=n_distinct)


def analyze_table(table: Table) -> dict[str, ColumnProfile]:
    """Profile every column of ``table`` (insertion order preserved)."""
    return {name: analyze_column(name, table.column(name).values)
            for name in table.column_names}


def _cell_conforms(profile: ColumnProfile, cell: str) -> bool:
    if not cell:
        return False
    if profile.kind is ColumnKind.DATE:
        return _match_date(cell)[0]
    if profile.kind is ColumnKind.NUMBER:
        return bool(_NUMBER_POINT.match(cell) or _NUMBER_COMMA.match(cell))
    if profile.kind is ColumnKind.IDENTIFIER:
        return skeleton(cell) == profile.pattern
    return True  # free text: any non-empty cell conforms


def conforming_mask(profile: ColumnProfile,
                    values: Sequence[object]) -> list[bool]:
    """Per-cell conformance with the column's dominant pattern.

    Missing cells never conform (they are exactly the MV error family);
    free-text columns accept any non-empty cell.  The complement of
    this mask is the weak-label signal for unlabeled detection.
    """
    return [_cell_conforms(profile, _norm(v)) for v in values]
