"""Byte-level encoding detection and CSV dialect sniffing.

Real files arrive without metadata: the bytes themselves are the only
evidence of how they were written.  :func:`detect_encoding` walks a
deterministic fallback chain (BOM -> strict UTF-8 -> UTF-16 heuristic ->
Latin-1) and reports which step matched, so ingestion telemetry can
count how often the happy path was missed.  :func:`sniff_dialect` infers
the delimiter, quote character and header presence from a decoded sample
by consistency voting -- ``csv.Sniffer`` is too eager on single-column
and quote-heavy files, so the vote is implemented from scratch.

Everything here is pure (bytes/str in, verdict out) and deterministic,
which is what makes the Hypothesis round-trip suite in
``tests/io/test_roundtrip_properties.py`` possible.
"""

from __future__ import annotations

import codecs
import csv
import io
from dataclasses import dataclass

#: Delimiters considered by the dialect vote, in tie-break priority order.
DELIMITER_CANDIDATES = (",", ";", "\t", "|")

#: BOM signatures checked first (longest first so UTF-32 never reads as
#: UTF-16).  Each maps to the codec that consumes the BOM itself.
_BOMS: tuple[tuple[bytes, str], ...] = (
    (codecs.BOM_UTF32_LE, "utf-32-le"),
    (codecs.BOM_UTF32_BE, "utf-32-be"),
    (codecs.BOM_UTF8, "utf-8-sig"),
    (codecs.BOM_UTF16_LE, "utf-16-le"),
    (codecs.BOM_UTF16_BE, "utf-16-be"),
)

#: The SQLite 3 file magic (first 16 bytes of every database file).
SQLITE_MAGIC = b"SQLite format 3\x00"


@dataclass(frozen=True)
class EncodingDetection:
    """Outcome of the encoding fallback chain.

    Attributes
    ----------
    encoding:
        The codec name to decode the payload with.
    had_bom:
        Whether a byte-order mark decided the verdict.
    n_fallbacks:
        How many chain steps failed before this one matched (0 for a
        BOM or clean UTF-8 file) -- the ``io.encoding_fallbacks``
        telemetry counter sums this.
    bom_length:
        Bytes to skip before decoding (0 unless ``had_bom`` and the
        codec does not strip its own BOM).
    """

    encoding: str
    had_bom: bool
    n_fallbacks: int
    bom_length: int = 0

    def decode(self, data: bytes) -> str:
        """Decode ``data`` under this verdict (never raises: the chain
        only returns codecs that decode the sampled bytes)."""
        return data[self.bom_length:].decode(self.encoding)


def _looks_like_utf16(data: bytes) -> str | None:
    """BOM-less UTF-16 heuristic: ASCII-heavy text has a NUL in every
    other byte.  Returns the endianness codec or ``None``."""
    if len(data) < 4:
        return None
    sample = data[:4096]
    sample = sample[: len(sample) - (len(sample) % 2)]
    if not sample:
        return None
    even_nuls = sample[0::2].count(0)
    odd_nuls = sample[1::2].count(0)
    half = len(sample) // 2
    # A text file needs a large majority of NULs on exactly one side.
    if odd_nuls >= 0.7 * half and even_nuls <= 0.1 * half:
        return "utf-16-le"
    if even_nuls >= 0.7 * half and odd_nuls <= 0.1 * half:
        return "utf-16-be"
    return None


def detect_encoding(data: bytes) -> EncodingDetection:
    """Run the UTF-8 / UTF-8-BOM / UTF-16 / Latin-1 fallback chain.

    The chain is ordered by evidence strength: an explicit BOM wins,
    then strict UTF-8 (which rejects random 8-bit bytes with high
    probability), then the BOM-less UTF-16 NUL-pattern heuristic, and
    finally Latin-1, which maps every byte and therefore never fails --
    the "at worst mojibake, never a crash" floor of the reader.
    """
    for bom, encoding in _BOMS:
        if data.startswith(bom):
            # utf-8-sig strips its own BOM; the explicit UTF-16/32
            # codecs do not, so skip it by hand.
            skip = 0 if encoding == "utf-8-sig" else len(bom)
            return EncodingDetection(encoding, had_bom=True, n_fallbacks=0,
                                     bom_length=skip)
    # The UTF-16 check must run before strict UTF-8: ASCII text encoded
    # as UTF-16 is byte-wise *valid* UTF-8 (NUL is a legal UTF-8 byte),
    # so the NUL-pattern heuristic is the only thing that can tell the
    # two apart.
    utf16 = _looks_like_utf16(data)
    if utf16 is not None:
        try:
            data.decode(utf16)
            return EncodingDetection(utf16, had_bom=False, n_fallbacks=1)
        except UnicodeDecodeError:
            pass
    try:
        data.decode("utf-8")
        return EncodingDetection("utf-8", had_bom=False, n_fallbacks=0)
    except UnicodeDecodeError:
        pass
    return EncodingDetection("latin-1", had_bom=False, n_fallbacks=2)


@dataclass(frozen=True)
class Dialect:
    """A sniffed CSV dialect."""

    delimiter: str
    quotechar: str = '"'
    has_header: bool = True


def _field_counts(lines: list[str], delimiter: str,
                  quotechar: str) -> list[int]:
    """Per-record field counts under one candidate dialect."""
    reader = csv.reader(io.StringIO("\n".join(lines)),
                        delimiter=delimiter, quotechar=quotechar)
    counts = []
    try:
        for row in reader:
            counts.append(len(row))
    except csv.Error:
        return []
    return counts


def _score_delimiter(lines: list[str], delimiter: str) -> tuple[float, int]:
    """(consistency, width) of a candidate delimiter over the sample.

    Consistency is the fraction of records agreeing with the modal
    field count; width is that modal count.  A delimiter that never
    splits anything scores width 1 and loses to any real split.
    """
    counts = _field_counts(lines, delimiter, '"')
    if not counts:
        return (0.0, 0)
    modal = max(set(counts), key=lambda c: (counts.count(c), c))
    return (counts.count(modal) / len(counts), modal)


def _is_number(text: str) -> bool:
    stripped = text.strip().replace(",", ".")
    # float() accepts digit-free spellings ("inf", "INFINITY", "nan")
    # that in a CSV are words -- plausible header names, never data
    # written by a numeric exporter.
    if not any(ch.isdigit() for ch in stripped):
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False


def _infer_header(rows: list[list[str]]) -> bool:
    """Decide whether the first record is a header.

    Evidence for a header: its cells are non-empty and distinct, and at
    least one column whose body is numeric has a non-numeric first cell.
    With no body rows (or no signal either way) the answer defaults to
    ``True`` -- the common case for exported tables.
    """
    if not rows:
        return True
    head, body = rows[0], rows[1:]
    # Trailing empty header cells are routine in real exports (a
    # dangling delimiter); only *interior* empties argue against a
    # header row.
    trimmed = list(head)
    while trimmed and not trimmed[-1].strip():
        trimmed.pop()
    if not trimmed:
        return False
    if any(_is_number(cell) for cell in trimmed):
        return False
    # Numeric contrast is the strong signal: a column whose body is
    # mostly numeric under a non-numeric first cell means that first
    # row names things.  It overrides the weak negatives below --
    # duplicate header names do occur in real exports (the reader
    # disambiguates them).
    for j, name in enumerate(head):
        column = [row[j] for row in body if j < len(row)]
        numeric = [cell for cell in column if _is_number(cell)]
        if column and len(numeric) >= max(1, len(column) // 2) \
                and not _is_number(name):
            return True
    if any(not cell.strip() for cell in trimmed):
        return False
    if len(set(trimmed)) != len(trimmed):
        return False
    # No signal either way: a non-numeric, distinct, non-empty first
    # row is still the most plausible header.
    return True


def sniff_dialect(text: str, max_sample_lines: int = 64) -> Dialect:
    """Infer delimiter, quote character and header from decoded text.

    The delimiter is chosen by consistency voting over the first
    ``max_sample_lines`` records: highest agreement with the modal
    field count wins, ties broken by wider records, then by
    :data:`DELIMITER_CANDIDATES` order (comma first).  Quote character
    is ``"`` unless single quotes demonstrably wrap fields.
    """
    lines = text.splitlines()[:max_sample_lines]
    if not lines:
        return Dialect(delimiter=",")
    best = (",", (0.0, 0))
    for candidate in DELIMITER_CANDIDATES:
        score = _score_delimiter(lines, candidate)
        if score[1] <= 1:
            continue
        if (score[0], score[1]) > best[1]:
            best = (candidate, score)
    delimiter = best[0]
    quotechar = '"'
    stripped = [line for line in lines if line]
    if stripped and all(line.startswith("'") and line.rstrip().endswith("'")
                        for line in stripped[:8]) \
            and not any('"' in line for line in stripped[:8]):
        quotechar = "'"
    try:
        rows = list(csv.reader(io.StringIO("\n".join(lines)),
                               delimiter=delimiter, quotechar=quotechar))
    except csv.Error:
        # Unparseable sample (bare CR in an unquoted field, oversized
        # field): keep the delimiter vote, default the header to True.
        rows = []
    return Dialect(delimiter=delimiter, quotechar=quotechar,
                   has_header=_infer_header(rows))
