"""Recursive file discovery with extension and content sniffing.

``discover(path)`` walks a file or directory tree in sorted order and
classifies every regular file as delimited text, a SQLite database, or
skipped (with the reason recorded).  Classification uses both the
extension *and* the first bytes: a ``.csv`` that starts with the SQLite
magic is a database, and an extensionless export that decodes as
delimiter-consistent text is a table.  Hidden files and directories
(dotfiles) are skipped, matching the usual exporter conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import IngestError
from repro.io.sniff import (
    DELIMITER_CANDIDATES,
    SQLITE_MAGIC,
    detect_encoding,
)

#: Extensions treated as delimited text without further evidence.
DELIMITED_EXTENSIONS = (".csv", ".tsv", ".txt", ".tab")

#: Extensions treated as SQLite databases (still magic-checked).
SQLITE_EXTENSIONS = (".db", ".sqlite", ".sqlite3")

#: Bytes sampled for content sniffing.
_SNIFF_BYTES = 8192


@dataclass(frozen=True)
class DiscoveredFile:
    """One classified file.

    Attributes
    ----------
    path:
        The file.
    kind:
        ``"delimited"``, ``"sqlite"`` or ``"skipped"``.
    reason:
        Why a skipped file was skipped (empty for ingestable kinds).
    """

    path: Path
    kind: str
    reason: str = ""


#: C0 control bytes that never appear in text files (TAB/LF/CR excluded).
_CONTROL_BYTES = bytes(b for b in range(0x20)
                       if b not in (0x09, 0x0A, 0x0D))


def _looks_binary(sample: bytes) -> bool:
    """Binary heuristic: control-byte-heavy content that is not
    UTF-16/32 text (those are NUL-heavy by construction)."""
    if not sample:
        return False
    detection = detect_encoding(sample)
    if detection.encoding.startswith(("utf-16", "utf-32")):
        return False
    if sample.count(0) / len(sample) > 0.05:
        return True
    n_control = sum(sample.count(b) for b in _CONTROL_BYTES)
    return n_control / len(sample) > 0.10


def _delimiter_consistent(sample: bytes) -> bool:
    """Whether the decoded sample splits consistently on some delimiter."""
    detection = detect_encoding(sample)
    try:
        text = detection.decode(sample)
    except (UnicodeDecodeError, UnicodeError):
        text = sample.decode("latin-1")
    lines = [line for line in text.splitlines()[:16] if line.strip()]
    if not lines:
        return False
    for delimiter in DELIMITER_CANDIDATES:
        counts = [line.count(delimiter) for line in lines]
        if counts[0] > 0 and all(c == counts[0] for c in counts):
            return True
    return False


def classify_file(path: Path) -> DiscoveredFile:
    """Classify one regular file by extension plus content sniffing."""
    try:
        with path.open("rb") as handle:
            sample = handle.read(_SNIFF_BYTES)
    except OSError as exc:
        return DiscoveredFile(path, "skipped", f"unreadable: {exc}")
    if sample.startswith(SQLITE_MAGIC):
        return DiscoveredFile(path, "sqlite")
    suffix = path.suffix.lower()
    if suffix in SQLITE_EXTENSIONS:
        return DiscoveredFile(path, "skipped",
                              "sqlite extension without SQLite magic")
    if not sample:
        return DiscoveredFile(path, "skipped", "empty file")
    if _looks_binary(sample):
        return DiscoveredFile(path, "skipped", "binary content")
    if suffix in DELIMITED_EXTENSIONS:
        return DiscoveredFile(path, "delimited")
    if _delimiter_consistent(sample):
        return DiscoveredFile(path, "delimited")
    return DiscoveredFile(path, "skipped",
                          f"unrecognized extension {suffix or '(none)'} "
                          "and no consistent delimiter")


def discover(root: str | Path) -> list[DiscoveredFile]:
    """Walk ``root`` (file or directory) and classify every file.

    Directories are traversed recursively in sorted order for
    reproducible reports; dotfiles and dot-directories are ignored.

    Raises
    ------
    IngestError
        When ``root`` does not exist.
    """
    root = Path(root)
    if not root.exists():
        raise IngestError(f"{root}: no such file or directory")
    if root.is_file():
        return [classify_file(root)]
    out: list[DiscoveredFile] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        if any(part.startswith(".") for part in
               path.relative_to(root).parts):
            continue
        out.append(classify_file(path))
    return out
