"""End-to-end detection on real files, without labels.

``repro detect <path>`` glues the ingestion layer to the detector: each
ingested table is profiled (:mod:`repro.io.analyze`), the complement of
the per-column conformance mask becomes a *weak* annotator, and
:meth:`~repro.models.detector.ErrorDetector.fit_with_labels` trains the
BiRNN against that annotator -- the production protocol of the paper
with the analyzer standing in for the human.  The fitted network then
scores every cell, so the output ranks suspects by probability instead
of echoing the analyzer verdicts back (the network generalises the
pattern evidence across columns and contexts).

With a pre-trained model (``--model``), training is skipped and the
saved detector scores all columns it knows.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.dataprep import encode_cells
from repro.errors import DataError
from repro.io.analyze import ColumnProfile, conforming_mask
from repro.io.ingest import IngestReport, ingest_path
from repro.io.readers import IngestedTable
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.table import Table


@dataclass(frozen=True)
class CellScore:
    """One scored cell of an ingested table."""

    table: str
    row: int
    attribute: str
    value: str
    score: float
    flagged: bool
    conforms: bool


@dataclass(frozen=True)
class DetectOutcome:
    """Scores for one ingested table (``scores`` covers every cell)."""

    table: IngestedTable
    profiles: dict[str, ColumnProfile]
    scores: tuple[CellScore, ...]

    @property
    def flagged(self) -> tuple[CellScore, ...]:
        """The cells the network flags, most suspicious first."""
        return tuple(sorted((s for s in self.scores if s.flagged),
                            key=lambda s: -s.score))


def weak_label_fn(profiles: dict[str, ColumnProfile],
                  attributes: list[str]):
    """Build the analyzer-as-annotator callback for ``fit_with_labels``.

    The returned callable labels a proposed tuple's cell 1 (erroneous)
    exactly when the cell does not conform to its column's dominant
    pattern.  It only looks at the proposed values, so it is pure and
    deterministic.
    """

    def label(_tuple_id: int, row: dict[str, str]) -> list[int]:
        out = []
        for attribute in attributes:
            profile = profiles[attribute]
            value = row.get(attribute, "")
            out.append(0 if conforming_mask(profile, [value])[0] else 1)
        return out

    return label


def _score_with_weak_labels(item: IngestedTable,
                            profiles: dict[str, ColumnProfile],
                            architecture: str, n_label_tuples: int,
                            epochs: int, cell_type: str,
                            seed: int) -> tuple[CellScore, ...]:
    table = item.table
    detector = ErrorDetector(
        architecture=architecture,
        # At least one tuple must stay unlabeled: the split needs a
        # non-empty test side.
        n_label_tuples=min(n_label_tuples, table.n_rows - 1),
        model_config=ModelConfig(cell_type=cell_type),
        training_config=TrainingConfig(epochs=epochs),
        seed=seed,
    )
    # fit_with_labels asks for one label per prepared attribute, in the
    # table's column order (id_ excluded by preparation).
    attributes = [name for name in table.column_names if name != "id_"]
    detector.fit_with_labels(table, weak_label_fn(profiles, attributes))

    encoded = encode_cells(detector.prepared)
    probabilities = detector.trainer.predict_proba(
        encoded.features, lengths=encoded.lengths, dedup=encoded.dedup,
        deduplicate=detector.deduplicate)
    values = {name: table.column(name).values for name in table.column_names}
    scores = []
    for tid, attribute, proba in zip(encoded.tuple_ids,
                                     encoded.attribute_names,
                                     probabilities):
        raw = values[attribute][int(tid)]
        value = "" if raw is None else str(raw)
        scores.append(CellScore(
            table=item.name, row=int(tid), attribute=attribute, value=value,
            score=float(proba[1]), flagged=bool(proba[1] >= proba[0]),
            conforms=conforming_mask(profiles[attribute], [value])[0]))
    return tuple(scores)


def _score_with_model(item: IngestedTable,
                      profiles: dict[str, ColumnProfile],
                      detector: ErrorDetector) -> tuple[CellScore, ...]:
    from repro.models.serialization import encode_values_for

    table = item.table
    known = set(detector.prepared.attributes)
    usable = [name for name in table.column_names if name in known]
    if not usable:
        return ()
    rows, attrs, cell_values = [], [], []
    for name in usable:
        for i, value in enumerate(table.column(name).values):
            rows.append(i)
            attrs.append(name)
            cell_values.append("" if value is None else str(value))
    features = encode_values_for(detector, cell_values, attrs)
    probabilities = detector.trainer.predict_proba(
        features, deduplicate=detector.deduplicate,
        workers=detector.inference_workers,
        precision=detector.inference_precision)
    return tuple(
        CellScore(table=item.name, row=rows[i], attribute=attrs[i],
                  value=cell_values[i], score=float(probabilities[i, 1]),
                  flagged=bool(probabilities[i, 1] >= probabilities[i, 0]),
                  conforms=conforming_mask(profiles[attrs[i]],
                                           [cell_values[i]])[0])
        for i in range(len(rows)))


def detect_path(path: str | Path, *, detector: ErrorDetector | None = None,
                architecture: str = "etsb", n_label_tuples: int = 20,
                epochs: int = 30, cell_type: str = "rnn",
                seed: int = 0) -> tuple[IngestReport, list[DetectOutcome]]:
    """Ingest ``path`` and score every recovered table (module docstring).

    Returns the ingestion report (skips, stats, profiles) alongside one
    :class:`DetectOutcome` per table.  Tables too small to train on
    (fewer than 2 rows) are scored by analyzer conformance alone.
    """
    report = ingest_path(path)
    outcomes: list[DetectOutcome] = []
    for item in report.tables:
        profiles = report.profiles[item.name]
        if detector is not None:
            scores = _score_with_model(item, profiles, detector)
        elif item.table.n_rows >= 2:
            try:
                scores = _score_with_weak_labels(
                    item, profiles, architecture=architecture,
                    n_label_tuples=n_label_tuples, epochs=epochs,
                    cell_type=cell_type, seed=seed)
            except DataError:
                # Tables too degenerate to split/train (e.g. two near-
                # identical rows) still get analyzer verdicts.
                scores = _analyzer_only_scores(item, profiles)
        else:
            scores = _analyzer_only_scores(item, profiles)
        outcomes.append(DetectOutcome(table=item, profiles=profiles,
                                      scores=scores))
    return report, outcomes


def _analyzer_only_scores(item: IngestedTable,
                          profiles: dict[str, ColumnProfile],
                          ) -> tuple[CellScore, ...]:
    """Degenerate path for tables the BiRNN cannot train on."""
    scores = []
    for attribute in item.table.column_names:
        profile = profiles[attribute]
        for i, raw in enumerate(item.table.column(attribute).values):
            value = "" if raw is None else str(raw)
            conforms = conforming_mask(profile, [value])[0]
            scores.append(CellScore(
                table=item.name, row=i, attribute=attribute, value=value,
                score=0.0 if conforms else 1.0, flagged=not conforms,
                conforms=conforms))
    return tuple(scores)


def scores_table(outcomes: list[DetectOutcome],
                 flagged_only: bool = True) -> Table:
    """Flatten outcomes into a result :class:`Table` for CSV export."""
    rows: list[CellScore] = []
    for outcome in outcomes:
        rows.extend(outcome.flagged if flagged_only else outcome.scores)
    return Table({
        "table": [s.table for s in rows],
        "row": [s.row for s in rows],
        "attribute": [s.attribute for s in rows],
        "value": [s.value for s in rows],
        "score": [f"{s.score:.4f}" for s in rows],
        "conforms": [int(s.conforms) for s in rows],
    })
