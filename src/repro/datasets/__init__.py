"""The six benchmark datasets as deterministic synthetic generators.

The paper evaluates on Beers, Flights, Hospital, Movies, Rayyan and Tax
(Table 2) -- public datasets that are not available in this offline
environment.  Each generator here reproduces its dataset's schema,
row/column counts, character inventory, error-type mix (MV, T, FI, VAD)
and error rate, so the models exercise the identical code path.

Every dataset is a :class:`DatasetPair` (dirty + clean wide tables plus
the injected-error ledger).  Generators are deterministic in their seed.
"""

from repro.datasets.base import DatasetPair, DatasetStats
from repro.datasets.errors import (
    CellError,
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
)
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_spec,
    load,
    load_pair_from_csv,
)
from repro.datasets.taxonomy import (
    FAMILY_ERROR_TYPES,
    FAMILY_NAMES,
    ErrorSpec,
    TaxonomyError,
    TaxonomyResult,
    apply_taxonomy,
    correlated,
    format_drift,
    keyboard_typo,
    missing,
    pair_from_taxonomy,
    truncation,
    value_swap,
)

__all__ = [
    "DatasetPair",
    "DatasetStats",
    "ErrorType",
    "CellError",
    "ColumnErrorSpec",
    "ErrorInjector",
    "DATASET_NAMES",
    "dataset_spec",
    "load",
    "load_pair_from_csv",
    "FAMILY_ERROR_TYPES",
    "FAMILY_NAMES",
    "ErrorSpec",
    "TaxonomyError",
    "TaxonomyResult",
    "apply_taxonomy",
    "correlated",
    "format_drift",
    "keyboard_typo",
    "missing",
    "pair_from_taxonomy",
    "truncation",
    "value_swap",
]
