"""Dataset registry: name-based loading with paper-scale defaults.

``load("beers")`` returns the paper-sized synthetic pair; pass
``n_rows`` for scaled-down experiments.  ``REPRO_FULL=1`` in the
environment makes the *benchmarks* use the paper sizes; the registry
itself always honours explicit arguments.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.datasets import beers, flights, hospital, movies, rayyan, tax
from repro.datasets.base import DatasetPair
from repro.errors import DataError
from repro.faults import inject


@dataclass(frozen=True)
class DatasetSpecEntry:
    """Registry entry: generator plus the paper's Table 2 facts."""

    name: str
    generate: Callable[..., DatasetPair]
    paper_rows: int
    paper_attributes: int
    paper_error_rate: float
    paper_distinct_characters: int
    error_types: tuple[str, ...]


_REGISTRY: dict[str, DatasetSpecEntry] = {
    "beers": DatasetSpecEntry(
        "beers", beers.generate, 2410, 11, 0.16, 86, ("MV", "FI", "VAD")),
    "flights": DatasetSpecEntry(
        "flights", flights.generate, 2376, 7, 0.30, 70, ("MV", "FI", "VAD")),
    "hospital": DatasetSpecEntry(
        "hospital", hospital.generate, 1000, 20, 0.03, 46, ("T", "VAD")),
    "movies": DatasetSpecEntry(
        "movies", movies.generate, 7390, 17, 0.06, 135, ("MV", "FI")),
    "rayyan": DatasetSpecEntry(
        "rayyan", rayyan.generate, 1000, 10, 0.09, 101, ("MV", "T", "FI", "VAD")),
    "tax": DatasetSpecEntry(
        "tax", tax.generate, 200_000, 15, 0.04, 69, ("T", "FI", "VAD")),
}

DATASET_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpecEntry:
    """Look up a registry entry by dataset name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DataError(
            f"unknown dataset {name!r}; available: {list(DATASET_NAMES)}"
        ) from None


def load(name: str, n_rows: int | None = None, seed: int = 0,
         error_rate: float | None = None) -> DatasetPair:
    """Generate a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    n_rows:
        Override the paper's row count (``None`` keeps it).
    seed:
        Generator seed; different seeds give different corruption draws
        over the same schema.
    error_rate:
        Override the paper's cell error rate (``None`` keeps it).
    """
    entry = dataset_spec(name)
    inject("dataset.generate", dataset=name)
    kwargs: dict = {"seed": seed}
    if n_rows is not None:
        if n_rows < 2:
            raise DataError(f"n_rows must be >= 2, got {n_rows}")
        kwargs["n_rows"] = n_rows
    if error_rate is not None:
        kwargs["error_rate"] = error_rate
    return entry.generate(**kwargs)


def load_pair_from_csv(dirty_path, clean_path, name: str = "custom",
                       error_types: tuple[str, ...] = ()) -> DatasetPair:
    """Build a :class:`DatasetPair` from real dirty/clean CSV files.

    For users who have the original benchmark CSVs (or their own data):
    the pair plugs into the same :class:`~repro.models.ErrorDetector`
    and experiment harness as the synthetic generators.  No injection
    ledger exists, so ledger-based analyses
    (:func:`repro.experiments.error_type_recall`) are unavailable.
    """
    from repro.table import read_csv

    dirty = read_csv(dirty_path)
    clean = read_csv(clean_path)
    if dirty.column_names != clean.column_names:
        # Align positionally, as the preparation pipeline does.
        if dirty.n_cols != clean.n_cols:
            raise DataError(
                f"column count mismatch: dirty has {dirty.n_cols}, "
                f"clean has {clean.n_cols}"
            )
        dirty = dirty.rename(dict(zip(dirty.column_names, clean.column_names)))
    return DatasetPair(name=name, dirty=dirty, clean=clean,
                       error_types=error_types)
