"""The Rayyan dataset (Table 2: 1,000 x 10, error rate 0.09, MV/T/FI/VAD).

Bibliographic records of scientific articles.  Injected errors follow
Section 5.1: day-month flips in ``journal_issn``-style fields
(``'Mar-22'`` vs ``'22-Mar'``), page-range corruption in
``article_pagination`` (``'70-6'``), missing ``article_jissue`` values
and typos in titles.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    make_dependency_violation,
    make_missing,
    typo_substitute,
)
from repro.table import Table

DEFAULT_ROWS = 1000
ERROR_RATE = 0.09
ERROR_TYPES = ("MV", "T", "FI", "VAD")

_COLUMNS = [
    "id", "article_title", "article_language", "journal_title",
    "journal_abbreviation", "journal_issn", "article_jvolume",
    "article_jissue", "article_pagination", "author_list",
]

_MONTH_ABBR = ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug",
               "Sep", "Oct", "Nov", "Dec"]


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    rows = []
    for i in range(n_rows):
        journal, abbreviation, issn = vocab.JOURNALS[
            int(rng.integers(len(vocab.JOURNALS)))]
        topic = vocab.pick(rng, vocab.RESEARCH_TOPICS)
        disease = vocab.pick(rng, ["breast cancer", "type 2 diabetes",
                                   "hypertension", "asthma", "depression",
                                   "stroke", "malaria", "obesity"])
        first_page = int(rng.integers(1, 900))
        authors = "; ".join(
            f"{last} {first[0]}." for first, last in
            (vocab.person_name(rng) for _ in range(int(rng.integers(1, 5))))
        )
        rows.append({
            "id": str(i),
            "article_title": f"{str(topic).capitalize()} in {disease}.",
            "article_language": vocab.pick(rng, ["eng", "fre", "ger", "spa"]),
            "journal_title": journal,
            "journal_abbreviation": abbreviation,
            "journal_issn": issn,
            "article_jvolume": str(int(rng.integers(1, 80))),
            "article_jissue": str(int(rng.integers(1, 13))),
            "article_pagination": f"{first_page}-{first_page + int(rng.integers(4, 20))}",
            "author_list": authors,
        })
    return Table.from_rows(rows, column_names=_COLUMNS)


def _month_flip(value: str, row: dict, rng: np.random.Generator) -> str:
    """FI: spreadsheet-style day-month mangling ('22-Mar' for '0022')."""
    month = _MONTH_ABBR[int(rng.integers(len(_MONTH_ABBR)))]
    day = int(rng.integers(1, 29))
    return f"{month}-{day}" if rng.integers(2) else f"{day}-{month}"


def _truncate_pagination(value: str, row: dict,
                         rng: np.random.Generator) -> str:
    """FI: '170-176' -> '170-6' (last-page shorthand corruption)."""
    if "-" not in value:
        return value
    first, last = value.split("-", 1)
    return f"{first}-{last[-1]}" if len(last) > 1 else value


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Rayyan pair (see module docstring)."""
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    injector = ErrorInjector([
        ColumnErrorSpec("journal_issn", _month_flip,
                        ErrorType.FORMATTING_ISSUE, weight=3.0),
        ColumnErrorSpec("article_pagination", _truncate_pagination,
                        ErrorType.FORMATTING_ISSUE, weight=3.0),
        ColumnErrorSpec("article_jissue", make_missing(""),
                        ErrorType.MISSING_VALUE, weight=2.0),
        ColumnErrorSpec("article_title", typo_substitute,
                        ErrorType.TYPO, weight=2.0),
        ColumnErrorSpec("journal_title", typo_substitute,
                        ErrorType.TYPO, weight=1.0),
        ColumnErrorSpec("journal_abbreviation",
                        make_dependency_violation(
                            [abbr for _, abbr, _ in vocab.JOURNALS]),
                        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=1.0),
    ])
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="rayyan", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
