"""The error-injection framework.

Dirty datasets are produced by corrupting a synthetic clean table with the
paper's four error types (Table 2):

* **MV** missing values -- the cell becomes an explicit marker
  (``'NaN'``) or the empty string;
* **T** typos -- character-level edits (substitution, the Hospital
  dataset's ``'x'`` marking, deletion, transposition);
* **FI** formatting issues -- unit suffixes, thousands separators,
  stripped leading zeros, date/number reformatting;
* **VAD** violated attribute dependencies -- a dependent attribute's
  value is replaced with one that belongs to a *different* determinant
  group (e.g. a city paired with the wrong state).

An :class:`ErrorInjector` owns a list of :class:`ColumnErrorSpec` and
corrupts a target fraction of all cells, distributing errors over the
specs proportionally to their weights.  Every change is recorded as a
:class:`CellError` so tests can audit exactly what was injected.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.table import Table


class ErrorType(enum.Enum):
    """The paper's four error categories."""

    MISSING_VALUE = "MV"
    TYPO = "T"
    FORMATTING_ISSUE = "FI"
    VIOLATED_ATTRIBUTE_DEPENDENCY = "VAD"


@dataclass(frozen=True)
class CellError:
    """Ledger entry for one injected error."""

    row: int
    attribute: str
    original: str
    corrupted: str
    error_type: ErrorType


#: A corruptor maps (clean value, full clean row, rng) to a dirty value.
Corruptor = Callable[[str, dict, np.random.Generator], str]


@dataclass(frozen=True)
class ColumnErrorSpec:
    """How one column gets corrupted.

    Attributes
    ----------
    column:
        Target column name.
    corruptor:
        The corruption function.
    error_type:
        Category recorded in the ledger.
    weight:
        Relative share of the total error budget this spec receives.
    """

    column: str
    corruptor: Corruptor
    error_type: ErrorType
    weight: float = 1.0


class ErrorInjector:
    """Corrupt a clean table according to a list of column specs.

    Parameters
    ----------
    specs:
        Column error specifications; several specs may target the same
        column (e.g. a column with both typos and missing values).
    """

    def __init__(self, specs: Sequence[ColumnErrorSpec]):
        if not specs:
            raise DataError("ErrorInjector requires at least one spec")
        total = sum(spec.weight for spec in specs)
        if total <= 0:
            raise DataError("spec weights must sum to a positive value")
        self.specs = list(specs)
        self._total_weight = total

    def inject(self, clean: Table, error_rate: float,
               rng: np.random.Generator) -> tuple[Table, tuple[CellError, ...]]:
        """Produce a dirty copy of ``clean`` with ~``error_rate`` bad cells.

        The error budget is ``round(error_rate * n_cells)``, split over
        the specs by weight.  Target cells are sampled without
        replacement per column; a corruption that leaves the value
        unchanged is retried a few times and then skipped, so the
        *measured* rate can fall slightly below the target but a cell is
        never double-counted.
        """
        if not 0.0 <= error_rate < 1.0:
            raise DataError(f"error_rate must be in [0, 1), got {error_rate}")
        for spec in self.specs:
            if spec.column not in clean:
                raise DataError(f"spec targets unknown column {spec.column!r}")

        n_cells = clean.n_rows * clean.n_cols
        budget = int(round(error_rate * n_cells))
        columns = {name: list(clean.column(name).values)
                   for name in clean.column_names}
        rows = clean.to_rows()
        corrupted_cells: set[tuple[int, str]] = set()
        ledger: list[CellError] = []

        for spec_index, spec in enumerate(self.specs):
            remaining_weight = sum(s.weight for s in self.specs[spec_index:])
            remaining_budget = budget - len(ledger)
            share = int(round(remaining_budget * spec.weight / remaining_weight))
            share = min(share, remaining_budget)
            candidates = [
                i for i in range(clean.n_rows)
                if (i, spec.column) not in corrupted_cells
            ]
            rng.shuffle(candidates)
            applied = 0
            for row in candidates:
                if applied >= share:
                    break
                original = "" if columns[spec.column][row] is None \
                    else str(columns[spec.column][row])
                corrupted = original
                for _ in range(4):  # retry no-op corruptions a few times
                    corrupted = spec.corruptor(original, rows[row], rng)
                    if corrupted != original:
                        break
                if corrupted == original:
                    continue
                columns[spec.column][row] = corrupted
                corrupted_cells.add((row, spec.column))
                ledger.append(CellError(
                    row=row, attribute=spec.column, original=original,
                    corrupted=corrupted, error_type=spec.error_type,
                ))
                applied += 1

        return Table(columns), tuple(ledger)


# -- corruptor factories -------------------------------------------------------

def make_missing(marker: str = "NaN") -> Corruptor:
    """MV: replace the value with an explicit missing marker."""
    def corrupt(value: str, row: dict, rng: np.random.Generator) -> str:
        return marker
    return corrupt


def typo_mark_x(value: str, row: dict, rng: np.random.Generator) -> str:
    """T: the Hospital dataset's error style -- one letter becomes 'x'."""
    letters = [i for i, c in enumerate(value) if c.isalpha() and c.lower() != "x"]
    if not letters:
        return value
    i = letters[int(rng.integers(len(letters)))]
    replacement = "x" if value[i].islower() else "X"
    return value[:i] + replacement + value[i + 1:]


def typo_substitute(value: str, row: dict, rng: np.random.Generator) -> str:
    """T: substitute one character with a random letter."""
    if not value:
        return value
    i = int(rng.integers(len(value)))
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    replacement = alphabet[int(rng.integers(len(alphabet)))]
    if value[i].isupper():
        replacement = replacement.upper()
    if replacement == value[i]:
        replacement = "q" if value[i] != "q" else "z"
    return value[:i] + replacement + value[i + 1:]


def typo_insert_quote(value: str, row: dict, rng: np.random.Generator) -> str:
    """T: double a quote or insert stray punctuation (Tax's ``Jun"ichi``)."""
    if not value:
        return value
    i = int(rng.integers(len(value) + 1))
    mark = '"' if "'" in value else "-*"
    return value[:i] + mark + value[i:]


def format_add_suffix(suffix: str) -> Corruptor:
    """FI: append a unit suffix (``'12.0'`` -> ``'12.0 oz'``)."""
    def corrupt(value: str, row: dict, rng: np.random.Generator) -> str:
        return value + suffix if value else value
    return corrupt


def format_strip_leading_zeros(value: str, row: dict,
                               rng: np.random.Generator) -> str:
    """FI: drop leading zeros (``'01907'`` -> ``'1907'``)."""
    stripped = value.lstrip("0")
    return stripped if stripped else value


def format_thousands_separator(value: str, row: dict,
                               rng: np.random.Generator) -> str:
    """FI: insert thousands separators (``'379998'`` -> ``'379,998'``)."""
    if not value.isdigit() or len(value) <= 3:
        return value
    out = []
    for offset, char in enumerate(reversed(value)):
        if offset and offset % 3 == 0:
            out.append(",")
        out.append(char)
    return "".join(reversed(out))


def format_decimal_suffix(value: str, row: dict,
                          rng: np.random.Generator) -> str:
    """FI: turn an integer into a float rendering (``'8'`` -> ``'8.0'``)."""
    return value + ".0" if value.isdigit() else value


def format_date_prefix(prefix: str = "12/02/2011 ") -> Corruptor:
    """FI: prepend a date to a time (``'6:55 a.m.'`` -> with date)."""
    def corrupt(value: str, row: dict, rng: np.random.Generator) -> str:
        return prefix + value if value else value
    return corrupt


def make_dependency_violation(dependent_domain: Sequence[str]) -> Corruptor:
    """VAD: replace the value with a different member of its domain.

    Breaking, e.g., the city->state dependency is done by assigning a
    state that belongs to some *other* city; drawing a different value
    from the column's own domain achieves exactly that.
    """
    domain = [str(v) for v in dependent_domain]
    if len(domain) < 2:
        raise DataError("dependency violation needs a domain of >= 2 values")

    def corrupt(value: str, row: dict, rng: np.random.Generator) -> str:
        for _ in range(8):
            candidate = domain[int(rng.integers(len(domain)))]
            if candidate != value:
                return candidate
        return value
    return corrupt


def time_shift(value: str, row: dict, rng: np.random.Generator) -> str:
    """VAD (Flights): shift a ``'H:MM a.m.'`` time by a few minutes."""
    import re
    match = re.match(r"^(\d{1,2}):(\d{2}) (a\.m\.|p\.m\.)$", value)
    if not match:
        return value
    hour, minute, half = int(match.group(1)), int(match.group(2)), match.group(3)
    delta = int(rng.integers(1, 45))
    if rng.integers(2):
        delta = -delta
    total = (hour % 12) * 60 + minute + delta
    total %= 12 * 60
    new_hour = total // 60 or 12
    return f"{new_hour}:{total % 60:02d} {half}"
