"""The Beers dataset (Table 2: 2,410 x 11, error rate 0.16, MV/FI/VAD).

Craft-beer records: style, bitterness (IBU), alcohol by volume (ABV),
ounces, brewery and location.  Injected errors follow the paper's
Section 5.1 description: formatting issues in ``ounces`` (``'12.0 oz'``)
and ``abv`` (``'0.061%'``), city/state dependency violations and missing
states (``'NaN'``).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_add_suffix,
    make_dependency_violation,
    make_missing,
)
from repro.table import Table

DEFAULT_ROWS = 2410
ERROR_RATE = 0.16
ERROR_TYPES = ("MV", "FI", "VAD")

_COLUMNS = ["index", "id", "beer_name", "style", "ounces", "abv", "ibu",
            "brewery_id", "brewery_name", "city", "state"]


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    n_breweries = max(n_rows // 12, 2)
    breweries = []
    for i in range(n_breweries):
        word = vocab.pick(rng, vocab.BREWERY_WORDS)
        suffix = vocab.pick(rng, vocab.BREWERY_SUFFIXES)
        city, state = vocab.CITY_STATE[int(rng.integers(len(vocab.CITY_STATE)))]
        breweries.append((f"{word} {suffix}", city, state))

    rows = []
    for i in range(n_rows):
        brewery_id = int(rng.integers(n_breweries))
        name, city, state = breweries[brewery_id]
        style = vocab.pick(rng, vocab.BEER_STYLES)
        adjective = vocab.pick(rng, vocab.MOVIE_WORDS)
        noun = vocab.pick(rng, vocab.MOVIE_NOUNS)
        rows.append({
            "index": str(i),
            "id": str(1000 + i),
            "beer_name": f"{adjective} {noun} {style.split()[-1]}",
            "style": style,
            "ounces": vocab.pick(rng, ["12.0", "16.0", "8.4", "19.2", "24.0"]),
            "abv": f"0.{rng.integers(30, 99):03d}",
            "ibu": str(int(rng.integers(5, 120))),
            "brewery_id": str(brewery_id),
            "brewery_name": name,
            "city": city,
            "state": state,
        })
    return Table.from_rows(rows, column_names=_COLUMNS)


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Beers pair.

    Parameters
    ----------
    n_rows:
        Number of tuples (the paper's dataset has 2,410).
    seed:
        Seed for the deterministic generator.
    error_rate:
        Target fraction of corrupted cells.
    """
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    injector = ErrorInjector([
        ColumnErrorSpec("ounces", format_add_suffix(" oz"),
                        ErrorType.FORMATTING_ISSUE, weight=3.0),
        ColumnErrorSpec("abv", format_add_suffix("%"),
                        ErrorType.FORMATTING_ISSUE, weight=3.0),
        ColumnErrorSpec("state", make_missing("NaN"),
                        ErrorType.MISSING_VALUE, weight=2.0),
        ColumnErrorSpec("ibu", make_missing("NaN"),
                        ErrorType.MISSING_VALUE, weight=2.0),
        ColumnErrorSpec("state", make_dependency_violation(vocab.STATES),
                        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=2.0),
        ColumnErrorSpec("city",
                        make_dependency_violation([c for c, _ in vocab.CITY_STATE]),
                        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=2.0),
    ])
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="beers", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
