"""The Flights dataset (Table 2: 2,376 x 7, error rate 0.30, MV/FI/VAD).

The same flight is reported by several web sources that disagree on
departure/arrival times -- the hardest dataset in the paper (ETSB-RNN
F1 0.74) because the error signal lives in cross-record dependencies the
character-level models cannot see.  Injected errors: missing times (MV),
times shifted by a few minutes (VAD between sources) and a date prefix
glued onto the time (FI).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_date_prefix,
    make_missing,
    time_shift,
)
from repro.table import Table

DEFAULT_ROWS = 2376
ERROR_RATE = 0.30
ERROR_TYPES = ("MV", "FI", "VAD")

_COLUMNS = ["tuple_id", "src", "flight", "sched_dep_time", "act_dep_time",
            "sched_arr_time", "act_arr_time"]


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    n_sources = len(vocab.FLIGHT_SOURCES)
    n_flights = max(n_rows // n_sources, 1)
    flights = []
    for _ in range(n_flights):
        airline = vocab.pick(rng, vocab.AIRLINES)
        number = int(rng.integers(100, 2000))
        origin = vocab.pick(rng, vocab.AIRPORTS)
        dest = vocab.pick(rng, vocab.AIRPORTS)
        while dest == origin:
            dest = vocab.pick(rng, vocab.AIRPORTS)
        flights.append({
            "flight": f"{airline}-{number}-{origin}-{dest}",
            "sched_dep_time": vocab.clock_time(rng),
            "act_dep_time": vocab.clock_time(rng),
            "sched_arr_time": vocab.clock_time(rng),
            "act_arr_time": vocab.clock_time(rng),
        })

    rows = []
    i = 0
    while len(rows) < n_rows:
        flight = flights[i % n_flights]
        source = vocab.FLIGHT_SOURCES[(i // n_flights) % n_sources]
        rows.append({
            "tuple_id": str(len(rows)),
            "src": source,
            **flight,
        })
        i += 1
    return Table.from_rows(rows, column_names=_COLUMNS)


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Flights pair (see module docstring)."""
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    time_columns = ["sched_dep_time", "act_dep_time",
                    "sched_arr_time", "act_arr_time"]
    specs = []
    for column in time_columns:
        specs.append(ColumnErrorSpec(
            column, time_shift,
            ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=3.0))
        specs.append(ColumnErrorSpec(
            column, make_missing(""), ErrorType.MISSING_VALUE, weight=2.0))
        specs.append(ColumnErrorSpec(
            column, format_date_prefix(),
            ErrorType.FORMATTING_ISSUE, weight=1.0))
    injector = ErrorInjector(specs)
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="flights", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
