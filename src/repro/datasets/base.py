"""Dataset containers and the statistics of Table 2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.errors import CellError
from repro.errors import DataError
from repro.table import Table


@dataclass(frozen=True)
class DatasetStats:
    """The per-dataset statistics the paper reports in Table 2."""

    name: str
    n_rows: int
    n_attributes: int
    error_rate: float
    n_distinct_characters: int
    error_types: tuple[str, ...]

    def as_row(self) -> dict[str, object]:
        """One Table 2 row."""
        return {
            "Name": self.name,
            "Size": f"{self.n_rows:,}x{self.n_attributes}",
            "Error Rate": round(self.error_rate, 2),
            "Different Characters": self.n_distinct_characters,
            "Error Types": ", ".join(self.error_types),
        }


@dataclass(frozen=True)
class DatasetPair:
    """A dirty table, its clean ground truth, and the injected errors.

    Attributes
    ----------
    name:
        Dataset identifier (``beers``, ``flights``, ...).
    dirty, clean:
        Wide tables of identical shape and column names.
    errors:
        Ledger of every injected error (empty for externally loaded
        pairs, where the ground truth is the only error record).
    error_types:
        The error-type tags of Table 2 (MV, T, FI, VAD).
    """

    name: str
    dirty: Table
    clean: Table
    errors: tuple[CellError, ...] = ()
    error_types: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.dirty.shape != self.clean.shape:
            raise DataError(
                f"dirty and clean shapes differ: {self.dirty.shape} vs {self.clean.shape}"
            )
        if self.dirty.column_names != self.clean.column_names:
            raise DataError("dirty and clean must share column names")

    @property
    def n_rows(self) -> int:
        """Number of tuples."""
        return self.dirty.n_rows

    @property
    def n_attributes(self) -> int:
        """Number of attributes."""
        return self.dirty.n_cols

    @property
    def n_cells(self) -> int:
        """Total cell count."""
        return self.n_rows * self.n_attributes

    def error_mask(self) -> list[list[bool]]:
        """Per-cell ground-truth error mask (``dirty != clean``)."""
        mask: list[list[bool]] = []
        for dirty_row, clean_row in zip(self.dirty.iter_rows(), self.clean.iter_rows()):
            mask.append([
                _norm(dirty_row[name]) != _norm(clean_row[name])
                for name in self.dirty.column_names
            ])
        return mask

    def measured_error_rate(self) -> float:
        """Fraction of cells whose dirty value deviates from the clean one."""
        mask = self.error_mask()
        wrong = sum(sum(row) for row in mask)
        return wrong / self.n_cells if self.n_cells else 0.0

    def distinct_characters(self) -> int:
        """Size of the dirty table's character inventory."""
        chars: set[str] = set()
        for name in self.dirty.column_names:
            for value in self.dirty.column(name).values:
                chars.update(_norm(value))
        return len(chars)

    def stats(self) -> DatasetStats:
        """Compute the Table 2 statistics for this pair."""
        return DatasetStats(
            name=self.name,
            n_rows=self.n_rows,
            n_attributes=self.n_attributes,
            error_rate=self.measured_error_rate(),
            n_distinct_characters=self.distinct_characters(),
            error_types=self.error_types,
        )


def _norm(value: object) -> str:
    return "" if value is None else str(value).lstrip()
