"""The Tax dataset (Table 2: 200,000 x 15, error rate 0.04, T/FI/VAD).

Personal tax records -- by far the largest dataset of the benchmark.
Injected errors follow Section 5.1: typos in ``f_name``
(``Jun"ichi``) and ``city`` (``'ARCHIE-*'``), formatting issues in
``zip`` (stripped leading zero) and ``rate`` (``'7.0'`` vs ``'7'``), and
attribute-dependency violations between state/city and
marital_status/has_child.

The paper-scale row count makes pure-Python preparation slow; use the
``n_rows`` parameter for scaled-down experiments (the registry and the
benchmarks default to a reduced size unless ``REPRO_FULL=1``).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_decimal_suffix,
    format_strip_leading_zeros,
    make_dependency_violation,
    typo_insert_quote,
)
from repro.table import Table

DEFAULT_ROWS = 200_000
ERROR_RATE = 0.04
ERROR_TYPES = ("T", "FI", "VAD")

_COLUMNS = [
    "f_name", "l_name", "gender", "area_code", "phone", "city", "state",
    "zip", "marital_status", "has_child", "salary", "rate",
    "single_exemp", "married_exemp", "child_exemp",
]


def _city_suffix_typo(value: str, row: dict, rng: np.random.Generator) -> str:
    """T: 'ARCHIE' -> 'ARCHIE-*' (the Tax city corruption)."""
    return value + "-*" if value else value


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    rows = []
    for _ in range(n_rows):
        first, last = vocab.person_name(rng)
        city, state = vocab.CITY_STATE[int(rng.integers(len(vocab.CITY_STATE)))]
        married = bool(rng.integers(2))
        has_child = bool(rng.integers(2)) if married else False
        salary = int(rng.integers(18, 250)) * 1000
        rows.append({
            "f_name": first.upper(),
            "l_name": last.upper(),
            "gender": "M" if rng.integers(2) else "F",
            "area_code": str(int(rng.integers(200, 999))),
            "phone": f"{rng.integers(200, 999)}-{rng.integers(1000, 9999)}",
            "city": city.upper(),
            "state": state,
            "zip": vocab.zip_code(rng),
            "marital_status": "M" if married else "S",
            "has_child": "Y" if has_child else "N",
            "salary": str(salary),
            "rate": str(int(rng.integers(2, 10))),
            "single_exemp": "0" if married else str(int(rng.integers(1, 8)) * 500),
            "married_exemp": str(int(rng.integers(1, 8)) * 1000) if married else "0",
            "child_exemp": str(int(rng.integers(1, 5)) * 750) if has_child else "0",
        })
    return Table.from_rows(rows, column_names=_COLUMNS)


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Tax pair (see module docstring)."""
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    injector = ErrorInjector([
        ColumnErrorSpec("f_name", typo_insert_quote, ErrorType.TYPO, weight=2.0),
        ColumnErrorSpec("city", _city_suffix_typo, ErrorType.TYPO, weight=2.0),
        ColumnErrorSpec("zip", format_strip_leading_zeros,
                        ErrorType.FORMATTING_ISSUE, weight=2.0),
        ColumnErrorSpec("rate", format_decimal_suffix,
                        ErrorType.FORMATTING_ISSUE, weight=2.0),
        ColumnErrorSpec("state", make_dependency_violation(vocab.STATES),
                        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=1.0),
        ColumnErrorSpec("has_child", make_dependency_violation(["Y", "N"]),
                        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=1.0),
    ])
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="tax", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
