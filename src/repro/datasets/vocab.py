"""Shared vocabularies and value factories for the dataset generators.

The generators need realistic-looking names, places, words and numbers.
Everything here is deterministic given the caller's random generator.
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Jun'ichi",
    "Chloe", "Andre", "Fatima", "Igor", "Mei", "Ravi", "Sofia", "Yuki",
    "Omar",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "O'Connor", "Nakamura", "Petrov", "Rossi", "Dubois",
]

#: (city, state) pairs with a real functional dependency city -> state.
CITY_STATE = [
    ("San Diego", "CA"), ("Los Angeles", "CA"), ("San Francisco", "CA"),
    ("Portland", "OR"), ("Seattle", "WA"), ("Denver", "CO"),
    ("Chicago", "IL"), ("Boston", "MA"), ("New York", "NY"),
    ("Austin", "TX"), ("Houston", "TX"), ("Miami", "FL"),
    ("Atlanta", "GA"), ("Nashville", "TN"), ("Phoenix", "AZ"),
    ("Birmingham", "AL"), ("Dothan", "AL"), ("Mobile", "AL"),
    ("Archie", "MO"), ("Columbus", "OH"),
]

STATES = sorted({state for _, state in CITY_STATE})

BEER_STYLES = [
    "American IPA", "American Pale Ale", "American Porter", "Hefeweizen",
    "Witbier", "Saison", "Oatmeal Stout", "American Amber Ale",
    "Fruit Beer", "Kolsch", "English Brown Ale", "Pilsner",
]

BREWERY_WORDS = [
    "Anchor", "Stone", "Odell", "Bell's", "Founders", "Harpoon", "Summit",
    "Deschutes", "Ninkasi", "Surly", "Cigar City", "Alchemist",
]

BREWERY_SUFFIXES = ["Brewing Company", "Brewery", "Beer Co.", "Ales"]

AIRLINES = ["AA", "UA", "DL", "WN", "B6", "AS"]

AIRPORTS = ["JFK", "SFO", "LAX", "ORD", "DEN", "SEA", "BOS", "MIA", "ATL",
            "PHX", "DFW", "IAH"]

FLIGHT_SOURCES = ["aa", "airtravelcenter", "flightview", "flightstats",
                  "orbitz", "mytripandmore"]

HOSPITAL_CONDITIONS = [
    "Heart Attack", "Heart Failure", "Pneumonia", "Surgical Infection Prevention",
]

HOSPITAL_MEASURES = [
    ("AMI-1", "aspirin at arrival"),
    ("AMI-2", "aspirin at discharge"),
    ("AMI-3", "ace inhibitor for lvsd"),
    ("AMI-4", "adult smoking cessation advice"),
    ("HF-1", "discharge instructions"),
    ("HF-2", "evaluation of lvs function"),
    ("PN-2", "pneumococcal vaccination"),
    ("PN-3B", "blood culture before first antibiotic"),
    ("SCIP-INF-1", "prophylactic antibiotic within one hour"),
    ("SCIP-INF-2", "prophylactic antibiotic selection"),
]

HOSPITAL_OWNERS = [
    "Government - Hospital District", "Proprietary",
    "Voluntary non-profit - Private", "Voluntary non-profit - Church",
]

MOVIE_WORDS = [
    "Midnight", "Silent", "Golden", "Broken", "Crimson", "Eternal", "Lost",
    "Hidden", "Savage", "Gentle", "Electric", "Paper", "Glass", "Iron",
    "Velvet", "Hollow",
]

MOVIE_NOUNS = [
    "River", "Empire", "Garden", "Horizon", "Station", "Letters", "Shadows",
    "Kingdom", "Promise", "Journey", "Symphony", "Harbor", "Mirage",
    "Carnival", "Echoes", "Voyage",
]

MOVIE_GENRES = ["Drama", "Comedy", "Action", "Thriller", "Romance", "Sci-Fi",
                "Horror", "Documentary", "Animation", "Crime"]

LANGUAGES = ["English", "French", "Spanish", "German", "Japanese", "Korean",
             "Italian", "Mandarin", "Hindi", "Portuguese"]

COUNTRIES = ["USA", "UK", "France", "Germany", "Japan", "South Korea",
             "Italy", "China", "India", "Brazil"]

JOURNALS = [
    ("Journal of Clinical Oncology", "J Clin Oncol", "0732-183X"),
    ("The Lancet", "Lancet", "0140-6736"),
    ("New England Journal of Medicine", "N Engl J Med", "0028-4793"),
    ("Annals of Internal Medicine", "Ann Intern Med", "0003-4819"),
    ("British Medical Journal", "BMJ", "0959-8138"),
    ("Cancer Research", "Cancer Res", "0008-5472"),
    ("Pediatrics", "Pediatrics", "0031-4005"),
    ("Circulation", "Circulation", "0009-7322"),
]

RESEARCH_TOPICS = [
    "randomized trial of adjuvant therapy",
    "systematic review of screening outcomes",
    "meta-analysis of risk factors",
    "cohort study of long-term survival",
    "case-control study of biomarkers",
    "evaluation of diagnostic accuracy",
    "protocol for early intervention",
    "cost-effectiveness of vaccination",
]


def pick(rng: np.random.Generator, items: list) -> object:
    """Uniform choice from a list (index-based to stay deterministic)."""
    return items[int(rng.integers(len(items)))]


def person_name(rng: np.random.Generator) -> tuple[str, str]:
    """A (first, last) name pair."""
    return str(pick(rng, FIRST_NAMES)), str(pick(rng, LAST_NAMES))


def phone_number(rng: np.random.Generator) -> str:
    """A ``NNN-NNN-NNNN``-style phone number."""
    return (f"{rng.integers(200, 999)}-{rng.integers(200, 999)}"
            f"-{rng.integers(1000, 9999)}")


def zip_code(rng: np.random.Generator) -> str:
    """A 5-digit ZIP, sometimes with a leading zero (the Tax FI target)."""
    if rng.integers(4) == 0:
        return f"0{rng.integers(1000, 9999)}"
    return f"{rng.integers(10000, 99999)}"


def clock_time(rng: np.random.Generator) -> str:
    """A ``'H:MM a.m.'`` time string in the Flights format."""
    hour = int(rng.integers(1, 13))
    minute = int(rng.integers(60))
    half = "a.m." if rng.integers(2) else "p.m."
    return f"{hour}:{minute:02d} {half}"
