"""The authentic-error taxonomy: seeded, composable corruption knobs.

The paper's four error categories (MV/T/FI/VAD, :mod:`repro.datasets.errors`)
cover the benchmark, but real-world dirt is richer.  Following the
"Generating Authentic Errors via LLMs" direction in PAPERS.md and the
PAT paper's pattern-drift families, this module adds error *specs* that
model how errors actually arise:

* :func:`keyboard_typo` -- fat-finger substitutions/insertions drawn
  from physical QWERTY adjacency, not uniform letters;
* :func:`correlated` -- multi-column errors that hit several attributes
  of the *same* row together (a mis-joined or shifted record);
* :func:`format_drift` -- locale drift: date order flips, decimal
  commas, thousands separators;
* :func:`truncation` -- values cut off mid-way (ETL column width);
* :func:`value_swap` -- two rows' values exchanged within a column.

Every spec is a frozen value object with three contractual properties,
enforced by ``tests/datasets/test_taxonomy_properties.py``:

1. **Seed determinism** -- a spec's targets and corruptions are a pure
   function of ``(clean table, seed, spec identity)``.
2. **Mask exactness** -- :func:`apply_taxonomy` changes exactly the
   cells in the spec's reported ground-truth mask, nothing else.
3. **Order-independent composition** -- specs plan against the *clean*
   table, so applying two specs in either order corrupts the same cell
   set for the same seeds (overlapping cells keep the later spec's
   value; the masks are unchanged).

:func:`pair_from_taxonomy` bridges a spec list into a
:class:`~repro.datasets.base.DatasetPair`, so the taxonomy plugs into
the existing detector, serving and experiment layers unchanged.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.datasets.base import DatasetPair
from repro.datasets.errors import CellError, ErrorType
from repro.errors import DataError
from repro.table import Table

#: Taxonomy family -> nearest paper category (for Table-2 style tags).
FAMILY_ERROR_TYPES: dict[str, ErrorType] = {
    "keyboard_typo": ErrorType.TYPO,
    "correlated": ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY,
    "format_drift": ErrorType.FORMATTING_ISSUE,
    "truncation": ErrorType.TYPO,
    "value_swap": ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY,
    "missing": ErrorType.MISSING_VALUE,
}

#: Physical QWERTY neighbourhoods (lower-case; case is preserved on use).
QWERTY_ADJACENT: dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "o",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "ko",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
    "0": "9", "1": "2q", "2": "13w", "3": "24e", "4": "35r", "5": "46t",
    "6": "57y", "7": "68u", "8": "79i", "9": "80o",
}


@dataclass(frozen=True)
class TaxonomyError:
    """Ledger entry: one planned cell corruption."""

    row: int
    column: str
    original: str
    corrupted: str
    family: str


@dataclass(frozen=True)
class ErrorSpec:
    """One corruption knob.

    Attributes
    ----------
    family:
        Taxonomy family name (keys of :data:`FAMILY_ERROR_TYPES`).
    columns:
        Target columns.  Correlated specs corrupt all of them per
        target row; other families treat each column independently.
    rate:
        Fraction of rows targeted per column (for :func:`value_swap`,
        the fraction of rows that end up in a swapped pair).
    params:
        Family-specific knobs, as a sorted tuple of ``(key, value)``
        pairs so the spec stays hashable and its identity stable.
    """

    family: str
    columns: tuple[str, ...]
    rate: float
    params: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.family not in _PLANNERS:
            raise DataError(
                f"unknown error family {self.family!r}; "
                f"known: {sorted(_PLANNERS)}")
        if not self.columns:
            raise DataError(f"{self.family}: spec needs at least one column")
        if not 0.0 <= self.rate <= 1.0:
            raise DataError(
                f"{self.family}: rate must be in [0, 1], got {self.rate}")

    def param(self, key: str, default: object = None) -> object:
        """Look up one family parameter."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def identity(self) -> str:
        """Stable identity string (part of the per-spec seed)."""
        return repr((self.family, self.columns, round(self.rate, 9),
                     self.params))

    def rng(self, seed: int) -> np.random.Generator:
        """The spec's private generator for a given experiment seed.

        Derived only from ``(seed, identity)``: independent of other
        specs and of application order, which is what makes composition
        order-independent.
        """
        digest = hashlib.sha256(self.identity().encode("utf-8")).digest()
        words = np.frombuffer(digest[:16], dtype=np.uint32)
        return np.random.default_rng([int(seed) & 0xFFFFFFFF, *words.tolist()])

    def plan(self, clean: Table, seed: int) -> list[TaxonomyError]:
        """Plan this spec's corruptions against the clean table.

        Only genuine changes are returned: a corruption that would
        leave the value untouched is dropped, so the plan *is* the
        ground-truth mask.
        """
        for column in self.columns:
            if column not in clean:
                raise DataError(
                    f"{self.family}: unknown column {column!r} "
                    f"(table has {clean.column_names})")
        entries = _PLANNERS[self.family](self, clean, self.rng(seed))
        return [e for e in entries if e.corrupted != e.original]


@dataclass(frozen=True)
class TaxonomyResult:
    """Output of :func:`apply_taxonomy`.

    Attributes
    ----------
    dirty:
        The corrupted table.
    errors:
        Every applied corruption, in application order.  A cell
        targeted by several specs appears once per spec; the dirty
        value is the last spec's.
    mask:
        ``(n_rows, n_cols)`` boolean ground truth (column order of the
        clean table).
    by_spec:
        One ledger per input spec, parallel to the spec list.
    """

    dirty: Table
    errors: tuple[TaxonomyError, ...]
    mask: np.ndarray
    by_spec: tuple[tuple[TaxonomyError, ...], ...]


def _norm(value: object) -> str:
    return "" if value is None else str(value)


def _budget(rate: float, n_rows: int) -> int:
    return int(round(rate * n_rows))


def _sample_rows(rng: np.random.Generator, n_rows: int, count: int) -> list[int]:
    count = min(count, n_rows)
    if count <= 0:
        return []
    return sorted(int(i) for i in
                  rng.choice(n_rows, size=count, replace=False))


# -- family planners -----------------------------------------------------------

def _plan_keyboard_typo(spec: ErrorSpec, clean: Table,
                        rng: np.random.Generator) -> list[TaxonomyError]:
    """Fat-finger edits: substitute or double-press an adjacent key."""
    out: list[TaxonomyError] = []
    for column in spec.columns:
        values = clean.column(column).values
        for row in _sample_rows(rng, clean.n_rows, _budget(spec.rate,
                                                           clean.n_rows)):
            original = _norm(values[row])
            hittable = [i for i, ch in enumerate(original)
                        if ch.lower() in QWERTY_ADJACENT]
            if not hittable:
                continue
            i = hittable[int(rng.integers(len(hittable)))]
            neighbours = QWERTY_ADJACENT[original[i].lower()]
            key = neighbours[int(rng.integers(len(neighbours)))]
            if original[i].isupper():
                key = key.upper()
            if rng.integers(2):  # substitution
                corrupted = original[:i] + key + original[i + 1:]
            else:                # insertion (the doubled near-press)
                corrupted = original[:i + 1] + key + original[i + 1:]
            out.append(TaxonomyError(row, column, original, corrupted,
                                     spec.family))
    return out


def _plan_correlated(spec: ErrorSpec, clean: Table,
                     rng: np.random.Generator) -> list[TaxonomyError]:
    """Mis-joined records: a target row takes *all* spec columns from
    one other (donor) row, so the errors are correlated per row."""
    columns = {c: clean.column(c).values for c in spec.columns}
    out: list[TaxonomyError] = []
    if clean.n_rows < 2:
        return out
    for row in _sample_rows(rng, clean.n_rows, _budget(spec.rate,
                                                       clean.n_rows)):
        donor = int(rng.integers(clean.n_rows - 1))
        if donor >= row:
            donor += 1
        for column in spec.columns:
            original = _norm(columns[column][row])
            corrupted = _norm(columns[column][donor])
            out.append(TaxonomyError(row, column, original, corrupted,
                                     spec.family))
    return out


_DATE_RE = re.compile(r"^(\d{1,4})([-/.])(\d{1,2})\2(\d{1,4})$")


def _drift_date(value: str) -> str:
    """Flip the date's field order (ISO -> day-first, else reverse)."""
    match = _DATE_RE.match(value)
    if not match:
        return value
    a, sep, b, c = match.group(1), match.group(2), match.group(3), match.group(4)
    new_sep = "/" if sep != "/" else "-"
    return f"{c}{new_sep}{b}{new_sep}{a}"


def _drift_number(value: str) -> str:
    """Point-decimal -> comma-decimal with dotted thousands groups."""
    if not re.match(r"^[+-]?\d+(\.\d+)?$", value):
        return value
    sign = ""
    body = value
    if body[0] in "+-":
        sign, body = body[0], body[1:]
    if "." in body:
        integer, fraction = body.split(".", 1)
    else:
        integer, fraction = body, ""
    groups = []
    while len(integer) > 3:
        groups.append(integer[-3:])
        integer = integer[:-3]
    grouped = ".".join([integer] + list(reversed(groups))) \
        if groups else integer
    return sign + grouped + ("," + fraction if fraction else "")


def _plan_format_drift(spec: ErrorSpec, clean: Table,
                       rng: np.random.Generator) -> list[TaxonomyError]:
    """Locale drift: date order flips and decimal-comma renderings."""
    kind = str(spec.param("kind", "auto"))
    out: list[TaxonomyError] = []
    for column in spec.columns:
        values = clean.column(column).values
        for row in _sample_rows(rng, clean.n_rows, _budget(spec.rate,
                                                           clean.n_rows)):
            original = _norm(values[row])
            if kind == "date":
                corrupted = _drift_date(original)
            elif kind == "number":
                corrupted = _drift_number(original)
            else:  # auto: whichever rewrite bites
                corrupted = _drift_date(original)
                if corrupted == original:
                    corrupted = _drift_number(original)
            out.append(TaxonomyError(row, column, original, corrupted,
                                     spec.family))
    return out


def _plan_truncation(spec: ErrorSpec, clean: Table,
                     rng: np.random.Generator) -> list[TaxonomyError]:
    """ETL-style cutoffs: keep a strict prefix of the value."""
    min_keep = int(spec.param("min_keep", 1))
    out: list[TaxonomyError] = []
    for column in spec.columns:
        values = clean.column(column).values
        for row in _sample_rows(rng, clean.n_rows, _budget(spec.rate,
                                                           clean.n_rows)):
            original = _norm(values[row])
            if len(original) <= min_keep:
                continue
            keep = int(rng.integers(min_keep, len(original)))
            out.append(TaxonomyError(row, column, original, original[:keep],
                                     spec.family))
    return out


def _plan_value_swap(spec: ErrorSpec, clean: Table,
                     rng: np.random.Generator) -> list[TaxonomyError]:
    """Exchange two rows' values within a column (both cells corrupt)."""
    out: list[TaxonomyError] = []
    for column in spec.columns:
        values = clean.column(column).values
        n_pairs = _budget(spec.rate, clean.n_rows) // 2
        chosen = _sample_rows(rng, clean.n_rows, 2 * n_pairs)
        rng.shuffle(chosen)
        for a, b in zip(chosen[0::2], chosen[1::2]):
            left, right = _norm(values[a]), _norm(values[b])
            out.append(TaxonomyError(a, column, left, right, spec.family))
            out.append(TaxonomyError(b, column, right, left, spec.family))
    return out


def _plan_missing(spec: ErrorSpec, clean: Table,
                  rng: np.random.Generator) -> list[TaxonomyError]:
    """Explicit missing markers (the paper's MV, for composition)."""
    marker = str(spec.param("marker", "NaN"))
    out: list[TaxonomyError] = []
    for column in spec.columns:
        values = clean.column(column).values
        for row in _sample_rows(rng, clean.n_rows, _budget(spec.rate,
                                                           clean.n_rows)):
            out.append(TaxonomyError(row, column, _norm(values[row]), marker,
                                     spec.family))
    return out


_PLANNERS = {
    "keyboard_typo": _plan_keyboard_typo,
    "correlated": _plan_correlated,
    "format_drift": _plan_format_drift,
    "truncation": _plan_truncation,
    "value_swap": _plan_value_swap,
    "missing": _plan_missing,
}

FAMILY_NAMES: tuple[str, ...] = tuple(sorted(_PLANNERS))


# -- spec factories ------------------------------------------------------------

def keyboard_typo(columns: Sequence[str], rate: float) -> ErrorSpec:
    """QWERTY-adjacent substitutions and doubled presses."""
    return ErrorSpec("keyboard_typo", tuple(columns), rate)


def correlated(columns: Sequence[str], rate: float) -> ErrorSpec:
    """Row-correlated multi-column errors (requires >= 2 columns)."""
    if len(columns) < 2:
        raise DataError("correlated errors need at least two columns")
    return ErrorSpec("correlated", tuple(columns), rate)


def format_drift(columns: Sequence[str], rate: float,
                 kind: str = "auto") -> ErrorSpec:
    """Locale drift (``kind``: ``"date"``, ``"number"`` or ``"auto"``)."""
    if kind not in ("date", "number", "auto"):
        raise DataError(f"format_drift kind must be date/number/auto, "
                        f"got {kind!r}")
    return ErrorSpec("format_drift", tuple(columns), rate,
                     params=(("kind", kind),))


def truncation(columns: Sequence[str], rate: float,
               min_keep: int = 1) -> ErrorSpec:
    """Prefix truncation, keeping at least ``min_keep`` characters."""
    if min_keep < 1:
        raise DataError(f"min_keep must be >= 1, got {min_keep}")
    return ErrorSpec("truncation", tuple(columns), rate,
                     params=(("min_keep", min_keep),))


def value_swap(columns: Sequence[str], rate: float) -> ErrorSpec:
    """Swap values between row pairs within each column."""
    return ErrorSpec("value_swap", tuple(columns), rate)


def missing(columns: Sequence[str], rate: float,
            marker: str = "NaN") -> ErrorSpec:
    """Explicit missing-value markers."""
    return ErrorSpec("missing", tuple(columns), rate,
                     params=(("marker", marker),))


# -- application ---------------------------------------------------------------

def apply_taxonomy(clean: Table, specs: Sequence[ErrorSpec],
                   seed: int = 0) -> TaxonomyResult:
    """Apply every spec to ``clean`` (see the module contract).

    Each spec plans against the clean table under its private seeded
    generator; plans are then materialised in spec order, so the cell
    *sets* are order-independent and only overlapping cells' final
    values depend on order.
    """
    if not specs:
        raise DataError("apply_taxonomy needs at least one spec")
    positions = {name: j for j, name in enumerate(clean.column_names)}
    columns = {name: list(clean.column(name).values)
               for name in clean.column_names}
    mask = np.zeros((clean.n_rows, clean.n_cols), dtype=bool)
    ledger: list[TaxonomyError] = []
    by_spec: list[tuple[TaxonomyError, ...]] = []
    for spec in specs:
        plan = spec.plan(clean, seed)
        for entry in plan:
            columns[entry.column][entry.row] = entry.corrupted
            mask[entry.row, positions[entry.column]] = True
        ledger.extend(plan)
        by_spec.append(tuple(plan))
    return TaxonomyResult(dirty=Table(columns), errors=tuple(ledger),
                          mask=mask, by_spec=tuple(by_spec))


def pair_from_taxonomy(name: str, clean: Table, specs: Sequence[ErrorSpec],
                       seed: int = 0) -> DatasetPair:
    """Build a :class:`DatasetPair` by corrupting ``clean`` with ``specs``.

    The ledger maps each family to its nearest paper category so
    ledger-based analyses (:func:`repro.experiments.error_type_recall`)
    keep working; a cell hit by several specs is recorded once, under
    the last spec that wrote it.
    """
    result = apply_taxonomy(clean, specs, seed=seed)
    last_write: dict[tuple[int, str], TaxonomyError] = {
        (e.row, e.column): e for e in result.errors
    }
    cell_errors = tuple(
        CellError(row=e.row, attribute=e.column, original=e.original,
                  corrupted=e.corrupted,
                  error_type=FAMILY_ERROR_TYPES[e.family])
        for e in last_write.values()
    )
    families = []
    for spec in specs:
        tag = FAMILY_ERROR_TYPES[spec.family].value
        if tag not in families:
            families.append(tag)
    return DatasetPair(name=name, dirty=result.dirty, clean=clean,
                       errors=cell_errors, error_types=tuple(families))
