"""The Hospital dataset (Table 2: 1,000 x 20, error rate 0.03, T/VAD).

Hospital/measure records with the benchmark's signature error style:
typos where one letter is replaced by ``'x'`` (``'Birmingxam'``), which
the paper notes are easy for character models to spot (both TSB-RNN and
ETSB-RNN reach F1 0.97).  Attribute-dependency violations break the
hospital -> city/state/zip dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    make_dependency_violation,
    typo_mark_x,
)
from repro.table import Table

DEFAULT_ROWS = 1000
ERROR_RATE = 0.03
ERROR_TYPES = ("T", "VAD")

_COLUMNS = [
    "provider_number", "hospital_name", "address_1", "address_2",
    "address_3", "city", "state", "zip_code", "county_name",
    "phone_number", "hospital_type", "hospital_owner",
    "emergency_service", "condition", "measure_code", "measure_name",
    "sample", "score", "stateavg", "index",
]


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    n_hospitals = max(n_rows // 20, 2)
    hospitals = []
    for i in range(n_hospitals):
        city, state = vocab.CITY_STATE[int(rng.integers(len(vocab.CITY_STATE)))]
        hospitals.append({
            "provider_number": str(10000 + i),
            "hospital_name": f"{city} {vocab.pick(rng, ['regional medical center', 'memorial hospital', 'community hospital', 'general hospital'])}",
            "address_1": f"{rng.integers(100, 9999)} {vocab.pick(rng, ['main street', 'oak avenue', 'hospital drive', 'church road'])}",
            "address_2": "",
            "address_3": "",
            "city": city.lower(),
            "state": state.lower(),
            "zip_code": vocab.zip_code(rng),
            "county_name": city.lower(),
            "phone_number": vocab.phone_number(rng),
            "hospital_type": "acute care hospitals",
            "hospital_owner": str(vocab.pick(rng, vocab.HOSPITAL_OWNERS)).lower(),
            "emergency_service": "yes" if rng.integers(2) else "no",
        })

    rows = []
    for i in range(n_rows):
        hospital = hospitals[int(rng.integers(n_hospitals))]
        code, measure = vocab.HOSPITAL_MEASURES[
            int(rng.integers(len(vocab.HOSPITAL_MEASURES)))]
        condition = str(vocab.pick(rng, vocab.HOSPITAL_CONDITIONS)).lower()
        rows.append({
            **hospital,
            "condition": condition,
            "measure_code": code.lower(),
            "measure_name": measure,
            "sample": f"{rng.integers(10, 500)} patients",
            "score": f"{rng.integers(40, 100)}%",
            "stateavg": f"{hospital['state']}_{code.lower()}",
            "index": str(i),
        })
    return Table.from_rows(rows, column_names=_COLUMNS)


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Hospital pair (see module docstring)."""
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    typo_columns = ["hospital_name", "address_1", "city", "county_name",
                    "hospital_owner", "condition", "measure_name",
                    "hospital_type"]
    specs = [
        ColumnErrorSpec(column, typo_mark_x, ErrorType.TYPO, weight=2.0)
        for column in typo_columns
    ]
    specs.append(ColumnErrorSpec(
        "state", make_dependency_violation([s.lower() for s in vocab.STATES]),
        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=1.0))
    specs.append(ColumnErrorSpec(
        "zip_code", make_dependency_violation(
            [vocab.zip_code(np.random.default_rng(s)) for s in range(12)]),
        ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY, weight=1.0))
    injector = ErrorInjector(specs)
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="hospital", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
