"""The Movies dataset (Table 2: 7,390 x 17, error rate 0.06, MV/FI).

Movie metadata with the richest character inventory of the benchmark
(135 distinct characters).  Injected errors follow Section 5.1:
formatting issues (``'379,998'`` vs ``'379998.0'``, ``'8.0'`` vs ``'8'``,
``'&'`` vs ``'and'``), missing durations (``'NaN'``) and dropped creator
name parts.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import vocab
from repro.datasets.base import DatasetPair
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_decimal_suffix,
    format_thousands_separator,
    make_missing,
)
from repro.table import Table

DEFAULT_ROWS = 7390
ERROR_RATE = 0.06
ERROR_TYPES = ("MV", "FI")

_COLUMNS = [
    "id", "name", "year", "release_date", "director", "creator", "actors",
    "cast", "language", "country", "duration", "rating_value",
    "rating_count", "review_count", "genre", "filming_locations",
    "description",
]

_MONTHS = ["January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December"]


def _title(rng: np.random.Generator) -> str:
    word = vocab.pick(rng, vocab.MOVIE_WORDS)
    noun = vocab.pick(rng, vocab.MOVIE_NOUNS)
    if rng.integers(5) == 0:
        other = vocab.pick(rng, vocab.MOVIE_NOUNS)
        return f"{word} & {other}"
    return f"{word} {noun}"


def _person(rng: np.random.Generator) -> str:
    first, last = vocab.person_name(rng)
    return f"{first} {last}"


def _clean_table(n_rows: int, rng: np.random.Generator) -> Table:
    rows = []
    for i in range(n_rows):
        year = int(rng.integers(1960, 2021))
        month = vocab.pick(rng, _MONTHS)
        day = int(rng.integers(1, 29))
        director = _person(rng)
        creator = f"{_person(rng)}, {_person(rng)}" if rng.integers(2) else _person(rng)
        actors = ", ".join(_person(rng) for _ in range(3))
        city, _ = vocab.CITY_STATE[int(rng.integers(len(vocab.CITY_STATE)))]
        country = vocab.pick(rng, vocab.COUNTRIES)
        rows.append({
            "id": f"tt{rng.integers(100000, 999999)}",
            "name": _title(rng),
            "year": str(year),
            "release_date": f"{day} {month} {year} (USA)",
            "director": director,
            "creator": creator,
            "actors": actors,
            "cast": actors,
            "language": vocab.pick(rng, vocab.LANGUAGES),
            "country": country,
            "duration": f"{rng.integers(70, 200)} min",
            "rating_value": str(round(float(rng.uniform(3.0, 9.5)), 1)),
            "rating_count": str(int(rng.integers(100, 900000))),
            "review_count": f"{rng.integers(2, 900)} user",
            "genre": vocab.pick(rng, vocab.MOVIE_GENRES),
            "filming_locations": f"{city}, {country}",
            "description": (f"A {str(vocab.pick(rng, vocab.MOVIE_WORDS)).lower()} tale "
                            f"of {str(vocab.pick(rng, vocab.MOVIE_NOUNS)).lower()} "
                            f"and {str(vocab.pick(rng, vocab.MOVIE_NOUNS)).lower()}."),
        })
    return Table.from_rows(rows, column_names=_COLUMNS)


def _drop_first_creator(value: str, row: dict, rng: np.random.Generator) -> str:
    """MV-style truncation: 'Choderlos de Laclos, Roger Kumble' -> last name."""
    if ", " in value:
        return value.split(", ")[-1]
    return value


def _ampersand_to_and(value: str, row: dict, rng: np.random.Generator) -> str:
    """FI: 'Frankie & Johnny' -> 'Frankie and Johnny'."""
    return value.replace(" & ", " and ")


def generate(n_rows: int = DEFAULT_ROWS, seed: int = 0,
             error_rate: float = ERROR_RATE) -> DatasetPair:
    """Generate the synthetic Movies pair (see module docstring)."""
    rng = np.random.default_rng(seed)
    clean = _clean_table(n_rows, rng)
    injector = ErrorInjector([
        ColumnErrorSpec("rating_count", format_thousands_separator,
                        ErrorType.FORMATTING_ISSUE, weight=3.0),
        ColumnErrorSpec("rating_value", format_decimal_suffix,
                        ErrorType.FORMATTING_ISSUE, weight=2.0),
        ColumnErrorSpec("name", _ampersand_to_and,
                        ErrorType.FORMATTING_ISSUE, weight=1.0),
        ColumnErrorSpec("duration", make_missing("NaN"),
                        ErrorType.MISSING_VALUE, weight=3.0),
        ColumnErrorSpec("creator", _drop_first_creator,
                        ErrorType.MISSING_VALUE, weight=2.0),
        ColumnErrorSpec("filming_locations", make_missing("NaN"),
                        ErrorType.MISSING_VALUE, weight=1.0),
    ])
    dirty, ledger = injector.inject(clean, error_rate, rng)
    return DatasetPair(name="movies", dirty=dirty, clean=clean,
                       errors=ledger, error_types=ERROR_TYPES)
