"""Figure 6: test-accuracy learning curves, TSB-RNN vs ETSB-RNN.

Tracks per-epoch test accuracy over repeated runs (with confidence
intervals) and the checkpoint-selected best epochs, then emits the
series the paper plots.  Tracking costs one evaluation pass per epoch,
so this benchmark uses a reduced setting unless ``REPRO_FULL=1``.

Shape checks: accuracy improves over training for both models, and on
the curve datasets ETSB-RNN's final accuracy is at least TSB-RNN's
(Figure 6's visual takeaway; Tax is the paper's exception and is only
exercised in full mode).
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import DATASET_NAMES, load
from repro.experiments import collect_curves, run_experiment
from repro.experiments.curves import render_curve


def _curve_settings(scale):
    if scale.full:
        return list(DATASET_NAMES), scale.dataset_rows, 120, scale.n_runs
    return ["hospital", "flights"], lambda name: 80, 25, 3


@pytest.mark.benchmark(group="fig6")
def test_fig6_learning_curves(benchmark, scale):
    datasets, rows_for, epochs, n_runs = _curve_settings(scale)

    def run_all():
        curves = {}
        for name in datasets:
            pair = load(name, n_rows=rows_for(name), seed=1)
            for architecture in ("tsb", "etsb"):
                result = run_experiment(
                    pair, architecture=architecture, n_runs=n_runs,
                    n_label_tuples=scale.n_label_tuples, epochs=epochs,
                    track_curves=True)
                curves[(name, architecture)] = collect_curves(result)
        return curves

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for (name, architecture), curve in curves.items():
        lines.append(f"--- {name} / {architecture.upper()} ---")
        lines.append(render_curve(curve, "test"))
        lines.append("epoch,test_acc_mean,ci_low,ci_high")
        for point in curve.test:
            lines.append(f"{point.epoch},{point.mean:.4f},"
                         f"{point.ci_low:.4f},{point.ci_high:.4f}")
        lines.append(f"best epochs per run: {list(curve.best_epochs)}")
    write_result("fig6_learning_curves.csv", "\n".join(lines))

    for (name, architecture), curve in curves.items():
        first = curve.test[0].mean
        best = max(p.mean for p in curve.test)
        assert best >= first - 1e-9, f"{name}/{architecture} never improved"
    for name in datasets:
        etsb = curves[(name, "etsb")].final_test_accuracy()
        tsb = curves[(name, "tsb")].final_test_accuracy()
        assert etsb >= tsb - 0.05, f"{name}: ETSB {etsb} far below TSB {tsb}"
