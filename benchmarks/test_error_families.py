"""Per-error-family degradation matrix (the authentic-error taxonomy).

Starting from one clean generated table, each taxonomy family --
keyboard typos, correlated multi-column errors, format/locale drift,
truncation, value swaps, missing markers -- is injected *alone* at a
fixed rate, and ETSB-RNN plus the Raha baseline are evaluated on every
single-family pair.  The matrix shows which families each system
degrades on and is written to ``results/BENCH_error_families.json``
(plus a rendered text table) for EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.datasets import load
from repro.experiments import (
    render_family_matrix,
    run_family_matrix,
    save_family_matrix,
)


@pytest.mark.benchmark(group="error-families")
def test_family_matrix(benchmark, scale):
    # Beers: its clean table has decimal number columns (abv, ounces),
    # so the format-drift family's locale rewrites actually bite.
    clean = load("beers", n_rows=scale.dataset_rows("beers"), seed=1).clean

    def run():
        return run_family_matrix(
            clean, systems=("etsb", "attn", "raha", "ensemble"), rate=0.1,
            n_runs=max(1, scale.n_runs // 2),
            n_label_tuples=scale.n_label_tuples,
            epochs=scale.epochs, seed=0)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    save_family_matrix(
        matrix, RESULTS_DIR / "BENCH_error_families.json",
        settings={"dataset": "beers", "n_rows": clean.n_rows,
                  "epochs": scale.epochs,
                  "n_label_tuples": scale.n_label_tuples})
    write_result("error_families.txt", render_family_matrix(matrix))

    assert set(matrix.families) >= {"keyboard_typo", "correlated",
                                    "format_drift", "truncation",
                                    "value_swap"}
    for family in matrix.families:
        for system in matrix.systems:
            cell = matrix.cell(family, system)
            assert cell.n_errors > 0, f"{family}: no errors injected"
            assert 0.0 <= cell.result.f1.mean <= 1.0
    # Value swaps move *valid* values between rows of the same column:
    # the evidence lives in other cells, so every per-cell model --
    # recurrent, attention or fused -- should stay near zero there
    # (correlated errors are the same story, but their conditioning cell
    # occasionally leaks a visible artefact, so only the swap family is
    # gated).
    for system in ("etsb", "attn", "ensemble"):
        swap = matrix.cell("value_swap", system)
        assert swap.result.f1.mean <= 0.6, (
            f"{system} scored F1={swap.result.f1.mean:.3f} on value_swap; "
            "cross-cell families are expected near zero for per-cell models")
