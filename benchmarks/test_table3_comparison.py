"""Table 3: P/R/F1 per dataset -- TSB-RNN and ETSB-RNN vs the baselines.

Trains both architectures on all six datasets (repeated runs, DiverSet
sampling, 20 labelled tuples) plus our from-scratch Raha implementation,
and renders the comparison table next to the paper's published rows.

Shape checks (not absolute numbers -- our substrate is a scaled CPU
simulator of the authors' GPU setup):

* ETSB-RNN's average F1 is at least TSB-RNN's (the paper's headline);
* hospital is easy (x-marked typos) and flights is the hardest dataset
  for the RNNs, mirroring Section 5.5.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments import render_table3
from repro.experiments.fidelity import fidelity_report
from repro.experiments.tables import f1_averages


@pytest.mark.benchmark(group="table3")
def test_table3_comparison(benchmark, pool, pairs, scale):
    def run_all():
        results = pool.all_model_results()
        results += [pool.raha_result(name) for name in pairs]
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table, text = render_table3(results)
    write_result("table3_comparison.txt", text)

    fidelity_blocks = [fidelity_report(results, system).render()
                       for system in ("TSB-RNN", "ETSB-RNN")]
    write_result("fidelity.txt", "\n\n".join(fidelity_blocks))

    averages = f1_averages(results)
    etsb = averages["ETSB-RNN"]
    tsb = averages["TSB-RNN"]
    # Paper shape: the enriched model wins on average.
    assert etsb["avg_w"] >= tsb["avg_w"] - 0.02

    etsb_by_dataset = {
        r.dataset: r.f1.mean for r in results if r.system == "ETSB-RNN"}
    # Section 5.5 shape: hospital is among the easiest datasets for the
    # character model and flights clearly harder than hospital.  (The
    # paper's "flights is the global minimum" needs full-scale training;
    # at reduced scale Tax -- the paper's highest-variance dataset --
    # can dip below it.)
    assert etsb_by_dataset["hospital"] >= 0.8
    assert etsb_by_dataset["flights"] <= etsb_by_dataset["hospital"] - 0.05
