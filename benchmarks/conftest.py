"""Shared state for the benchmark suite.

Every table/figure benchmark draws on the same pool of experiment runs so
that, e.g., Table 5's timings come from the very runs that produced
Table 3's F1 scores -- exactly as in the paper.  Results are computed
once per session (they are the expensive part; the benchmark fixture
times representative units of work) and rendered tables are written to
``benchmarks/results/`` as well as printed.

Scaled-down settings are the default; set ``REPRO_FULL=1`` for the
paper-scale configuration (120 epochs x 10 runs x full dataset sizes).
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.datasets import DATASET_NAMES, load
from repro.datasets.base import DatasetPair
from repro.experiments import (
    ExperimentResult,
    current_scale,
    run_experiment,
    run_raha_baseline,
)
from repro.experiments.scale import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return current_scale()


@pytest.fixture(scope="session")
def pairs(scale) -> dict[str, DatasetPair]:
    """One generated pair per benchmark dataset, at the active scale."""
    return {
        name: load(name, n_rows=scale.dataset_rows(name), seed=1)
        for name in DATASET_NAMES
    }


class ResultPool:
    """Lazily computed, memoised experiment results shared by all benches."""

    def __init__(self, pairs: dict[str, DatasetPair], scale: ExperimentScale):
        self._pairs = pairs
        self._scale = scale

    @functools.lru_cache(maxsize=None)  # noqa: B019 -- session-lifetime object
    def model_result(self, dataset: str, architecture: str,
                     track_curves: bool = False) -> ExperimentResult:
        return run_experiment(
            self._pairs[dataset],
            architecture=architecture,
            n_runs=self._scale.n_runs,
            n_label_tuples=self._scale.n_label_tuples,
            epochs=self._scale.epochs,
            track_curves=track_curves,
        )

    @functools.lru_cache(maxsize=None)  # noqa: B019
    def raha_result(self, dataset: str) -> ExperimentResult:
        return run_raha_baseline(
            self._pairs[dataset],
            n_runs=self._scale.n_runs,
            n_label_tuples=self._scale.n_label_tuples,
        )

    def all_model_results(self) -> list[ExperimentResult]:
        return [
            self.model_result(dataset, architecture)
            for architecture in ("tsb", "etsb")
            for dataset in self._pairs
        ]


@pytest.fixture(scope="session")
def pool(pairs, scale) -> ResultPool:
    return ResultPool(pairs, scale)
