"""Baseline bench: our from-scratch Raha and augmentation detectors.

Table 3's Raha/Rotom rows are quoted from the original papers; this
bench measures our *own* implementations of those two system families
under the identical 20-labelled-tuples protocol, on the datasets where
their published behaviour is most distinctive:

* hospital -- Raha's published F1 is 0.72 (clustering struggles with the
  sparse 3% error rate) while our pattern-profile strategies catch the
  x-typos directly;
* beers -- both baselines should be strong (formatting errors are
  pattern-visible).

Shape check: every baseline produces a usable detector (F1 > 0.3) and
the Raha-style detector beats the augmentation stand-in on hospital
(cluster propagation shines on systematic typos).
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments import run_augmentation_baseline


@pytest.mark.benchmark(group="baselines")
def test_baselines_comparison(benchmark, pairs, pool, scale):
    datasets = ("hospital", "beers")

    def run_all():
        results = {}
        for name in datasets:
            results[(name, "raha")] = pool.raha_result(name)
            results[(name, "augment")] = run_augmentation_baseline(
                pairs[name], n_runs=scale.n_runs,
                n_label_tuples=scale.n_label_tuples)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["dataset,system,F1_mean,F1_sd,seconds"]
    for (name, system), result in results.items():
        lines.append(f"{name},{system},{result.f1.mean:.3f},"
                     f"{result.f1.stdev:.3f},{result.train_seconds.mean:.1f}")
    write_result("baselines_comparison.csv", "\n".join(lines))

    for key, result in results.items():
        assert result.f1.mean > 0.3, f"{key} collapsed: {result.f1}"
    assert results[("hospital", "raha")].f1.mean >= \
        results[("hospital", "augment")].f1.mean - 0.05
