"""Work-plane and precision benchmark and regression gate.

Times one fused LSTM level (forward + backward) on a skewed-length batch
with the kernel work plane off versus 2 and 4 workers.  On a skewed
batch the plan puts the short majority in groups whose time loops stop
early instead of being dragged through the long tail's steps, so the
plane pays off even on a single core; multi-core hosts additionally
overlap the groups.  The gates: 2 workers at least 1.4x over serial, and
4 workers still above that bar without collapsing from the 2-worker
speedup (monotone, no degradation).

A second arm gates the reduced-precision path: float32
``InferenceEngine.predict_proba`` must beat the float64 graph forward.

``make bench-parallel`` runs this module alone; medians per arm and the
speedups are recorded in ``benchmarks/results/BENCH_parallel.json``.
"""

import json
import time

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.inference import InferenceEngine
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.nn.kernels import lstm_level
from repro.nn.parallel import plan_groups, use_workers

from .conftest import write_result

SPEEDUP_GATE_2 = 1.4
#: 4 workers must also clear the absolute gate and retain this fraction
#: of the 2-worker speedup (oversubscribed single-core hosts pay some
#: extra thread overhead at 4; "monotone" means no collapse, not zero
#: scheduling cost).
MONOTONE_FRACTION = 0.75
PRECISION_GATE = 1.0

#: Skewed-length regime: most rows short, a long tail at full width.
BATCH = 256
MAX_LENGTH = 48
D_IN = 16
UNITS = 64
SHORT_FRACTION = 0.92

REPS = 8
ROUNDS = 4

INFER_CONFIG = ModelConfig(char_embed_dim=16, value_units=32, num_layers=2,
                           attr_embed_dim=8, attr_units=8,
                           length_dense_units=8, head_units=16)
INFER_ROWS = 256
INFER_MAX_LEN = 24
INFER_VOCAB = 60


def _skewed_batch(seed=0):
    rng = np.random.default_rng(seed)
    lengths = np.where(rng.random(BATCH) < SHORT_FRACTION,
                       rng.integers(2, 9, size=BATCH),
                       rng.integers(40, MAX_LENGTH + 1, size=BATCH))
    mask = np.arange(MAX_LENGTH)[None, :] < lengths[:, None]
    x = rng.normal(size=(BATCH, MAX_LENGTH, D_IN))
    w_x = 0.5 * rng.normal(size=(D_IN, 4 * UNITS))
    w_h = 0.5 * rng.normal(size=(UNITS, 4 * UNITS))
    b_h = 0.1 * rng.normal(size=(4 * UNITS,))
    return (x, w_x, w_h, b_h), mask, lengths


def _level_seconds(arrays, mask, workers, reps):
    """Median seconds of one forward+backward at a worker count."""
    x_np, w_x_np, w_h_np, b_h_np = arrays
    times = []
    with use_workers(workers):
        for _ in range(reps):
            x = Tensor(x_np, requires_grad=True)
            w_x = Tensor(w_x_np, requires_grad=True)
            w_h = Tensor(w_h_np, requires_grad=True)
            b_h = Tensor(b_h_np, requires_grad=True)
            start = time.perf_counter()
            out = lstm_level(x, w_x, w_h, b_h, mask=mask)
            (out * out).sum().backward()
            times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _unique_features(rng):
    lengths = rng.integers(1, INFER_MAX_LEN + 1, size=INFER_ROWS)
    values = np.zeros((INFER_ROWS, INFER_MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, INFER_VOCAB, size=ell)
    values[:, 0] = np.arange(INFER_ROWS) % (INFER_VOCAB - 1) + 1
    return {
        "values": values,
        "attributes": rng.integers(1, 4, size=INFER_ROWS),
        "length_norm": (lengths / INFER_MAX_LEN).reshape(-1, 1),
    }


@pytest.mark.bench_smoke
def test_parallel_plane_speedup_smoke():
    """Gates: >= 1.4x at 2 workers and monotone through 4 workers.

    Arms are timed in interleaved serial/2-worker/4-worker rounds and
    compared by the median per-round ratio, so machine-speed drift
    cancels out.  The plan is a pure function of the mask, so every arm
    runs the identical group split -- the measurement isolates the
    plane's scheduling and width trimming.
    """
    arrays, mask, lengths = _skewed_batch()
    groups = plan_groups(mask)

    _level_seconds(arrays, mask, 0, 2)  # warm up scratch + pool
    _level_seconds(arrays, mask, 2, 2)
    _level_seconds(arrays, mask, 4, 2)
    rounds = []
    for _ in range(ROUNDS):
        serial = _level_seconds(arrays, mask, 0, REPS)
        two = _level_seconds(arrays, mask, 2, REPS)
        four = _level_seconds(arrays, mask, 4, REPS)
        rounds.append((serial, two, four))

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    speedup_2 = median([s / t for s, t, _ in rounds])
    speedup_4 = median([s / f for s, _, f in rounds])

    counts, edges = np.histogram(lengths, bins=8, range=(1, MAX_LENGTH + 1))
    report = {
        "benchmark": "work-plane fused LSTM level forward+backward",
        "gates": {"speedup_2_workers": SPEEDUP_GATE_2,
                  "monotone_fraction_4_workers": MONOTONE_FRACTION,
                  "float32_inference": PRECISION_GATE},
        "batch": {
            "batch": BATCH, "max_length": MAX_LENGTH,
            "d_in": D_IN, "units": UNITS,
            "short_fraction": SHORT_FRACTION,
            "n_groups": len(groups),
            "group_sizes": [int(len(g)) for g in groups],
            "length_histogram": {
                "bin_edges": [int(e) for e in edges],
                "counts": [int(c) for c in counts],
            },
        },
        "level": {
            "serial_ms": round(median([s for s, _, _ in rounds]) * 1e3, 3),
            "workers2_ms": round(median([t for _, t, _ in rounds]) * 1e3, 3),
            "workers4_ms": round(median([f for _, _, f in rounds]) * 1e3, 3),
            "speedup_2_workers": round(speedup_2, 2),
            "speedup_4_workers": round(speedup_4, 2),
        },
    }

    model = ETSBRNN(INFER_VOCAB, 4, INFER_CONFIG, np.random.default_rng(0))
    model.eval()
    features = _unique_features(np.random.default_rng(1))
    engine = InferenceEngine(model, cache=None)
    engine.predict_proba(features)  # warm up both paths
    engine.predict_proba(features, precision="float32")
    pairs = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        engine.predict_proba(features)
        f64 = time.perf_counter() - start
        start = time.perf_counter()
        engine.predict_proba(features, precision="float32")
        f32 = time.perf_counter() - start
        pairs.append((f64, f32))
    precision_speedup = median([f64 / f32 for f64, f32 in pairs])
    report["inference"] = {
        "rows": INFER_ROWS,
        "float64_ms": round(median([p[0] for p in pairs]) * 1e3, 3),
        "float32_ms": round(median([p[1] for p in pairs]) * 1e3, 3),
        "float32_speedup": round(precision_speedup, 2),
    }

    write_result("BENCH_parallel.json", json.dumps(report, indent=2))

    failures = []
    if speedup_2 < SPEEDUP_GATE_2:
        failures.append(f"2 workers: {speedup_2:.2f}x < {SPEEDUP_GATE_2}x")
    if speedup_4 < max(SPEEDUP_GATE_2, MONOTONE_FRACTION * speedup_2):
        failures.append(
            f"4 workers degrade: {speedup_4:.2f}x vs {speedup_2:.2f}x at 2")
    if precision_speedup < PRECISION_GATE:
        failures.append(f"float32 inference: {precision_speedup:.2f}x")
    assert not failures, (
        "parallel/precision gates failed: " + "; ".join(failures)
        + " (see benchmarks/results/BENCH_parallel.json)")
