"""Ablation C: recurrence cell family -- RNN vs LSTM vs GRU.

The related-work section argues plain tanh RNNs are preferable because
they are "less complex and therefore do need not as much time for
training".  This bench makes that claim measurable: identical ETSB
architecture with the recurrence swapped, reporting F1 and training
time per cell family.

Shape checks: the plain RNN trains fastest (fewest parameters), and the
gated cells do not dominate it on F1 at the paper's few-label budget --
i.e. the extra capacity buys nothing here, which is the paper's point.
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import load
from repro.experiments import run_experiment
from repro.models import ModelConfig

CELL_TYPES = ("rnn", "lstm", "gru")


@pytest.mark.benchmark(group="ablation-cells")
def test_ablation_cell_types(benchmark, scale):
    dataset = "hospital"
    pair = load(dataset, n_rows=scale.dataset_rows(dataset), seed=1)

    def run_all():
        return {
            cell_type: run_experiment(
                pair, architecture="etsb",
                model_config=ModelConfig(cell_type=cell_type),
                n_runs=scale.n_runs, n_label_tuples=scale.n_label_tuples,
                epochs=scale.epochs)
            for cell_type in CELL_TYPES
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"dataset: {dataset}", "cell,F1_mean,F1_sd,train_seconds"]
    for cell_type, result in results.items():
        lines.append(f"{cell_type},{result.f1.mean:.3f},"
                     f"{result.f1.stdev:.3f},{result.train_seconds.mean:.1f}")
    write_result("ablation_cell_types.csv", "\n".join(lines))

    times = {c: results[c].train_seconds.mean for c in CELL_TYPES}
    f1s = {c: results[c].f1.mean for c in CELL_TYPES}
    assert times["rnn"] <= min(times["lstm"], times["gru"]) * 1.1, \
        f"plain RNN should train fastest: {times}"
    best_gated = max(f1s["lstm"], f1s["gru"])
    assert f1s["rnn"] >= best_gated - 0.15, \
        f"plain RNN unexpectedly far behind gated cells: {f1s}"
