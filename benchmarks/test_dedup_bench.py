"""Dedup-memoized inference benchmark and regression gate.

Times full-table prediction on a duplicate-heavy synthetic table -- the
regime the paper's datasets live in, where categorical attributes repeat
a handful of distinct values over thousands of rows -- with the dedup
fast path versus the naive chunked forward over every row.  The engine
runs the network once per unique (attribute, value) cell and scatters,
so with a low unique-cell ratio the speedup tracks 1/ratio; the gate
requires at least 3x on both compute backends.  A second, ungated arm
reports the warm-cache case, where a repeat call serves every unique
cell from the cross-call prediction cache without any forward at all.

``make bench-dedup`` runs this module alone; medians per arm, speedups,
cache hit rates and the unique-cell ratio are recorded machine-readably
in ``benchmarks/results/BENCH_dedup_infer.json``.
"""

import json
import time

import numpy as np
import pytest

from repro.inference import InferenceEngine, PredictionCache, build_dedup_index
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.nn import use_backend
from repro.nn.training import predict_proba

from .conftest import write_result

SPEEDUP_GATE = 3.0

#: Duplicate-heavy regime: many rows drawn from a small pool of cells.
N_ROWS = 1200
N_UNIQUE = 48
MAX_LENGTH = 24
N_ATTRS = 6
VOCAB = 40
BATCH_SIZE = 64

CONFIG = ModelConfig(char_embed_dim=16, value_units=32, num_layers=2,
                     attr_embed_dim=8, attr_units=8, length_dense_units=8,
                     head_units=16)


def _duplicate_heavy_table(seed=0):
    """Features whose rows repeat from a pool of ``N_UNIQUE`` cells."""
    rng = np.random.default_rng(seed)
    pool_lengths = rng.integers(2, MAX_LENGTH + 1, size=N_UNIQUE)
    pool_values = np.zeros((N_UNIQUE, MAX_LENGTH), dtype=np.int64)
    for i, ell in enumerate(pool_lengths):
        pool_values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    pool_attrs = rng.integers(1, N_ATTRS + 1, size=N_UNIQUE)
    picks = rng.integers(0, N_UNIQUE, size=N_ROWS)
    features = {
        "values": pool_values[picks],
        "attributes": pool_attrs[picks],
        "length_norm": (pool_lengths[picks] / MAX_LENGTH).reshape(-1, 1),
    }
    return features, pool_lengths[picks].astype(np.int64)


def _median_seconds(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


@pytest.mark.bench_smoke
def test_dedup_predict_speedup_smoke():
    """Gate: dedup-memoized prediction >= 3x naive on both backends.

    Arms are timed in interleaved naive/dedup pairs over identical
    features (the dedup index is precomputed, as ``encode_cells``
    carries it for free in the real pipeline) and compared by the
    median per-pair ratio, so machine-speed drift cancels out.
    """
    features, lengths = _duplicate_heavy_table()
    dedup = build_dedup_index(features)

    report = {
        "benchmark": "dedup-memoized vs naive full-table prediction (ETSB-RNN)",
        "gate_speedup": SPEEDUP_GATE,
        "dataset": {
            "n_rows": N_ROWS,
            "n_unique_cells": int(dedup.n_unique),
            "unique_cell_ratio": round(dedup.unique_ratio, 4),
            "max_length": MAX_LENGTH,
            "batch_size": BATCH_SIZE,
        },
        "backends": {},
    }
    failures = []
    for backend in ("fused", "graph"):
        model = ETSBRNN(VOCAB, N_ATTRS + 1, CONFIG, np.random.default_rng(0))
        model.eval()
        engine = InferenceEngine(model, cache=PredictionCache(),
                                 batch_size=BATCH_SIZE)

        def naive():
            return predict_proba(model, features, batch_size=BATCH_SIZE,
                                 deduplicate=False)

        def dedup_cold():
            engine.cache.invalidate()  # every call re-evaluates uniques
            return engine.predict_proba(features, lengths=lengths,
                                        dedup=dedup)

        def cache_warm():
            return engine.predict_proba(features, lengths=lengths,
                                        dedup=dedup)

        with use_backend(backend):
            # Bit-identity sanity check doubles as the warm-up pass.
            np.testing.assert_array_equal(naive(), dedup_cold())
            cache_warm()
            pairs = [(_median_seconds(naive, repeats=1),
                      _median_seconds(dedup_cold, repeats=1))
                     for _ in range(5)]
            warm_s = _median_seconds(cache_warm)
        ratios = sorted(n / d for n, d in pairs)
        speedup = ratios[len(ratios) // 2]
        naive_ms = sorted(n for n, _ in pairs)[len(pairs) // 2] * 1e3
        dedup_ms = sorted(d for _, d in pairs)[len(pairs) // 2] * 1e3
        stats = engine.last_stats
        report["backends"][backend] = {
            "naive_ms_per_call": round(naive_ms, 3),
            "dedup_ms_per_call": round(dedup_ms, 3),
            "warm_cache_ms_per_call": round(warm_s * 1e3, 3),
            "median_speedup": round(speedup, 2),
            "warm_cache_speedup": round(naive_ms / (warm_s * 1e3), 2),
            "warm_cache_hit_rate": round(stats.hit_rate, 4),
        }
        if speedup < SPEEDUP_GATE:
            failures.append(f"{backend}: {speedup:.2f}x")

    write_result("BENCH_dedup_infer.json", json.dumps(report, indent=2))
    assert not failures, (
        f"dedup inference below the {SPEEDUP_GATE}x gate on: "
        f"{', '.join(failures)} "
        f"(see benchmarks/results/BENCH_dedup_infer.json)"
    )
