"""Ablation B: what does each ETSB-RNN enrichment buy? (Section 4.3.2)

ETSB-RNN adds two inputs on top of TSB-RNN: the attribute metadata and
the normalised value length.  This bench isolates their contribution by
comparing TSB-RNN (value only) against ETSB-RNN (value + attribute +
length) on a dataset where attribute context matters: beers, whose
formatting errors ('12.0 oz' in ounces, '0.061%' in abv) are
attribute-specific patterns.

Shape check: the enriched model matches or beats the plain one -- the
paper's Table 3 finding ("ETSB-RNN outperforms the simpler model
TSB-RNN on all datasets").
"""

import pytest

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="ablation-enrichment")
def test_ablation_enrichment(benchmark, scale, pool):
    dataset = "beers"

    def run_all():
        # Shares the Table 3 result pool: identical settings, memoised.
        return {
            architecture: pool.model_result(dataset, architecture)
            for architecture in ("tsb", "etsb")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"dataset: {dataset}", "inputs,F1_mean,F1_sd"]
    lines.append(f"value only (TSB),{results['tsb'].f1.mean:.3f},"
                 f"{results['tsb'].f1.stdev:.3f}")
    lines.append(f"value+attribute+length (ETSB),{results['etsb'].f1.mean:.3f},"
                 f"{results['etsb'].f1.stdev:.3f}")
    write_result("ablation_enrichment.csv", "\n".join(lines))

    assert results["etsb"].f1.mean >= results["tsb"].f1.mean - 0.05
