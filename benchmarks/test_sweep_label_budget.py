"""Sweep: F1 vs labelling budget (the §5.3 comparison axis).

The paper fixes 20 labelled tuples and criticises Rotom for sweeping 50,
100, 150 and 200 labelled cells and reporting the best.  This bench runs
the honest version of that sweep for ETSB-RNN: F1 at 5, 10, 20 and 40
labelled tuples under otherwise identical settings.

Shape check: F1 is (weakly) increasing in the budget -- more labels
never hurt on average -- and the paper's 20-tuple operating point
already reaches most of the 40-tuple quality (the few-label premise).
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import load
from repro.experiments import run_experiment

BUDGETS = (5, 10, 20, 40)


@pytest.mark.benchmark(group="sweep-labels")
def test_sweep_label_budget(benchmark, scale):
    dataset = "hospital"
    pair = load(dataset, n_rows=scale.dataset_rows(dataset), seed=1)

    def run_all():
        return {
            budget: run_experiment(
                pair, architecture="etsb", n_runs=scale.n_runs,
                n_label_tuples=budget, epochs=scale.epochs)
            for budget in BUDGETS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"dataset: {dataset}", "n_label_tuples,F1_mean,F1_sd"]
    for budget in BUDGETS:
        result = results[budget]
        lines.append(f"{budget},{result.f1.mean:.3f},{result.f1.stdev:.3f}")
    write_result("sweep_label_budget.csv", "\n".join(lines))

    f1s = {budget: results[budget].f1.mean for budget in BUDGETS}
    # Weak monotonicity with slack for run noise.
    assert f1s[40] >= f1s[5] - 0.05, f"more labels made things worse: {f1s}"
    # The paper's 20-tuple point captures most of the achievable quality.
    assert f1s[20] >= f1s[40] - 0.15, f"20 tuples far from saturation: {f1s}"
