"""Extension bench: the §5.7/§6 future-work pipeline on Flights.

Measures (a) detection recall before vs after fusing the BiRNN with
duplicate-record disagreement signals, and (b) the accuracy of the
repair layer on the fused error mask.

Shape checks: fusion must raise recall on Flights (that is the whole
point of the primary-key extension), and repairs drawn from record-group
majorities must be overwhelmingly correct.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.datasets import load
from repro.dedup import FusedDetector
from repro.metrics import ClassificationReport
from repro.models import ErrorDetector, TrainingConfig
from repro.repair import (
    FormatRepairer,
    FrequentValueRepairer,
    MajorityGroupRepairer,
    RepairPipeline,
    repair_accuracy,
)


def _cell_mask(pair, cells) -> np.ndarray:
    positions = {a: j for j, a in enumerate(pair.dirty.column_names)}
    mask = np.zeros(pair.dirty.shape, dtype=bool)
    for tuple_id, attribute in cells:
        mask[tuple_id, positions[attribute]] = True
    return mask


@pytest.mark.benchmark(group="extension-fusion")
def test_extension_fusion_and_repair(benchmark, scale):
    pair = load("flights", n_rows=scale.dataset_rows("flights"), seed=1)
    truth = np.array(pair.error_mask()).astype(int)

    def run_pipeline():
        base = ErrorDetector(
            architecture="etsb", n_label_tuples=scale.n_label_tuples,
            training_config=TrainingConfig(epochs=scale.epochs), seed=0)
        fused = FusedDetector(base, exclude=("tuple_id", "src"))
        fused.fit(pair)
        model_mask = _cell_mask(pair, base.predict_table())
        fused_mask = fused.predict_mask(pair.dirty)
        pipeline = RepairPipeline([
            MajorityGroupRepairer(fused.discovered_key or ("flight",)),
            FormatRepairer(),
            FrequentValueRepairer(),
        ])
        outcome = pipeline.run(pair.dirty, fused_mask)
        return fused, model_mask, fused_mask, outcome

    fused, model_mask, fused_mask, outcome = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1)

    model_report = ClassificationReport.from_predictions(
        truth.reshape(-1), model_mask.astype(int).reshape(-1))
    fused_report = ClassificationReport.from_predictions(
        truth.reshape(-1), fused_mask.astype(int).reshape(-1))
    accuracy = repair_accuracy(outcome, pair.clean)

    write_result("extension_fusion_repair.csv", "\n".join([
        "stage,precision,recall,f1",
        f"model,{model_report.precision:.3f},{model_report.recall:.3f},"
        f"{model_report.f1:.3f}",
        f"model+fusion,{fused_report.precision:.3f},"
        f"{fused_report.recall:.3f},{fused_report.f1:.3f}",
        f"repairs applied,{outcome.n_applied},,",
        f"repair accuracy,{accuracy:.3f},,",
    ]))

    assert fused.discovered_key == ("flight",)
    assert fused_report.recall >= model_report.recall + 0.05, \
        "fusion did not raise recall on Flights"
    assert outcome.n_applied > 0
    assert accuracy > 0.9
