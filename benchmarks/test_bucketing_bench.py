"""Bucketed-batching benchmark and regression gate.

Times one training epoch of the paper's value branch on a synthetic
skewed-length dataset, with length-bucketed trimmed batches versus the
status-quo training path: uniformly shuffled batches at full padding.
With skewed lengths almost every shuffled batch contains a near-maximum
value, so its effective width stays at the padded maximum; bucketing
groups short values together, and the padding-aware kernels then loop
over a fraction of the steps.  Both compute backends are gated: bucketing
must be at least 1.3x faster on each.

``make bench-bucketing`` runs this module alone; the result -- median
ms/step per arm, speedups and the dataset's length histogram -- is
recorded machine-readably in ``benchmarks/results/BENCH_bucketing.json``.
"""

import json
import time

import numpy as np
import pytest

from repro.models import ModelConfig
from repro.models.tsb_rnn import TSBRNN
from repro.nn import BucketBatchSampler, use_backend
from repro.nn.training import iterate_batches

from .conftest import write_result

SPEEDUP_GATE = 1.3

#: Skewed-length regime: most values short, a few near the maximum.
N_EXAMPLES = 96
MAX_LENGTH = 48
BATCH_SIZE = 24
VOCAB = 60

CONFIG = ModelConfig(char_embed_dim=16, value_units=32, num_layers=2,
                     head_units=16)


def _skewed_dataset(seed=0):
    rng = np.random.default_rng(seed)
    short = rng.integers(2, 9, size=int(N_EXAMPLES * 0.85))
    long = rng.integers(MAX_LENGTH - 8, MAX_LENGTH + 1,
                        size=N_EXAMPLES - short.shape[0])
    lengths = np.concatenate([short, long])
    rng.shuffle(lengths)
    values = np.zeros((N_EXAMPLES, MAX_LENGTH), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    labels = rng.integers(0, 2, size=N_EXAMPLES).astype(np.int64)
    return {"values": values}, labels, lengths.astype(np.int64)


def _epoch_seconds(model, batch_iter_fn):
    """Wall-clock seconds of one forward+backward epoch; returns (s, steps)."""
    steps = 0
    start = time.perf_counter()
    for batch in batch_iter_fn():
        model.zero_grad()
        model.training_loss(batch.features, batch.labels).backward()
        steps += 1
    return time.perf_counter() - start, steps


@pytest.mark.bench_smoke
def test_bucketed_speedup_smoke():
    """Gate: bucketed trimmed batches >= 1.3x faster on both backends.

    Arms are timed in interleaved control/bucketed pairs (both
    deterministic, same examples and batch size per epoch) and compared
    by the median per-pair ratio, so machine-speed drift cancels out.
    """
    features, labels, lengths = _skewed_dataset()
    sampler = BucketBatchSampler(n_buckets=4)

    def bucketed():
        return sampler.batches(features, labels, lengths, BATCH_SIZE)

    def control():
        # The status-quo path: dataset-order batches (lengths are already
        # shuffled at generation) at the dataset-wide padded width.
        return iterate_batches(features, labels, BATCH_SIZE)

    counts, edges = np.histogram(lengths, bins=8, range=(1, MAX_LENGTH + 1))

    report = {
        "benchmark": "bucketed-vs-full-padding TSB-RNN training epoch",
        "gate_speedup": SPEEDUP_GATE,
        "dataset": {
            "n_examples": N_EXAMPLES,
            "max_length": MAX_LENGTH,
            "batch_size": BATCH_SIZE,
            "length_histogram": {
                "bin_edges": [int(e) for e in edges],
                "counts": [int(c) for c in counts],
            },
        },
        "backends": {},
    }
    failures = []
    for backend in ("fused", "graph"):
        model = TSBRNN(VOCAB, CONFIG, np.random.default_rng(0))
        with use_backend(backend):
            _epoch_seconds(model, bucketed)  # warm up
            _epoch_seconds(model, control)
            pairs = []
            for _ in range(5):
                full_s, steps = _epoch_seconds(model, control)
                trim_s, _ = _epoch_seconds(model, bucketed)
                pairs.append((full_s / steps, trim_s / steps))
        ratios = sorted(f / t for f, t in pairs)
        speedup = ratios[len(ratios) // 2]
        full_ms = sorted(f for f, _ in pairs)[len(pairs) // 2] * 1e3
        trim_ms = sorted(t for _, t in pairs)[len(pairs) // 2] * 1e3
        report["backends"][backend] = {
            "full_padding_ms_per_step": round(full_ms, 3),
            "bucketed_ms_per_step": round(trim_ms, 3),
            "median_speedup": round(speedup, 2),
        }
        if speedup < SPEEDUP_GATE:
            failures.append(f"{backend}: {speedup:.2f}x")

    write_result("BENCH_bucketing.json", json.dumps(report, indent=2))
    assert not failures, (
        f"bucketed batching below the {SPEEDUP_GATE}x gate on: "
        f"{', '.join(failures)} (see benchmarks/results/BENCH_bucketing.json)"
    )
