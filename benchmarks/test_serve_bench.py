"""Online-serving load benchmark and regression gates.

A load generator drives the :class:`~repro.serving.ServingDaemon` with 8
simulated concurrent clients (closed loop, every request a distinct
never-seen value, so nothing is served from the dedup index or the
prediction cache).  Three gates:

* **Micro-batching**: coalesced throughput must be >= 3x the
  per-request baseline (``coalesce=False``, same daemon, same load) --
  the whole point of the request batcher.
* **Incremental re-scoring**: after ``load_table``, a one-cell
  ``update`` must re-run the network on < 5% of the table's feature
  rows, asserted against the engine's ``inference.rows`` telemetry
  counter (not the session's own bookkeeping).
* **Byte identity**: the daemon's flagged cells for a CSV must exactly
  match one-shot ``repro serve`` batch scoring of the same file with
  the same archive -- micro-batching and session state change *when*
  rows are scored, never *what* they score.

Clients call ``ServingDaemon.handle_line`` directly (the same entry the
socket handler threads use), so the measurement isolates the serving
stack from kernel socket noise; arms are interleaved over three rounds
and compared by median ratio so machine-speed drift cancels out.

``make bench-serve`` runs this module alone; latency percentiles,
throughput and the ratios land in ``benchmarks/results/BENCH_serve.json``.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.dataprep import prepare
from repro.models import ErrorDetector, ModelConfig
from repro.models.detector import build_model
from repro.models.serialization import save_detector
from repro.serving import ServingDaemon
from repro.table import Table, read_csv, write_csv

from .conftest import write_result

THROUGHPUT_GATE = 3.0
RESCORE_FRACTION_GATE = 0.05

N_CLIENTS = 8
N_REQUESTS = 50
ROUNDS = 3
BATCH_DELAY_MS = 1.0

#: Narrow-but-deep serving model: the per-step Python dispatch of four
#: stacked recurrent layers is the fixed per-forward cost micro-batching
#: amortises, while 16-unit matmuls keep the marginal row cost low --
#: the regime the batcher is built for.
SERVE_CONFIG = ModelConfig(char_embed_dim=8, value_units=16, num_layers=4,
                           attr_embed_dim=4, attr_units=4,
                           length_dense_units=4, head_units=8)

TABLE_ROWS = 100


def _prepared():
    dirty = Table({
        "A": ["21", "45", "30", "12", "26"],
        "Sal": ["80,000", "98000", "92000", "99000", "850"],
        "ZIP": ["8000", "00100", "75000", "BER", "75000"],
        "City": ["NaN", "Romr", "Paris", "Berlin", "Vienna"],
    })
    clean = Table({
        "A": ["21", "45", "30", "42", "26"],
        "Sal": ["80000", "98000", "92000", "99000", "85000"],
        "ZIP": ["8000", "00100", "75000", "10115", "1010"],
        "City": ["Zurich", "Rome", "Paris", "Berlin", "Vienna"],
    })
    return prepare(dirty, clean)


def _detector(prepared, seed=0):
    detector = ErrorDetector(model_config=SERVE_CONFIG)
    detector.model = build_model("etsb", prepared, SERVE_CONFIG,
                                 np.random.default_rng(seed))
    detector.model.eval()
    detector.prepared = prepared
    return detector


def _score_line(attribute, value):
    return json.dumps({"op": "score", "cells": [
        {"attribute": attribute, "value": value}]}).encode()


def _run_load(daemon, attribute):
    """8 closed-loop clients, unique values throughout; returns stats.

    Values stay short: the encoder clips cells to the dictionary's
    ``max_length`` (6 chars here), and a longer unique suffix would be
    clipped into collisions that the prediction cache then serves
    without touching the network.
    """
    latencies = [[] for _ in range(N_CLIENTS)]
    barrier = threading.Barrier(N_CLIENTS + 1)
    failures = []

    def client(i):
        try:
            daemon.handle_line(_score_line(attribute, f"w{i}"))
            barrier.wait()
            for j in range(N_REQUESTS):
                line = _score_line(attribute, f"u{i}{j:03d}")
                start = time.perf_counter()
                reply = daemon.handle_line(line)
                latencies[i].append(time.perf_counter() - start)
                if not reply.get("ok"):
                    failures.append(reply)
                    return
        except Exception as exc:  # noqa: BLE001 -- surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not failures, failures
    flat = sorted(x for per_client in latencies for x in per_client)
    n = len(flat)
    return {
        "n_requests": n,
        "wall_s": round(wall, 4),
        "throughput_rps": round(n / wall, 1),
        "p50_ms": round(flat[n // 2] * 1e3, 3),
        "p99_ms": round(flat[min(n - 1, int(n * 0.99))] * 1e3, 3),
    }


def _fresh_daemon(prepared, coalesce):
    return ServingDaemon(detector=_detector(prepared), coalesce=coalesce,
                         batch_delay_ms=BATCH_DELAY_MS)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


@pytest.mark.bench_smoke
def test_serve_bench_gates(tmp_path):
    prepared = _prepared()
    attribute = prepared.attributes[0]
    report = {
        "benchmark": "online scoring daemon "
                     f"({N_CLIENTS} closed-loop clients)",
        "gates": {"microbatch_throughput_x": THROUGHPUT_GATE,
                  "update_rescore_fraction": RESCORE_FRACTION_GATE,
                  "daemon_vs_oneshot": "byte-identical flags"},
        "config": {"n_clients": N_CLIENTS, "n_requests": N_REQUESTS,
                   "rounds": ROUNDS, "batch_delay_ms": BATCH_DELAY_MS},
    }
    failures = []

    # -- arm 1: micro-batched vs per-request throughput ----------------------
    rounds = []
    for _ in range(ROUNDS):
        arms = {}
        for name, coalesce in (("per_request", False), ("microbatch", True)):
            daemon = _fresh_daemon(prepared, coalesce)
            daemon.batcher.start()
            try:
                arms[name] = _run_load(daemon, attribute)
                arms[name]["mean_batch_items"] = round(
                    daemon.batcher.stats.mean_batch_items, 2)
                # Every value was distinct: the arm really measured
                # network forwards, not cache hits.
                cache = daemon.registry.get("default").cache.stats()
                assert cache["hits"] == 0, cache
            finally:
                daemon.close()
        arms["speedup"] = round(arms["microbatch"]["throughput_rps"]
                                / arms["per_request"]["throughput_rps"], 2)
        rounds.append(arms)
    speedup = _median([r["speedup"] for r in rounds])
    report["throughput"] = {
        "rounds": rounds,
        "median_speedup": speedup,
        "median_per_request_rps": _median(
            [r["per_request"]["throughput_rps"] for r in rounds]),
        "median_microbatch_rps": _median(
            [r["microbatch"]["throughput_rps"] for r in rounds]),
    }
    if speedup < THROUGHPUT_GATE:
        failures.append(f"micro-batch throughput {speedup:.2f}x "
                        f"< {THROUGHPUT_GATE}x per-request")

    # -- arm 2: incremental re-scoring on update -----------------------------
    rng = np.random.default_rng(7)
    table = Table({
        name: [f"{name}-{rng.integers(0, 10 ** 6)}"
               for _ in range(TABLE_ROWS)]
        for name in prepared.attributes
    })
    daemon = _fresh_daemon(prepared, coalesce=True)
    daemon.batcher.start()
    metrics = telemetry.MetricsRegistry()
    try:
        with telemetry.use_telemetry(metrics):
            loaded = daemon.handle_line(json.dumps({
                "op": "load_table", "session": "bench",
                "columns": {name: list(table.column(name).values)
                            for name in table.column_names}}).encode())
            assert loaded["ok"], loaded
            rows_before = metrics.counter("inference.rows").value
            update = daemon.handle_line(json.dumps({
                "op": "update", "session": "bench", "row": 3,
                "column": prepared.attributes[1],
                "value": "edited"}).encode())
            assert update["ok"], update
            rows_after = metrics.counter("inference.rows").value
    finally:
        daemon.close()
    n_feature_rows = loaded["n_feature_rows"]
    rescored = rows_after - rows_before
    fraction = rescored / n_feature_rows
    report["incremental_update"] = {
        "n_feature_rows": n_feature_rows,
        "network_rows_for_one_update": rescored,
        "fraction": round(fraction, 5),
        "full_rescore": update["full_rescore"],
    }
    assert rescored >= 1  # the telemetry counter really observed the update
    if fraction >= RESCORE_FRACTION_GATE:
        failures.append(
            f"one-cell update re-ran the network on {rescored}/"
            f"{n_feature_rows} feature rows "
            f"({fraction:.1%} >= {RESCORE_FRACTION_GATE:.0%})")

    # -- arm 3: daemon scores == one-shot `repro serve` ----------------------
    from repro.cli import main

    archive = tmp_path / "serve_bench.npz"
    save_detector(_detector(prepared), archive)
    csv_path = tmp_path / "bench_table.csv"
    write_csv(table, csv_path)
    out_dir = tmp_path / "scored"
    assert main(["serve", "--model", str(archive), str(csv_path),
                 "--out-dir", str(out_dir)]) == 0
    oneshot = read_csv(out_dir / "bench_table.errors.csv")
    oneshot_flagged = {
        (int(row), attribute, value)
        for row, attribute, value in zip(oneshot.column("row").values,
                                         oneshot.column("attribute").values,
                                         oneshot.column("value").values)
    }

    daemon = ServingDaemon(model_path=archive,
                           batch_delay_ms=BATCH_DELAY_MS)
    daemon.batcher.start()
    try:
        loaded = daemon.handle_line(json.dumps({
            "op": "load_table", "session": "identity",
            "csv": str(csv_path)}).encode())
        assert loaded["ok"], loaded
    finally:
        daemon.close()
    daemon_flagged = {(item["row"], item["attribute"], item["value"])
                      for item in loaded["flagged"]}
    report["identity"] = {
        "n_cells": table.n_rows * len(table.column_names),
        "oneshot_flagged": len(oneshot_flagged),
        "daemon_flagged": len(daemon_flagged),
        "identical": daemon_flagged == oneshot_flagged,
    }
    if daemon_flagged != oneshot_flagged:
        failures.append(
            f"daemon flags diverge from one-shot serve: "
            f"{len(daemon_flagged ^ oneshot_flagged)} cells differ")

    write_result("BENCH_serve.json", json.dumps(report, indent=2))
    assert not failures, (
        "serving gates failed: " + "; ".join(failures)
        + " (see benchmarks/results/BENCH_serve.json)")
