"""Analysis bench: recall per error type (the §5.5 mechanism).

The paper's error analysis attributes each dataset's score to its error
mix: character-visible errors (formatting issues, missing-value markers,
x-typos) are easy for the BiRNN, while violated attribute dependencies
-- whose evidence lives in *other* cells -- are fundamentally hard for a
per-cell character model.

This bench trains ETSB-RNN on Beers and measures recall per injected
error type from the generator's ledger, asserting that ordering.
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import load
from repro.datasets.errors import ErrorType
from repro.experiments import error_type_recall
from repro.models import ErrorDetector, TrainingConfig


@pytest.mark.benchmark(group="analysis-error-types")
def test_error_type_recall_shape(benchmark, scale):
    pair = load("beers", n_rows=scale.dataset_rows("beers"), seed=1)

    def run():
        detector = ErrorDetector(
            architecture="etsb", n_label_tuples=scale.n_label_tuples,
            training_config=TrainingConfig(epochs=scale.epochs), seed=0)
        detector.fit(pair)
        return error_type_recall(pair, detector.evaluate())

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    recalls = {
        error_type: detected / total
        for error_type, (detected, total) in counts.items() if total
    }
    lines = ["error_type,detected,total,recall"]
    for error_type, (detected, total) in counts.items():
        lines.append(f"{error_type.value},{detected},{total},"
                     f"{detected / total:.3f}")
    write_result("analysis_error_types.csv", "\n".join(lines))

    visible = [recalls[t] for t in (ErrorType.FORMATTING_ISSUE,
                                    ErrorType.MISSING_VALUE) if t in recalls]
    assert visible, "no character-visible error types measured"
    vad = recalls.get(ErrorType.VIOLATED_ATTRIBUTE_DEPENDENCY)
    assert vad is not None, "no dependency violations measured"
    # The §5.5 mechanism: cross-cell errors are the hard ones.
    assert min(visible) >= vad - 0.05, (
        f"expected VAD recall ({vad:.2f}) below character-visible "
        f"recalls ({visible})"
    )
