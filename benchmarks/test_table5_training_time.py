"""Table 5: training time per dataset for TSB-RNN and ETSB-RNN.

Uses the wall-clock timings recorded during the Table 3 runs (the paper
measures the same 10 training runs).  Shape checks: ETSB-RNN trains
slower than TSB-RNN on average (it is the larger network), matching the
paper's 183s-vs-191s averages -- absolute times differ because our
substrate is CPU numpy, not Colab GPUs.
"""

import statistics

import pytest

from benchmarks.conftest import write_result
from repro.experiments import render_table5


@pytest.mark.benchmark(group="table5")
def test_table5_training_time(benchmark, pool, pairs):
    results = pool.all_model_results()  # cached from table3
    table, text = benchmark.pedantic(
        lambda: render_table5(results), rounds=1, iterations=1)
    write_result("table5_training_time.txt", text)

    # Wall-clock on a shared CPU is noisy; the fastest run per dataset is
    # the least-contended measurement, and the *median* per-dataset
    # ETSB/TSB ratio is robust to a single outlier dataset.
    fastest = {
        (r.system, r.dataset): min(run.train_seconds for run in r.runs)
        for r in results
    }
    ratios = [
        fastest[("ETSB-RNN", name)] / fastest[("TSB-RNN", name)]
        for name in pairs
    ]
    assert len(ratios) == len(pairs)
    # The paper's claim: the enriched model costs a few percent more
    # (183s vs 191s). Allow generous noise headroom around 1.0.
    assert statistics.median(ratios) >= 0.8, f"ratios: {ratios}"
