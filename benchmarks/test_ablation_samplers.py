"""Ablation A: trainset-selection algorithms (Section 5.2's claim).

The paper states it "repeated the experiments several times with every
algorithm described in Section 4.2" and reached the best results with
DiverSet.  This bench runs RandomSet, RahaSet and DiverSet under
identical settings and reports the F1 per sampler.

Shape check: DiverSet is competitive with the best sampler (within a
tolerance -- at reduced scale sampler noise is real), and every sampler
produces a working detector.
"""

import pytest

from benchmarks.conftest import write_result

from repro.experiments import run_experiment
from repro.sampling import RahaSet, RandomSet




@pytest.mark.benchmark(group="ablation-samplers")
def test_ablation_samplers(benchmark, scale, pairs, pool):
    dataset = "beers"
    pair = pairs[dataset]

    def run_all():
        results = {
            sampler.name: run_experiment(
                pair, architecture="etsb", sampler=sampler,
                n_runs=scale.n_runs, n_label_tuples=scale.n_label_tuples,
                epochs=scale.epochs)
            for sampler in (RandomSet(), RahaSet())
        }
        # DiverSet is the Table 3 configuration: reuse the memoised run.
        results["DiverSet"] = pool.model_result(dataset, "etsb")
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"dataset: {dataset}", "sampler,F1_mean,F1_sd"]
    for name, result in results.items():
        lines.append(f"{name},{result.f1.mean:.3f},{result.f1.stdev:.3f}")
    write_result("ablation_samplers.csv", "\n".join(lines))

    f1s = {name: result.f1.mean for name, result in results.items()}
    best = max(f1s.values())
    assert f1s["DiverSet"] >= best - 0.1, \
        f"DiverSet ({f1s['DiverSet']:.2f}) far below best sampler ({best:.2f})"
    assert all(value > 0.0 for value in f1s.values())
