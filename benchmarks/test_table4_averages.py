"""Table 4: average F1 and standard deviation with/without Flights.

Aggregates the Table 3 runs.  Shape checks: ETSB-RNN's cross-dataset
average beats TSB-RNN's and its spread is no larger, reproducing the
paper's robustness claim.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments import render_table4
from repro.experiments.tables import f1_averages


@pytest.mark.benchmark(group="table4")
def test_table4_averages(benchmark, pool):
    results = pool.all_model_results()  # cached from table3
    table, text = benchmark.pedantic(
        lambda: render_table4(results), rounds=1, iterations=1)
    write_result("table4_averages.txt", text)

    averages = f1_averages(results)
    etsb, tsb = averages["ETSB-RNN"], averages["TSB-RNN"]
    assert etsb["avg_wo"] >= tsb["avg_wo"] - 0.02
    assert etsb["avg_w"] >= tsb["avg_w"] - 0.02
    # Dropping the hardest dataset (Flights) must not hurt the average.
    assert etsb["avg_wo"] >= etsb["avg_w"] - 0.01
