"""Fused-ensemble comparison across the six golden datasets.

For every dataset, the calibrated ensemble (ETSB + Raha members) runs
against its own members standalone -- same DiverSet labelled rows per
run seed, so differences are attributable to fusion -- plus the
self-attention family as an ablation row.  The gate: cross-fit
arbitration must keep the ensemble's F1 at or above the best single
member on at least 4 of the 6 datasets (when fusion does not help, the
arbitration is expected to fall back to the winning member, which ties
by construction).  Results land in ``results/BENCH_ensemble.json``.
"""

import json

import pytest

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.experiments import (
    render_comparison,
    run_detector_comparison,
)

MEMBERS = ("etsb", "raha")
DETECTORS = ("etsb", "raha", "attn", "ensemble")
MIN_WINS = 4


@pytest.mark.benchmark(group="ensemble")
def test_ensemble_matches_or_beats_best_member(benchmark, pairs, scale):
    n_runs = max(1, scale.n_runs // 2)

    def run():
        return {
            dataset: run_detector_comparison(
                pair, detectors=DETECTORS, n_runs=n_runs,
                n_label_tuples=scale.n_label_tuples, epochs=scale.epochs,
                base_seed=0)
            for dataset, pair in pairs.items()
        }

    by_dataset = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    wins = 0
    rendered = []
    for dataset, results in by_dataset.items():
        best_member = max(results[m].f1.mean for m in MEMBERS)
        ensemble_f1 = results["ensemble"].f1.mean
        won = ensemble_f1 >= best_member - 1e-12
        wins += won
        for name, result in results.items():
            row = {"dataset": dataset, "detector": name,
                   "system": result.system,
                   **{k: round(v, 4) for k, v in result.as_row().items()}}
            rows.append(row)
        rows.append({"dataset": dataset, "detector": "ensemble_vs_best",
                     "best_member_f1": round(best_member, 4),
                     "ensemble_f1": round(ensemble_f1, 4),
                     "ensemble_wins_or_ties": bool(won)})
        rendered.append(f"--- {dataset} ---\n{render_comparison(results)}")

    payload = {
        "benchmark": "ensemble",
        "members": list(MEMBERS),
        "detectors": list(DETECTORS),
        "settings": {"n_runs": n_runs, "epochs": scale.epochs,
                     "n_label_tuples": scale.n_label_tuples},
        "wins": int(wins),
        "n_datasets": len(by_dataset),
        "rows": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ensemble.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_result("ensemble_comparison.txt", "\n\n".join(rendered))

    assert wins >= MIN_WINS, (
        f"ensemble matched/beat the best member on only {wins} of "
        f"{len(by_dataset)} datasets (need {MIN_WINS})")
