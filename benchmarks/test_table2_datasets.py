"""Table 2: dataset overview (size, error rate, characters, error types).

Regenerates the paper's dataset-statistics table from the synthetic
generators and checks the error rates match the published ones.
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import dataset_spec, load
from repro.experiments import render_table2


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_overview(benchmark, pairs):
    table, text = benchmark.pedantic(
        lambda: render_table2(list(pairs.values())), rounds=1, iterations=1)
    write_result("table2_datasets.txt", text)
    assert table.n_rows == 6
    for pair in pairs.values():
        target = dataset_spec(pair.name).paper_error_rate
        assert abs(pair.measured_error_rate() - target) < 0.02


@pytest.mark.benchmark(group="table2")
def test_table2_generation_speed(benchmark):
    """Times generating one mid-sized dataset pair from scratch."""
    pair = benchmark(lambda: load("beers", n_rows=500, seed=2))
    assert pair.n_rows == 500
