"""Microbenchmarks of the substrates (not a paper table).

Tracks the cost of the hot paths that dominate training and the Raha
baseline: one forward+backward pass of the bidirectional stacked RNN,
embedding lookup, the long-format merge of the preparation pipeline, and
the verdict clustering.  Useful for catching performance regressions in
the from-scratch engines.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.clustering import agglomerative_clusters
from repro.dataprep import prepare
from repro.datasets import load
from repro.nn import BidirectionalRNN, Dense, Embedding
from repro.nn.losses import one_hot
from repro.nn import categorical_cross_entropy


@pytest.mark.benchmark(group="substrate")
def test_birnn_forward_backward(benchmark, rng=np.random.default_rng(0)):
    """One training step of the paper-sized value branch (batch 55)."""
    emb = Embedding(87, 32, rng)
    birnn = BidirectionalRNN(32, 64, rng, num_layers=2)
    head = Dense(128, 2, rng, activation="softmax")
    indices = rng.integers(1, 87, size=(55, 24))
    indices[:, 16:] = 0  # padded tail
    labels = one_hot(rng.integers(0, 2, size=55), 2)

    def step():
        mask = indices != 0
        probs = head(birnn(emb(indices), mask=mask))
        loss = categorical_cross_entropy(probs, labels)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="substrate")
def test_embedding_lookup_large(benchmark):
    rng = np.random.default_rng(0)
    emb = Embedding(136, 32, rng)
    indices = rng.integers(0, 136, size=(256, 128))
    out = benchmark(lambda: emb(indices).numpy().sum())
    assert np.isfinite(out)


@pytest.mark.benchmark(group="substrate")
def test_tensor_matmul_backward(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(128, 64)), requires_grad=True)
    b = Tensor(rng.normal(size=(64, 64)), requires_grad=True)

    def step():
        a.zero_grad()
        b.zero_grad()
        ((a @ b) ** 2).sum().backward()
        return float(a.grad.sum())

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="substrate")
def test_preparation_pipeline(benchmark):
    """Wide->long merge + dictionaries on a mid-sized pair."""
    pair = load("beers", n_rows=400, seed=0)
    prepared = benchmark(lambda: prepare(pair.dirty, pair.clean))
    assert prepared.df.n_rows == 400 * 11


@pytest.mark.benchmark(group="substrate")
def test_verdict_clustering(benchmark):
    rng = np.random.default_rng(0)
    vectors = (rng.random((2000, 8)) < 0.15).astype(float)
    labels = benchmark(lambda: agglomerative_clusters(vectors, 41))
    assert labels.shape == (2000,)
