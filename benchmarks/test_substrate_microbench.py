"""Microbenchmarks of the substrates (not a paper table).

Tracks the cost of the hot paths that dominate training and the Raha
baseline: one forward+backward pass of the bidirectional stacked RNN
(on both compute backends, so the fused-vs-graph speedup shows up in the
benchmark table), embedding lookup, the long-format merge of the
preparation pipeline, and the verdict clustering.  Useful for catching
performance regressions in the from-scratch engines.

``test_fused_backend_speedup_smoke`` (marker ``bench_smoke``, run via
``make bench-smoke``) is the regression gate: it fails when the fused RNN
kernels are not at least 2x faster than the graph backend on a training
step, and records the measured speedup to ``benchmarks/results/``.
"""

import time

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.clustering import agglomerative_clusters
from repro.dataprep import prepare
from repro.datasets import load
from repro.nn import BidirectionalRNN, Dense, Embedding, get_backend, use_backend
from repro.nn.kernels import dense_softmax_bce
from repro.nn.losses import one_hot
from repro.nn import categorical_cross_entropy

from .conftest import write_result


def _paper_sized_step(rng, batch=55, length=24, live=16):
    """A training step of the paper-sized value branch (batch 55).

    Mirrors the models' ``training_loss`` dispatch: on the fused backend
    the classifier head runs through the fused dense+softmax+BCE kernel,
    on the graph backend through the per-op reference composition.
    """
    emb = Embedding(87, 32, rng)
    birnn = BidirectionalRNN(32, 64, rng, num_layers=2)
    head = Dense(128, 2, rng, activation="softmax")
    indices = rng.integers(1, 87, size=(batch, length))
    indices[:, live:] = 0  # padded tail
    labels = one_hot(rng.integers(0, 2, size=batch), 2)
    modules = (emb, birnn, head)

    def step():
        for module in modules:
            module.zero_grad()
        mask = indices != 0
        hidden = birnn(emb(indices), mask=mask)
        if get_backend() == "fused":
            loss = dense_softmax_bce(hidden, head.kernel, head.bias, labels)
        else:
            loss = categorical_cross_entropy(head(hidden), labels)
        loss.backward()
        return loss.item()

    return step


@pytest.mark.benchmark(group="substrate")
@pytest.mark.parametrize("backend", ["fused", "graph"])
def test_birnn_forward_backward(benchmark, backend):
    """One training step of the paper-sized value branch, per backend."""
    step = _paper_sized_step(np.random.default_rng(0))
    with use_backend(backend):
        result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.bench_smoke
def test_fused_backend_speedup_smoke():
    """Gate: fused kernels must beat the graph backend by >= 2x.

    Backends are timed in interleaved graph/fused pairs and compared by
    the median per-pair ratio, so drift in machine speed (shared CI
    hosts) cancels out instead of polluting the measurement.
    """
    step = _paper_sized_step(np.random.default_rng(0), batch=32, length=20,
                             live=14)

    def seconds(backend, repeats=3):
        with use_backend(backend):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                step()
                best = min(best, time.perf_counter() - start)
        return best

    for backend in ("graph", "fused"):
        with use_backend(backend):
            step()  # warm up (first-call allocations, caches)
    pairs = [(seconds("graph"), seconds("fused")) for _ in range(11)]
    ratios = sorted(g / f for g, f in pairs)
    speedup = ratios[len(ratios) // 2]
    graph_seconds = min(g for g, _ in pairs)
    fused_seconds = min(f for _, f in pairs)
    write_result(
        "backend_speedup.txt",
        "fused-vs-graph TSB-RNN training step (batch 32, 20 steps)\n"
        f"graph backend:  {graph_seconds * 1e3:8.2f} ms (best)\n"
        f"fused backend:  {fused_seconds * 1e3:8.2f} ms (best)\n"
        f"median speedup: {speedup:8.2f}x (gate: >= 2x)",
    )
    assert speedup >= 2.0, (
        f"fused backend only {speedup:.2f}x faster than graph "
        f"(median of {len(pairs)} interleaved pairs; best "
        f"{fused_seconds * 1e3:.2f} ms vs {graph_seconds * 1e3:.2f} ms)"
    )


@pytest.mark.benchmark(group="substrate")
def test_embedding_lookup_large(benchmark):
    rng = np.random.default_rng(0)
    emb = Embedding(136, 32, rng)
    indices = rng.integers(0, 136, size=(256, 128))
    out = benchmark(lambda: emb(indices).numpy().sum())
    assert np.isfinite(out)


@pytest.mark.benchmark(group="substrate")
def test_tensor_matmul_backward(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(128, 64)), requires_grad=True)
    b = Tensor(rng.normal(size=(64, 64)), requires_grad=True)

    def step():
        a.zero_grad()
        b.zero_grad()
        ((a @ b) ** 2).sum().backward()
        return float(a.grad.sum())

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="substrate")
def test_preparation_pipeline(benchmark):
    """Wide->long merge + dictionaries on a mid-sized pair."""
    pair = load("beers", n_rows=400, seed=0)
    prepared = benchmark(lambda: prepare(pair.dirty, pair.clean))
    assert prepared.df.n_rows == 400 * 11


@pytest.mark.benchmark(group="substrate")
def test_verdict_clustering(benchmark):
    rng = np.random.default_rng(0)
    vectors = (rng.random((2000, 8)) < 0.15).astype(float)
    labels = benchmark(lambda: agglomerative_clusters(vectors, 41))
    assert labels.shape == (2000,)
