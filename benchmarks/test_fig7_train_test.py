"""Figure 7: train- vs test-accuracy curves for ETSB-RNN.

The paper's overfitting check: train accuracy approaches 1.0 while test
accuracy converges without collapsing.  Emits both series plus the
best-train-loss epoch markers (the paper's green dots / blue triangles).

Shape checks: final train accuracy is near-perfect and the train/test
gap at the end is bounded -- i.e. the model "performs well and does not
suffer from overfitting" (Section 5.4).
"""

import pytest

from benchmarks.conftest import write_result
from repro.datasets import DATASET_NAMES, load
from repro.experiments import collect_curves, run_experiment


def _curve_settings(scale):
    if scale.full:
        return list(DATASET_NAMES), scale.dataset_rows, 120, scale.n_runs
    return ["hospital", "beers"], lambda name: 80, 25, 3


@pytest.mark.benchmark(group="fig7")
def test_fig7_train_vs_test_accuracy(benchmark, scale):
    datasets, rows_for, epochs, n_runs = _curve_settings(scale)

    def run_all():
        curves = {}
        for name in datasets:
            pair = load(name, n_rows=rows_for(name), seed=1)
            result = run_experiment(
                pair, architecture="etsb", n_runs=n_runs,
                n_label_tuples=scale.n_label_tuples, epochs=epochs,
                track_curves=True)
            curves[name] = collect_curves(result)
        return curves

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for name, curve in curves.items():
        lines.append(f"--- {name} / ETSB-RNN ---")
        lines.append("epoch,train_acc_mean,test_acc_mean")
        for train_point, test_point in zip(curve.train, curve.test):
            lines.append(f"{train_point.epoch},{train_point.mean:.4f},"
                         f"{test_point.mean:.4f}")
        lines.append(f"best-train-loss epochs: {list(curve.best_epochs)}")
    write_result("fig7_train_test_accuracy.csv", "\n".join(lines))

    for name, curve in curves.items():
        final_train = curve.train[-1].mean
        final_test = curve.test[-1].mean
        assert final_train > 0.9, f"{name}: train accuracy did not converge"
        assert final_train - final_test < 0.25, \
            f"{name}: train/test gap {final_train - final_test:.2f} too large"
