#!/usr/bin/env python3
"""Quickstart: detect errors in a benchmark dataset with ETSB-RNN.

Mirrors the paper's "system in action" flow end to end:

1. load a (dirty, clean) dataset pair;
2. let DiverSet pick the 20 tuples worth labelling;
3. train the Enriched Two-Stacked Bidirectional RNN on those tuples;
4. evaluate precision / recall / F1 on the remaining cells;
5. list a few detected errors.

Run with reduced settings (finishes in ~1 minute on a laptop):

    python examples/quickstart.py

or closer to the paper's configuration:

    python examples/quickstart.py --rows 1000 --epochs 120
"""

from __future__ import annotations

import argparse

from repro import ErrorDetector, TrainingConfig, load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="hospital",
                        help="benchmark dataset name (default: hospital)")
    parser.add_argument("--rows", type=int, default=150,
                        help="dataset size (default: 150, paper: full size)")
    parser.add_argument("--epochs", type=int, default=60,
                        help="training epochs (default: 60, paper: 120)")
    parser.add_argument("--tuples", type=int, default=20,
                        help="tuples the 'user' labels (default: 20)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Generating the {args.dataset} dataset "
          f"({args.rows} rows, paper error profile)...")
    pair = load_dataset(args.dataset, n_rows=args.rows, seed=1)
    print(f"  shape: {pair.dirty.shape}, "
          f"error rate: {pair.measured_error_rate():.2%}, "
          f"distinct characters: {pair.distinct_characters()}")

    print(f"\nTraining ETSB-RNN ({args.epochs} epochs, "
          f"{args.tuples} labelled tuples chosen by DiverSet)...")
    detector = ErrorDetector(
        architecture="etsb",
        n_label_tuples=args.tuples,
        training_config=TrainingConfig(epochs=args.epochs),
        seed=args.seed,
    )
    detector.fit(pair)

    result = detector.evaluate()
    print(f"\nHeld-out evaluation over {detector.split.test_size} cells:")
    print(f"  precision: {result.report.precision:.2f}")
    print(f"  recall:    {result.report.recall:.2f}")
    print(f"  F1-score:  {result.report.f1:.2f}")
    print(f"  best epoch (lowest train loss): {detector.checkpoint.best_epoch}")

    detected = result.errors()
    print(f"\nDetected {len(detected)} suspicious cells; first 10:")
    for tuple_id, attribute in detected[:10]:
        value = pair.dirty.column(attribute)[tuple_id]
        truth = pair.clean.column(attribute)[tuple_id]
        verdict = "true error" if str(value).lstrip() != str(truth).lstrip() \
            else "false positive"
        print(f"  tuple {tuple_id:>4}  {attribute:<15} "
              f"value={value!r:<25} ({verdict})")


if __name__ == "__main__":
    main()
