#!/usr/bin/env python3
"""Compare the three trainset-selection algorithms (Section 4.2).

Runs RandomSet (Algorithm 1), RahaSet (Algorithm 2) and DiverSet
(Algorithm 3) under identical conditions and reports the resulting
F1-scores -- the experiment behind the paper's claim that DiverSet's
diverse trainsets give the models "the most information content".

    python examples/sampler_comparison.py --dataset beers --runs 2
"""

from __future__ import annotations

import argparse

from repro import load_dataset
from repro.experiments import run_experiment
from repro.sampling import DiverSet, RahaSet, RandomSet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="beers")
    parser.add_argument("--rows", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--tuples", type=int, default=20)
    args = parser.parse_args()

    pair = load_dataset(args.dataset, n_rows=args.rows, seed=1)
    print(f"dataset={args.dataset} rows={args.rows} "
          f"error_rate={pair.measured_error_rate():.2%}\n")

    print(f"{'sampler':<12} {'F1':>6} {'s.d.':>6} {'P':>6} {'R':>6}")
    for sampler in (RandomSet(), RahaSet(), DiverSet()):
        result = run_experiment(
            pair, architecture="etsb", sampler=sampler,
            n_runs=args.runs, n_label_tuples=args.tuples,
            epochs=args.epochs)
        print(f"{sampler.name:<12} {result.f1.mean:>6.3f} "
              f"{result.f1.stdev:>6.3f} {result.precision.mean:>6.3f} "
              f"{result.recall.mean:>6.3f}")

    print("\n(The paper reports DiverSet as the strongest sampler; at "
          "reduced scale sampler noise is visible -- increase --rows, "
          "--epochs and --runs for a sharper comparison.)")


if __name__ == "__main__":
    main()
