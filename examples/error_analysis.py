#!/usr/bin/env python3
"""Error analysis (Section 5.5): where does the model succeed and fail?

Trains ETSB-RNN on one dataset and breaks detection quality down by
attribute and by injected error type, then lists missed errors --
mechanising the paper's qualitative per-dataset discussion (e.g.
"the model does not recognize errors in the attribute Creator").

    python examples/error_analysis.py --dataset beers
"""

from __future__ import annotations

import argparse

from repro import ErrorDetector, TrainingConfig, load_dataset
from repro.experiments import (
    attribute_breakdown,
    error_type_recall,
    false_negatives,
    hardest_attributes,
    render_breakdown,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="beers")
    parser.add_argument("--rows", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=60)
    args = parser.parse_args()

    pair = load_dataset(args.dataset, n_rows=args.rows, seed=1)
    detector = ErrorDetector(architecture="etsb", n_label_tuples=20,
                             training_config=TrainingConfig(epochs=args.epochs),
                             seed=0)
    print(f"Training ETSB-RNN on {args.dataset} "
          f"({args.rows} rows, {args.epochs} epochs)...")
    detector.fit(pair)
    result = detector.evaluate()
    print(f"overall: {result.report}\n")

    breakdowns = attribute_breakdown(result, detector.split.test.labels)
    print("Per-attribute breakdown:")
    print(render_breakdown(breakdowns))

    print("\nHardest attributes (errors present, worst F1 first):")
    for b in hardest_attributes(breakdowns)[:5]:
        print(f"  {b.attribute:<20} F1={b.report.f1:.2f} "
              f"({b.n_errors} errors in {b.n_cells} cells)")

    print("\nRecall per injected error type:")
    for error_type, (detected, total) in error_type_recall(pair, result).items():
        print(f"  {error_type.value:<4} {detected}/{total} "
              f"({detected / total:.0%})")

    misses = false_negatives(result, detector.split.test.labels, pair, limit=8)
    print(f"\nSample of missed errors ({len(misses)} shown):")
    for tuple_id, attribute, dirty, clean in misses:
        print(f"  tuple {tuple_id:>4} {attribute:<18} "
              f"dirty={dirty!r} clean={clean!r}")


if __name__ == "__main__":
    main()
