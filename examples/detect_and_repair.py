#!/usr/bin/env python3
"""Detect AND repair: the paper's future-work pipeline (§5.7 + §6).

Runs the full extended pipeline on the Flights dataset -- the one the
paper's per-cell model struggles with:

1. train ETSB-RNN as usual;
2. discover the record key (``flight``) and fuse the model's verdicts
   with cross-record disagreement flags (the §5.7 primary-key idea);
3. repair the flagged cells from group majorities and format rules
   (the §6 HoloClean/Baran direction);
4. score detection recall before/after fusion and repair accuracy.

    python examples/detect_and_repair.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ErrorDetector, TrainingConfig, load_dataset
from repro.dedup import FusedDetector
from repro.metrics import ClassificationReport
from repro.repair import (
    FormatRepairer,
    FrequentValueRepairer,
    MajorityGroupRepairer,
    RepairPipeline,
    repair_accuracy,
)


def cell_mask(pair, cells) -> np.ndarray:
    positions = {a: j for j, a in enumerate(pair.dirty.column_names)}
    mask = np.zeros(pair.dirty.shape, dtype=bool)
    for tuple_id, attribute in cells:
        mask[tuple_id, positions[attribute]] = True
    return mask


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=240)
    parser.add_argument("--epochs", type=int, default=40)
    args = parser.parse_args()

    pair = load_dataset("flights", n_rows=args.rows, seed=1)
    truth = np.array(pair.error_mask()).astype(int)
    print(f"flights: {pair.dirty.shape}, "
          f"error rate {pair.measured_error_rate():.2%}")

    print(f"\n[1/3] Training ETSB-RNN ({args.epochs} epochs)...")
    base = ErrorDetector(architecture="etsb", n_label_tuples=20,
                         training_config=TrainingConfig(epochs=args.epochs),
                         seed=0)
    fused = FusedDetector(base, exclude=("tuple_id", "src"))
    fused.fit(pair)

    model_mask = cell_mask(pair, base.predict_table())
    model_report = ClassificationReport.from_predictions(
        truth.reshape(-1), model_mask.astype(int).reshape(-1))
    print(f"  model alone:  {model_report}")

    print("\n[2/3] Fusing with duplicate-record disagreements...")
    fused_mask = fused.predict_mask(pair.dirty)
    print(f"  discovered record key: {fused.discovered_key}")
    fused_report = ClassificationReport.from_predictions(
        truth.reshape(-1), fused_mask.astype(int).reshape(-1))
    print(f"  model + fusion: {fused_report}")
    print(f"  recall gained: "
          f"{fused_report.recall - model_report.recall:+.2f}")

    print("\n[3/3] Repairing flagged cells...")
    pipeline = RepairPipeline([
        MajorityGroupRepairer(fused.discovered_key or ("flight",)),
        FormatRepairer(),
        FrequentValueRepairer(),
    ])
    outcome = pipeline.run(pair.dirty, fused_mask)
    accuracy = repair_accuracy(outcome, pair.clean)
    print(f"  repairs applied: {outcome.n_applied}, "
          f"left unrepaired: {len(outcome.unrepaired)}")
    print(f"  repair accuracy vs ground truth: {accuracy:.2%}")

    by_repairer: dict[str, int] = {}
    for repair in outcome.applied:
        by_repairer[repair.repairer] = by_repairer.get(repair.repairer, 0) + 1
    for name, count in sorted(by_repairer.items()):
        print(f"    {name}: {count}")


if __name__ == "__main__":
    main()
