#!/usr/bin/env python3
"""Shoot-out: ETSB-RNN vs the from-scratch Raha-style baseline.

Reproduces the Table 3 comparison on one dataset, from the same 20
labelled tuples: the BiRNN learns character-level error patterns, the
Raha-style detector clusters strategy verdicts and propagates labels.

    python examples/baseline_shootout.py --dataset hospital
"""

from __future__ import annotations

import argparse

from repro import load_dataset
from repro.experiments import run_experiment, run_raha_baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="hospital")
    parser.add_argument("--rows", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--runs", type=int, default=2)
    args = parser.parse_args()

    pair = load_dataset(args.dataset, n_rows=args.rows, seed=1)
    print(f"dataset={args.dataset} rows={args.rows} "
          f"error_types={'/'.join(pair.error_types)}\n")

    print("Running the Raha-style baseline "
          "(strategies -> clustering -> label propagation)...")
    raha = run_raha_baseline(pair, n_runs=args.runs, n_label_tuples=20)

    print("Training ETSB-RNN...")
    etsb = run_experiment(pair, architecture="etsb", n_runs=args.runs,
                          n_label_tuples=20, epochs=args.epochs)

    print(f"\n{'system':<14} {'P':>6} {'R':>6} {'F1':>6} {'F1 s.d.':>8} "
          f"{'time [s]':>9}")
    for result in (raha, etsb):
        print(f"{result.system:<14} {result.precision.mean:>6.3f} "
              f"{result.recall.mean:>6.3f} {result.f1.mean:>6.3f} "
              f"{result.f1.stdev:>8.3f} {result.train_seconds.mean:>9.1f}")

    print("\nPaper context (full scale, Table 3): Raha F1=0.72 on "
          "hospital, ETSB-RNN F1=0.97; on beers both reach ~0.99.")


if __name__ == "__main__":
    main()
