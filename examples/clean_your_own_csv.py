#!/usr/bin/env python3
"""Detect errors in your own CSV file with interactive-style labelling.

This is the production workflow of Section 1's "system in action": there
is **no clean table**.  The system proposes 20 tuples (DiverSet), a
labelling function plays the human annotator, and the trained model
flags suspicious cells across the whole table.

For the demo we fabricate a small employees CSV with injected errors and
answer the labelling questions from the generator's ledger -- replace
``label_tuple`` with real human input (e.g. ``input()``) for actual use:

    python examples/clean_your_own_csv.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ErrorDetector, TrainingConfig, read_csv, write_csv
from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_strip_leading_zeros,
    make_missing,
    typo_substitute,
)
from repro.table import Table


def build_demo_csv(path: Path) -> dict[tuple[int, str], bool]:
    """Write a small dirty employees CSV; returns the true error map."""
    rng = np.random.default_rng(7)
    cities = ["Zurich", "Geneva", "Basel", "Bern", "Lausanne"]
    clean = Table({
        "name": [f"Employee {i:03d}" for i in range(120)],
        "city": [cities[int(rng.integers(len(cities)))] for _ in range(120)],
        "zip": [f"0{rng.integers(1000, 9999)}" for _ in range(120)],
        "salary": [str(int(rng.integers(50, 150)) * 1000) for _ in range(120)],
    })
    injector = ErrorInjector([
        ColumnErrorSpec("city", typo_substitute, ErrorType.TYPO, weight=2),
        ColumnErrorSpec("zip", format_strip_leading_zeros,
                        ErrorType.FORMATTING_ISSUE, weight=2),
        ColumnErrorSpec("salary", make_missing("NaN"),
                        ErrorType.MISSING_VALUE, weight=1),
    ])
    dirty, ledger = injector.inject(clean, error_rate=0.12, rng=rng)
    write_csv(dirty, path)
    return {(error.row, error.attribute): True for error in ledger}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_demo_"))
    csv_path = workdir / "employees.csv"
    true_errors = build_demo_csv(csv_path)
    print(f"Demo CSV written to {csv_path}")

    dirty = read_csv(csv_path)
    print(f"Loaded {dirty.n_rows} rows x {dirty.n_cols} columns "
          f"({dirty.column_names})")

    asked: list[int] = []

    def label_tuple(tuple_id: int, row: dict[str, str]) -> list[int]:
        """The 'human annotator': 0 = correct, 1 = wrong, per attribute.

        Here we answer from the injection ledger; in real use, show
        ``row`` to a person and collect their 0/1 answers.
        """
        asked.append(tuple_id)
        return [int(true_errors.get((tuple_id, attr), False))
                for attr in dirty.column_names]

    print("\nTraining ETSB-RNN with interactive labelling "
          "(20 tuples proposed by DiverSet)...")
    detector = ErrorDetector(
        architecture="etsb",
        n_label_tuples=20,
        training_config=TrainingConfig(epochs=60),
        seed=0,
    )
    detector.fit_with_labels(dirty, label_tuple)
    print(f"  the system asked about tuples: {sorted(asked)}")

    flagged = detector.predict_table()
    print(f"\nThe model flags {len(flagged)} cells as suspicious.")

    tp = sum(1 for cell in flagged if true_errors.get(cell, False))
    fp = len(flagged) - tp
    fn = sum(1 for cell in true_errors if cell not in set(flagged))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    print(f"  against the hidden ground truth: "
          f"precision={precision:.2f} recall={recall:.2f}")

    print("\nSample of flagged cells:")
    for tuple_id, attribute in flagged[:8]:
        print(f"  row {tuple_id:>3}  {attribute:<8} "
              f"value={dirty.column(attribute)[tuple_id]!r}")


if __name__ == "__main__":
    main()
